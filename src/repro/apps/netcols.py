"""Netcols — the paper's Tetris-like sample application (§5.2).

"Jewels fall from the sky through a rectangular grid and must be made to
form patterns as they land.  The program keeps an array ``top`` of the
position of the highest landed jewels in each column, and maintains the
invariant that no jewels are floating — i.e. there are no empty squares
below the highest spot in each column, and there are no bejeweled squares
above it."

This module implements a playable columns-style game engine:

* a ``width × height`` grid of jewel colors (``None`` = empty), stored as
  tracked arrays so every cell write is barrier-visible;
* pieces of three jewels dropped into a column, landing on the stack;
* match-3 clearing along rows, columns, and diagonals, with gravity
  compaction and cascade resolution;
* a deterministic :class:`NetcolsBot` that plays pseudo-random moves, so
  benchmarks and tests reproduce the paper's "event loop" workload.

The invariant is Figure 12 verbatim (``checkTop`` / ``checkFull`` /
``checkEmpty``); the paper reports the per-frame event loop dropping from
80 ms (full check) to 15 ms with DITTO.
"""

from __future__ import annotations

from typing import Optional

from ..core.tracked import TrackedArray, TrackedObject
from ..instrument.registry import check

#: Number of jewel colors (classic columns uses 6).
COLORS = 6
#: Jewels per dropped piece.
PIECE_SIZE = 3
#: Minimum run length that clears.
MATCH_LEN = 3


@check
def check_full(game, col, row):
    """Rows ``0 … row`` of column ``col`` are all occupied (Figure 12's
    ``checkFull``, counting rows downward from the column top)."""
    if row < 0:
        return True
    cells = game.grid[col]
    return cells[row] is not None and check_full(game, col, row - 1)


@check
def check_empty(game, col, row):
    """Rows ``row … height-1`` of column ``col`` are all empty (Figure 12's
    ``checkEmpty``)."""
    if row == game.height:
        return True
    cells = game.grid[col]
    return cells[row] is None and check_empty(game, col, row + 1)


@check
def check_top(game, col):
    """Columns ``col …`` have no floating jewels and a correct ``top``
    entry (Figure 12's ``checkTop``)."""
    if col == game.width:
        return True
    t = game.top[col]
    b1 = check_empty(game, col, t)
    b2 = check_full(game, col, t - 1)
    b3 = check_top(game, col + 1)
    return b1 and b2 and b3


@check
def netcols_invariant(game):
    """Entry point: the whole grid is floating-jewel free."""
    return check_top(game, 0)


class NetcolsGame(TrackedObject):
    """Game state: the grid, the per-column tops, and the score."""

    def __init__(self, width: int = 8, height: int = 20):
        if width < 1 or height < PIECE_SIZE:
            raise ValueError("grid too small")
        self.width = width
        self.height = height
        self.grid = TrackedArray(
            [TrackedArray(height) for _ in range(width)]
        )
        self.top = TrackedArray([0] * width)
        self.score = 0
        self.pieces_dropped = 0
        self.game_over = False

    # Queries. -------------------------------------------------------------------

    def column_height(self, col: int) -> int:
        return self.top[col]

    def cell(self, col: int, row: int) -> Optional[int]:
        return self.grid[col][row]

    def column_free(self, col: int) -> int:
        """Free cells remaining in ``col``."""
        return self.height - self.top[col]

    def render(self) -> str:
        """ASCII rendering (row 0 at the bottom)."""
        lines = []
        for row in range(self.height - 1, -1, -1):
            cells = []
            for col in range(self.width):
                v = self.grid[col][row]
                cells.append("." if v is None else str(v))
            lines.append("".join(cells))
        lines.append("-" * self.width)
        return "\n".join(lines)

    # Mechanics. ------------------------------------------------------------------

    def drop_piece(self, col: int, colors: tuple[int, ...]) -> int:
        """Drop a piece (bottom-to-top jewel colors) into ``col``; resolve
        matches and cascades.  Returns the number of jewels cleared.
        Raises ValueError if the column cannot hold the piece."""
        if self.game_over:
            raise ValueError("game over")
        if not 0 <= col < self.width:
            raise ValueError(f"column {col} out of range")
        if self.column_free(col) < len(colors):
            self.game_over = True
            return 0
        cells = self.grid[col]
        base = self.top[col]
        for offset, color in enumerate(colors):
            cells[base + offset] = color
        self.top[col] = base + len(colors)
        self.pieces_dropped += 1
        cleared = self._resolve_matches()
        self.score += cleared
        return cleared

    def _resolve_matches(self) -> int:
        """Clear match-3 runs and compact until the grid is stable."""
        total = 0
        while True:
            matched = self._find_matches()
            if not matched:
                return total
            total += len(matched)
            for col, row in matched:
                self.grid[col][row] = None
            self._apply_gravity(sorted({col for col, _ in matched}))

    def _find_matches(self) -> set[tuple[int, int]]:
        # Hot loop: read the raw cell storage directly — reads carry no
        # write barrier, so this is pure constant-factor relief for the
        # game code, identical across benchmark modes.
        columns = [self.grid[c]._items for c in range(self.width)]
        tops = [self.top[c] for c in range(self.width)]
        matched: set[tuple[int, int]] = set()
        directions = ((1, 0), (0, 1), (1, 1), (1, -1))
        for col in range(self.width):
            cells = columns[col]
            for row in range(tops[col]):
                color = cells[row]
                if color is None:
                    continue
                for dc, dr in directions:
                    c, r = col + dc, row + dr
                    length = 1
                    while (
                        0 <= c < self.width
                        and 0 <= r < self.height
                        and columns[c][r] == color
                    ):
                        length += 1
                        c, r = c + dc, r + dr
                    if length >= MATCH_LEN:
                        c, r = col, row
                        for _ in range(length):
                            matched.add((c, r))
                            c, r = c + dc, r + dr
        return matched

    def _apply_gravity(self, columns: Optional[list[int]] = None) -> None:
        """Compact the given columns (default: all) downward and refresh
        ``top``."""
        if columns is None:
            columns = list(range(self.width))
        for col in columns:
            cells = self.grid[col]
            write = 0
            for row in range(self.height):
                v = cells[row]
                if v is not None:
                    if row != write:
                        cells[write] = v
                        cells[row] = None
                    write += 1
            if self.top[col] != write:
                self.top[col] = write

    # Fault injection. ---------------------------------------------------------------

    def corrupt_float(self, col: int) -> bool:
        """Create a floating jewel above the column top."""
        t = self.top[col]
        if t + 1 >= self.height:
            return False
        self.grid[col][t + 1] = 1
        return True

    def corrupt_top(self, col: int, delta: int = 1) -> None:
        """Skew the ``top`` entry for ``col``."""
        self.top[col] = max(0, min(self.height, self.top[col] + delta))


class NetcolsBot:
    """Deterministic pseudo-random player (LCG), the workload driver.

    Each :meth:`step` drops one piece into a playable column.  When the
    board cannot hold another piece anywhere, the grid is cleared (new
    game) so long benchmark runs keep mutating the structure.
    """

    def __init__(self, game: NetcolsGame, seed: int = 0xC0105):
        self.game = game
        self._state = seed & 0x7FFFFFFF
        self.games_played = 1

    def _rand(self, bound: int) -> int:
        self._state = (self._state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._state % bound

    def _playable_columns(self) -> list[int]:
        game = self.game
        return [
            col
            for col in range(game.width)
            if game.column_free(col) >= PIECE_SIZE
        ]

    def _new_game(self) -> None:
        game = self.game
        for col in range(game.width):
            cells = game.grid[col]
            for row in range(game.top[col]):
                cells[row] = None
            game.top[col] = 0
        game.game_over = False
        self.games_played += 1

    def step(self) -> int:
        """Play one frame: drop a piece (restarting first if necessary).
        Returns the number of jewels cleared this frame."""
        playable = self._playable_columns()
        if not playable:
            self._new_game()
            playable = self._playable_columns()
        col = playable[self._rand(len(playable))]
        colors = tuple(
            1 + self._rand(COLORS) for _ in range(PIECE_SIZE)
        )
        return self.game.drop_piece(col, colors)
