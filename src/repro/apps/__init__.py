"""The paper's two sample applications (§5.2): Netcols and JSO."""

from .netcols import (
    NetcolsGame,
    NetcolsBot,
    check_empty,
    check_full,
    check_top,
    netcols_invariant,
)
from .jso import (
    JList,
    JsObfuscator,
    Token,
    TokenKind,
    generate_program,
    good_mapping,
    in_reserved,
    jso_invariant,
    tokenize,
)

__all__ = [
    "check_empty",
    "check_full",
    "check_top",
    "generate_program",
    "good_mapping",
    "in_reserved",
    "JList",
    "JsObfuscator",
    "jso_invariant",
    "netcols_invariant",
    "NetcolsBot",
    "NetcolsGame",
    "Token",
    "TokenKind",
    "tokenize",
]
