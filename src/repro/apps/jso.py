"""JSO — the paper's JavaScript-obfuscator sample application (§5.2).

"JSO is a JavaScript obfuscator written in 600 lines of Java.  It renames
JavaScript functions, and keeps a map from old names to new so that if the
same function is invoked again, its correct new name will be used.
However, functions whose names have certain properties or that are on a
list of reserved keywords should not be renamed.  Thus, we check the
invariant that keys in the renaming map do not meet any exclusionary
criteria.  To enable this invariant, we maintain an auxiliary list of map
keys, ``names``."

This module contains:

* a JavaScript tokenizer (identifiers, keywords, numbers, strings with
  escapes, template literals, comments, operators/punctuation) — the
  compiler-ish substrate the obfuscator runs on;
* :class:`JsObfuscator`, which renames function declarations and their call
  sites, maintaining the old→new map and the tracked ``names`` key list;
* the Figure 13 invariant (:func:`good_mapping` / :func:`in_reserved`):
  every renamed key starts with a lowercase letter, is not digit-initial,
  and is not a reserved word;
* :func:`generate_program`, a deterministic synthetic-JS generator used to
  reproduce Figure 14's input-size sweep.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.tracked import TrackedArray, TrackedObject
from ..instrument.registry import check

#: ECMAScript reserved words plus the names JSO must never touch.
RESERVED_WORDS = (
    "break", "case", "catch", "class", "const", "continue", "debugger",
    "default", "delete", "do", "else", "export", "extends", "finally",
    "for", "function", "if", "import", "in", "instanceof", "let", "new",
    "return", "super", "switch", "this", "throw", "try", "typeof", "var",
    "void", "while", "with", "yield", "eval", "arguments", "undefined",
    "null", "true", "false",
)


# ---------------------------------------------------------------------------
# Tokenizer.
# ---------------------------------------------------------------------------

class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    TEMPLATE = "template"
    PUNCT = "punct"
    COMMENT = "comment"
    WHITESPACE = "whitespace"
    NEWLINE = "newline"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_ident(self, text: Optional[str] = None) -> bool:
        return self.kind is TokenKind.IDENT and (
            text is None or self.text == text
        )


class TokenizeError(ValueError):
    """Malformed JavaScript input."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


_PUNCT_3 = ("===", "!==", "**=", "...", "<<=", ">>=", "&&=", "||=", "??=")
_PUNCT_2 = (
    "==", "!=", "<=", ">=", "&&", "||", "??", "=>", "++", "--", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "**", "?.",
)
_PUNCT_1 = "+-*/%=<>!&|^~?:;,.()[]{}"


def tokenize(source: str, keep_trivia: bool = False) -> list[Token]:
    """Tokenize JavaScript ``source``.  Trivia (whitespace/comments) are
    dropped unless ``keep_trivia`` — the obfuscator keeps them so it can
    re-emit a faithful program."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def emit(kind: TokenKind, text: str) -> None:
        if keep_trivia or kind not in (
            TokenKind.WHITESPACE, TokenKind.COMMENT, TokenKind.NEWLINE
        ):
            tokens.append(Token(kind, text, line, col))

    while i < n:
        ch = source[i]
        start = i
        if ch == "\n":
            emit(TokenKind.NEWLINE, "\n")
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            while i < n and source[i] in " \t\r":
                i += 1
            emit(TokenKind.WHITESPACE, source[start:i])
            col += i - start
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            emit(TokenKind.COMMENT, source[start:i])
            col += i - start
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise TokenizeError("unterminated block comment", line, col)
            text = source[i : end + 2]
            emit(TokenKind.COMMENT, text)
            newlines = text.count("\n")
            if newlines:
                line += newlines
                col = len(text) - text.rfind("\n")
            else:
                col += len(text)
            i = end + 2
            continue
        if ch.isalpha() or ch in "_$":
            while i < n and (source[i].isalnum() or source[i] in "_$"):
                i += 1
            text = source[start:i]
            kind = (
                TokenKind.KEYWORD
                if text in RESERVED_WORDS
                else TokenKind.IDENT
            )
            emit(kind, text)
            col += i - start
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and source[i + 1].isdigit()
        ):
            i += 1
            while i < n and (source[i].isalnum() or source[i] in "._xXbBoOeE"):
                if source[i] in "eE" and i + 1 < n and source[i + 1] in "+-":
                    i += 1
                i += 1
            emit(TokenKind.NUMBER, source[start:i])
            col += i - start
            continue
        if ch in "\"'":
            quote = ch
            i += 1
            while i < n and source[i] != quote:
                if source[i] == "\\":
                    i += 1
                if i < n and source[i] == "\n":
                    raise TokenizeError("unterminated string", line, col)
                i += 1
            if i >= n:
                raise TokenizeError("unterminated string", line, col)
            i += 1
            emit(TokenKind.STRING, source[start:i])
            col += i - start
            continue
        if ch == "`":
            i += 1
            while i < n and source[i] != "`":
                if source[i] == "\\":
                    i += 1
                i += 1
            if i >= n:
                raise TokenizeError("unterminated template literal", line, col)
            i += 1
            text = source[start:i]
            emit(TokenKind.TEMPLATE, text)
            newlines = text.count("\n")
            if newlines:
                line += newlines
                col = len(text) - text.rfind("\n")
            else:
                col += len(text)
            continue
        matched = False
        for group in (_PUNCT_3, _PUNCT_2):
            for punct in group:
                if source.startswith(punct, i):
                    emit(TokenKind.PUNCT, punct)
                    i += len(punct)
                    col += len(punct)
                    matched = True
                    break
            if matched:
                break
        if matched:
            continue
        if ch in _PUNCT_1:
            emit(TokenKind.PUNCT, ch)
            i += 1
            col += 1
            continue
        raise TokenizeError(f"unexpected character {ch!r}", line, col)
    return tokens


# ---------------------------------------------------------------------------
# The invariant (paper Figure 13).
# ---------------------------------------------------------------------------

class JList(TrackedObject):
    """The auxiliary linked list of renaming-map keys."""

    def __init__(self, value: str, next: Optional["JList"] = None):
        self.value = value
        self.next = next

    def __repr__(self) -> str:
        return f"JList({self.value!r})"


@check
def in_reserved(jso, s, off):
    """``s`` appears in the reserved-name array at position >= ``off``."""
    reserved = jso.reserved_names
    if off == len(reserved):
        return False
    return s == reserved[off] or in_reserved(jso, s, off + 1)


@check
def good_mapping(jso, names):
    """Every key in the renaming map is renameable: lowercase-initial,
    non-digit-initial, and not reserved (Figure 13)."""
    if names is None:
        return True
    s = names.value
    c = s[0]
    if c.isupper() or c.isdigit():
        return False
    b1 = not in_reserved(jso, s, 0)
    b2 = good_mapping(jso, names.next)
    return b1 and b2


@check
def jso_invariant(jso):
    """Entry point: the renaming map contains no protected name."""
    return good_mapping(jso, jso.names)


# ---------------------------------------------------------------------------
# The obfuscator.
# ---------------------------------------------------------------------------

class JsObfuscator(TrackedObject):
    """Renames JavaScript function declarations and their call sites.

    Processing is event-loop style, as in the paper: :meth:`feed` consumes
    one chunk of source, extends the renaming map with any new function
    declarations, and emits the rewritten chunk.  The caller runs the
    invariant between events.
    """

    def __init__(self, reserved: tuple[str, ...] = RESERVED_WORDS):
        self.reserved_names = TrackedArray(reserved)
        self.names: Optional[JList] = None
        self._mapping: dict[str, str] = {}
        self._counter = 0

    @property
    def mapping(self) -> dict[str, str]:
        return dict(self._mapping)

    def _is_reserved(self, name: str) -> bool:
        for i in range(len(self.reserved_names)):
            if self.reserved_names[i] == name:
                return True
        return False

    def renameable(self, name: str) -> bool:
        """A name may be renamed iff it fails every exclusion rule."""
        return not (
            name[0].isupper() or name[0].isdigit() or self._is_reserved(name)
        )

    def _fresh_name(self) -> str:
        self._counter += 1
        index = self._counter
        letters = "abcdefghijklmnopqrstuvwxyz"
        out = []
        while index:
            index, rem = divmod(index - 1, 26)
            out.append(letters[rem])
        return "_" + "".join(reversed(out))

    def _map_name(self, name: str) -> str:
        new = self._mapping.get(name)
        if new is None:
            new = self._fresh_name()
            self._mapping[name] = new
            self.names = JList(name, self.names)
        return new

    def drop_name(self, name: str) -> bool:
        """Forget a mapping (e.g. the declaration scope ended); unlinks the
        key from the tracked ``names`` list."""
        if name not in self._mapping:
            return False
        del self._mapping[name]
        node = self.names
        prev: Optional[JList] = None
        while node is not None:
            if node.value == name:
                if prev is None:
                    self.names = node.next
                else:
                    prev.next = node.next
                return True
            prev, node = node, node.next
        return False

    def feed(self, source: str) -> str:
        """Obfuscate one chunk of JavaScript, updating the renaming map."""
        tokens = tokenize(source, keep_trivia=True)
        out: list[str] = []
        for index, token in enumerate(tokens):
            if token.kind is not TokenKind.IDENT:
                out.append(token.text)
                continue
            name = token.text
            declared = self._previous_significant(
                tokens, index
            ) == "function"
            if declared and self.renameable(name):
                out.append(self._map_name(name))
            elif name in self._mapping:
                out.append(self._mapping[name])
            else:
                out.append(name)
        return "".join(out)

    @staticmethod
    def _previous_significant(tokens: list[Token], index: int) -> str:
        for j in range(index - 1, -1, -1):
            if tokens[j].kind not in (
                TokenKind.WHITESPACE,
                TokenKind.COMMENT,
                TokenKind.NEWLINE,
            ):
                return tokens[j].text
        return ""

    # Fault injection: bypass the exclusion rules (the bug the invariant
    # exists to catch).
    def corrupt_add(self, name: str) -> None:
        """Force ``name`` into the map even if it is protected."""
        if name not in self._mapping:
            self._mapping[name] = self._fresh_name()
            self.names = JList(name, self.names)


# ---------------------------------------------------------------------------
# Synthetic input generator (Figure 14's size axis).
# ---------------------------------------------------------------------------

def generate_program(
    functions: int, seed: int = 0x15EED, calls_per_function: int = 2
) -> Iterator[str]:
    """Yield ``functions`` chunks of synthetic JavaScript, each declaring
    one function and calling a few earlier ones.  Deterministic in
    ``seed``."""
    state = seed & 0x7FFFFFFF
    names: list[str] = []

    def rand(bound: int) -> int:
        nonlocal state
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        return state % bound

    adjectives = ("fast", "lazy", "tiny", "grand", "odd", "neat", "calm")
    nouns = ("parser", "widget", "cache", "router", "queue", "mixer", "node")
    for index in range(functions):
        name = (
            f"{adjectives[rand(len(adjectives))]}"
            f"_{nouns[rand(len(nouns))]}_{index}"
        )
        body_calls = []
        for _ in range(min(calls_per_function, len(names))):
            callee = names[rand(len(names))]
            body_calls.append(f"  {callee}({rand(100)});")
        names.append(name)
        chunk = (
            f"function {name}(x) {{\n"
            f"  // auto-generated\n"
            f"  var total = x * {1 + rand(9)};\n"
            + "\n".join(body_calls)
            + ("\n" if body_calls else "")
            + f"  return total + {rand(50)};\n"
            f"}}\n"
        )
        yield chunk
