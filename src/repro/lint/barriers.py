"""Barrier-bypass detection (the DIT1xx mutator-side rules).

The write barrier lives in ``TrackedObject.__setattr__`` and the tracked
containers' mutators (paper §4).  Any store that reaches the heap without
going through them silently desynchronizes the computation graph — the
engine keeps serving memoized results for locations that changed.  The
dynamic system can only catch this probabilistically (paranoia
re-execution, or the QA fuzzer happening to drive the bypassing mutator);
this pass catches it statically by scanning every function and method in a
module for the known bypass shapes:

* ``object.__setattr__(x, "field", v)`` / ``object.__delattr__`` —
  the canonical bypass: skips the subclass ``__setattr__`` entirely.
  Exempt inside ``__init__`` (construction precedes tracking; the tracked
  base itself is also exempt — it is the barrier) and for
  ``_ditto*``-named bookkeeping methods.  Severity is ``error`` when the
  stored field is monitored by some check, ``warning`` otherwise (today's
  unmonitored field is tomorrow's invariant input).
* ``x.__dict__["field"] = v`` and ``x.__dict__.update(...)`` /
  ``vars(x)[...] = v`` — same hole through the instance dict (DIT102).
* ``setattr(x, name, v)`` with a *dynamic* name — goes through the
  barrier, but the monitored-field check cannot be evaluated statically,
  so the store is flagged for human review (DIT103).  Constant-name
  ``setattr`` is equivalent to a plain store and is not flagged.
* mutation of a tracked container's raw backing list (``x._items``) — an
  in-place ``append``/``pop``/slot store on the alias skips the logging
  mutators of ``TrackedArray``/``TrackedList`` (DIT104, error); merely
  taking the alias is a warning-severity escape.
* a store to a *check-monitored field name* from a class without barriers
  (DIT105, warning): the store itself is harmless — strict engines refuse
  to read untracked objects — but it usually means a structure class
  forgot to derive from the tracked base.
"""

from __future__ import annotations

import ast

from .rules import Diagnostic

#: The raw backing attribute of the tracked containers.
BACKING_FIELDS = frozenset({"_items"})

#: Container methods that mutate in place (flagged on backing aliases).
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "sort",
        "reverse",
        "add",
        "discard",
        "update",
        "setdefault",
        "popitem",
    }
)

#: Classes that *are* the barrier implementation — their own internals
#: legitimately touch ``object.__setattr__`` and ``self._items``.
_BARRIER_IMPL_CLASSES = frozenset(
    {"TrackedObject", "TrackedArray", "TrackedList"}
)


def _contains_dunder_dict(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "__dict__"
        for sub in ast.walk(node)
    ) or any(
        isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Name)
        and sub.func.id == "vars"
        for sub in ast.walk(node)
    )


def _attr_in_chain(node: ast.AST, names: frozenset[str]) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr in names
        for sub in ast.walk(node)
    )


class _Scanner(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        tracked_classes: set[str],
        monitored_fields: set[str],
    ):
        self.path = path
        self.tracked_classes = tracked_classes
        self.monitored = monitored_fields
        self.diagnostics: list[Diagnostic] = []
        self.class_stack: list[str] = []
        self.method_stack: list[str] = []

    # Context tracking. ------------------------------------------------------

    @property
    def _class(self) -> str | None:
        return self.class_stack[-1] if self.class_stack else None

    @property
    def _function(self) -> str | None:
        if not self.method_stack:
            return None
        name = self.method_stack[-1]
        return f"{self._class}.{name}" if self._class else name

    @property
    def _exempt(self) -> bool:
        """Construction and barrier bookkeeping are allowed to bypass."""
        if self._class in _BARRIER_IMPL_CLASSES:
            return True
        if self.method_stack:
            name = self.method_stack[-1]
            if name == "__init__" or name.startswith("_ditto"):
                return True
        return False

    @property
    def _in_tracked_class(self) -> bool:
        return self._class is not None and self._class in self.tracked_classes

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.method_stack.append(node.name)
        self.generic_visit(node)
        self.method_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # Findings. --------------------------------------------------------------

    def _emit(
        self, code: str, node: ast.AST, message: str, severity: str = ""
    ) -> None:
        self.diagnostics.append(Diagnostic(
            code,
            message,
            file=self.path,
            line=getattr(node, "lineno", 0),
            function=self._function,
            severity=severity,
        ))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # object.__setattr__(x, name, v) / object.__delattr__(x, name)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in {"object", "super"}
            and func.attr in {"__setattr__", "__delattr__"}
            and not self._exempt
        ):
            self._flag_setattr_bypass(node, func.attr)
        # x.__dict__.update(...) / x.__dict__.setdefault(...)
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and _contains_dunder_dict(func.value)
            and not self._exempt
        ):
            self._emit(
                "DIT102",
                node,
                f"mutates the instance __dict__ via .{func.attr}(); the "
                f"store never reaches the write barrier",
            )
        # alias.append(...) on a raw backing list
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and _attr_in_chain(func.value, BACKING_FIELDS)
            and not self._exempt
            and self._class not in _BARRIER_IMPL_CLASSES
        ):
            self._emit(
                "DIT104",
                node,
                f"calls .{func.attr}() on the raw backing list of a "
                f"tracked container; use the tracked mutators so the "
                f"write is logged",
            )
        # setattr(x, name, v) with a dynamic name
        elif (
            isinstance(func, ast.Name)
            and func.id == "setattr"
            and len(node.args) >= 2
        ):
            name_arg = node.args[1]
            if not isinstance(name_arg, ast.Constant):
                self._emit(
                    "DIT103",
                    node,
                    "setattr() with a dynamic field name; the barrier "
                    "fires, but the monitored-field set cannot be checked "
                    "statically",
                )
        self.generic_visit(node)

    def _flag_setattr_bypass(self, node: ast.Call, how: str) -> None:
        if len(node.args) < 2:
            return
        name_arg = node.args[1]
        if isinstance(name_arg, ast.Constant) and isinstance(
            name_arg.value, str
        ):
            field = name_arg.value
            if field.startswith("_"):
                return  # private bookkeeping is never monitored
            if field in self.monitored:
                self._emit(
                    "DIT101",
                    node,
                    f"object.{how}(..., {field!r}) bypasses the write "
                    f"barrier on a field monitored by an invariant check; "
                    f"the computation graph will silently go stale",
                )
            else:
                self._emit(
                    "DIT101",
                    node,
                    f"object.{how}(..., {field!r}) bypasses the write "
                    f"barrier (field not currently monitored)",
                    severity="warning",
                )
        else:
            self._emit(
                "DIT103",
                node,
                f"object.{how}() with a dynamic field name bypasses the "
                f"write barrier",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
        # y = x._items — the alias escapes; later mutations are invisible.
        if (
            isinstance(node.value, ast.Attribute)
            and node.value.attr in BACKING_FIELDS
            and not self._exempt
            and self._class not in _BARRIER_IMPL_CLASSES
        ):
            self._emit(
                "DIT104",
                node,
                "aliases the raw backing list of a tracked container; "
                "mutations through the alias evade the write barrier",
                severity="warning",
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def _check_store_target(self, target: ast.AST) -> None:
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        if self._exempt:
            return
        # x.__dict__["f"] = v
        if isinstance(target, ast.Subscript) and _contains_dunder_dict(
            target.value
        ):
            self._emit(
                "DIT102",
                target,
                "store through the instance __dict__ evades the write "
                "barrier",
            )
            return
        # x._items[i] = v / x._items += [...]
        if _attr_in_chain(target, BACKING_FIELDS) and (
            self._class not in _BARRIER_IMPL_CLASSES
        ):
            # A plain read of ._items (repr, len) is fine; only stores
            # through the alias chain are bypasses.
            if isinstance(target, ast.Subscript) or (
                isinstance(target, ast.Attribute)
                and target.attr in BACKING_FIELDS
            ):
                self._emit(
                    "DIT104",
                    target,
                    "store through the raw backing list of a tracked "
                    "container evades the write barrier",
                )
            return
        # Plain self.field = v in a class without barriers.
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class is not None
            and not self._in_tracked_class
            and not target.attr.startswith("_")
            and target.attr in self.monitored
            and self.method_stack
            and self.method_stack[-1] != "__init__"
        ):
            self._emit(
                "DIT105",
                target,
                f"stores check-monitored field {target.attr!r} on class "
                f"{self._class!r}, which has no write barrier; derive it "
                f"from TrackedObject if checks should observe it",
            )


def scan_module(
    tree: ast.Module,
    path: str,
    tracked_classes: set[str],
    monitored_fields: set[str],
) -> list[Diagnostic]:
    """Run the barrier-bypass pass over one parsed module."""
    scanner = _Scanner(path, tracked_classes, monitored_fields)
    scanner.visit(tree)
    return scanner.diagnostics
