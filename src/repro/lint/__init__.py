"""``repro.lint`` — whole-program soundness analysis for invariant checks.

Two consumers, one rule catalogue (:mod:`repro.lint.rules`):

* **File mode** (``python -m repro.lint paths...`` / :func:`lint_paths`):
  parses the given files as one program — no imports executed — and runs
  interprocedural check admissibility (DIT0xx), barrier-bypass detection
  (DIT1xx), and derived-strategy fold classification (DIT2xx).  This is
  the CI gate.
* **Live mode** (:func:`build_plan` / ``DittoEngine(..., lint=...)`` /
  ``engine.lint()``): resolves the real registered objects, producing an
  :class:`EntryPlan` whose per-entry monitored-field set and helper read
  summaries the engine consumes directly.
"""

from .interproc import EntryPlan, build_plan
from .modlint import lint_paths
from .purity import HelperSummary, analyze_helper, analyze_helper_tree
from .rules import ERROR, NOTE, RULES, WARNING, Diagnostic, LintReport, Rule

__all__ = [
    "ERROR",
    "NOTE",
    "WARNING",
    "RULES",
    "Rule",
    "Diagnostic",
    "LintReport",
    "EntryPlan",
    "HelperSummary",
    "analyze_helper",
    "analyze_helper_tree",
    "build_plan",
    "lint_paths",
]
