"""Command-line entry point: ``python -m repro.lint [paths...]``.

Exit codes: 0 — no error-severity findings (warnings alone never gate
unless ``--strict-warnings``); 1 — at least one gating finding; 2 — usage
error (no such path and nothing linted).

Examples::

    python -m repro.lint src/repro/structures examples
    python -m repro.lint src/repro/structures --format json > lint.json
    python -m repro.lint --rules         # print the rule catalogue
    python -m repro.lint --explain DIT203   # one rule, in depth
"""

from __future__ import annotations

import argparse
import sys

from .modlint import lint_paths
from .rules import RULES


def _print_rules() -> None:
    for code in sorted(RULES):
        rule = RULES[code]
        print(f"{code}  {rule.severity:<7}  {rule.name:<26} {rule.summary}")


def _explain_rule(code: str) -> int:
    rule = RULES.get(code.upper())
    if rule is None:
        known = ", ".join(sorted(RULES))
        print(f"error: unknown rule code {code!r} (known: {known})",
              file=sys.stderr)
        return 2
    print(f"{rule.code} ({rule.name}) — severity: {rule.severity}")
    print()
    print(rule.summary)
    if rule.rationale:
        print()
        print(rule.rationale)
    if rule.example:
        print()
        print("Example:")
        for line in rule.example.splitlines():
            print(f"    {line}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Whole-program soundness linter for DITTO invariant checks: "
            "interprocedural check admissibility (DIT0xx) and write-barrier "
            "bypass detection (DIT1xx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories are walked for .py)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write the report (in the chosen format) to this file",
    )
    parser.add_argument(
        "--strict-warnings",
        action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print one rule's summary, rationale, and example, then exit "
             "(exit code 2 for an unknown code)",
    )
    args = parser.parse_args(argv)

    if args.explain:
        return _explain_rule(args.explain)
    if args.rules:
        _print_rules()
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --rules)", file=sys.stderr)
        return 2

    report = lint_paths(args.paths)
    if report.files_linted == 0 and report.diagnostics:
        # Nothing lintable and only path errors: usage problem.
        for diag in report.sorted():
            print(diag.format(), file=sys.stderr)
        return 2

    rendered = (
        report.to_json() if args.format == "json" else report.format_text()
    )
    print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(
                report.to_json()
                if args.format == "json"
                else report.format_text() + "\n"
            )
    return report.exit_code(strict_warnings=args.strict_warnings)
