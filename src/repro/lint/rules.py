"""Rule catalogue, diagnostics, and report model for ``repro.lint``.

Rule codes are stable API: tools (CI gates, ``# noqa:`` suppressions,
editor integrations) key on them, so codes are never renumbered or reused.
The ``DIT0xx`` block covers the *check side* — interprocedural
admissibility of ``@check`` functions and everything they transitively
call (paper §3.5, Definition 2).  The ``DIT1xx`` block covers the *mutator
side* — stores that would evade the write barriers of §4, which the
dynamic system can only catch probabilistically (paranoia re-execution or
the QA fuzzer happening to hit the divergence).

Severities: ``error`` findings are soundness holes — the incremental
result can silently diverge from a from-scratch execution; the CLI exits
non-zero and strict engine registration refuses the check.  ``warning``
findings are unprovable-but-plausible constructs the analyzer cannot
verify (unresolvable call targets, dynamic attribute names); they are
reported but do not gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

ERROR = "error"
WARNING = "warning"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code, a default severity, and a summary."""

    code: str
    name: str
    severity: str
    summary: str


#: The shipped rule catalogue, keyed by code.  See ``docs/architecture.md``
#: §10 for the full rationale of each rule.
RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        # Check-side interprocedural admissibility (DIT0xx). ----------------
        Rule(
            "DIT001",
            "impure-helper",
            ERROR,
            "helper reachable from a check has side effects",
        ),
        Rule(
            "DIT002",
            "unverifiable-call",
            WARNING,
            "call target cannot be resolved or statically verified",
        ),
        Rule(
            "DIT003",
            "untracked-helper-read",
            ERROR,
            "helper reads heap locations the engine cannot attribute",
        ),
        Rule(
            "DIT004",
            "mutable-global",
            ERROR,
            "check or helper reads a global bound to a mutable value",
        ),
        Rule(
            "DIT005",
            "unverifiable-method",
            WARNING,
            "method call purity cannot be statically verified",
        ),
        Rule(
            "DIT006",
            "registered-pure-lie",
            ERROR,
            "function registered as pure fails the purity analysis",
        ),
        Rule(
            "DIT007",
            "check-restriction",
            ERROR,
            "check violates the admissible language subset",
        ),
        Rule(
            "DIT008",
            "unattributable-method",
            ERROR,
            "pure method on a tracked receiver has reads the engine "
            "cannot attribute to the calling node",
        ),
        # Mutator-side barrier-bypass detection (DIT1xx). --------------------
        Rule(
            "DIT101",
            "setattr-bypass",
            ERROR,
            "object.__setattr__/__delattr__ store evades the write barrier",
        ),
        Rule(
            "DIT102",
            "dict-store-bypass",
            ERROR,
            "store through __dict__/vars() evades the write barrier",
        ),
        Rule(
            "DIT103",
            "dynamic-setattr",
            WARNING,
            "dynamic-name setattr cannot be checked against monitored fields",
        ),
        Rule(
            "DIT104",
            "raw-backing-alias",
            ERROR,
            "raw backing list of a tracked container mutated in place",
        ),
        Rule(
            "DIT105",
            "untracked-monitored-store",
            WARNING,
            "monitored field name stored on a class without write barriers",
        ),
    )
}


@dataclass
class Diagnostic:
    """One finding: a rule violation at a source position."""

    code: str
    message: str
    file: str | None = None
    line: int = 0
    function: str | None = None
    severity: str = ""

    def __post_init__(self) -> None:
        if not self.severity:
            self.severity = RULES[self.code].severity

    @property
    def rule(self) -> Rule:
        return RULES[self.code]

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "name": self.rule.name,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "function": self.function,
        }

    def format(self) -> str:
        where = self.file if self.file else "<live>"
        position = f"{where}:{self.line}" if self.line else where
        scope = f" [{self.function}]" if self.function else ""
        return f"{position}: {self.code} {self.severity}: {self.message}{scope}"


class LintReport:
    """An ordered collection of diagnostics with gate/exit semantics."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: list[Diagnostic] = list(diagnostics)
        #: Number of files the run examined (file mode only).
        self.files_linted = 0

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings are present."""
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def exit_code(self, strict_warnings: bool = False) -> int:
        if self.errors:
            return 1
        if strict_warnings and self.warnings:
            return 1
        return 0

    def sorted(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (
                d.file or "",
                d.line,
                _SEVERITY_ORDER.get(d.severity, 9),
                d.code,
            ),
        )

    def format_text(self) -> str:
        lines = [d.format() for d in self.sorted()]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": 1,
                "files_linted": self.files_linted,
                "summary": {
                    "errors": len(self.errors),
                    "warnings": len(self.warnings),
                },
                "diagnostics": [d.to_dict() for d in self.sorted()],
            },
            indent=2,
            sort_keys=True,
        ) + "\n"
