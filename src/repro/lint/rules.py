"""Rule catalogue, diagnostics, and report model for ``repro.lint``.

Rule codes are stable API: tools (CI gates, ``# noqa:`` suppressions,
editor integrations) key on them, so codes are never renumbered or reused.
The ``DIT0xx`` block covers the *check side* — interprocedural
admissibility of ``@check`` functions and everything they transitively
call (paper §3.5, Definition 2).  The ``DIT1xx`` block covers the *mutator
side* — stores that would evade the write barriers of §4, which the
dynamic system can only catch probabilistically (paranoia re-execution or
the QA fuzzer happening to hit the divergence).

The ``DIT2xx`` block covers *strategy classification* — whether a check
admits the derived (fold-maintenance) strategy of :mod:`repro.derive`,
and, when it does not, why.  These findings never indicate a soundness
problem: a rejected check simply stays on the memo-graph path.

Severities: ``error`` findings are soundness holes — the incremental
result can silently diverge from a from-scratch execution; the CLI exits
non-zero and strict engine registration refuses the check.  ``warning``
findings are unprovable-but-plausible constructs the analyzer cannot
verify (unresolvable call targets, dynamic attribute names); they are
reported but do not gate.  ``note`` findings are informational
classification results (the DIT2xx family); they never affect exit codes,
even under ``--strict-warnings``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

ERROR = "error"
WARNING = "warning"
NOTE = "note"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, NOTE: 2}


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code, a default severity, a one-line
    summary, and (for ``--explain``) a rationale paragraph plus a short
    illustrative example."""

    code: str
    name: str
    severity: str
    summary: str
    rationale: str = ""
    example: str = ""


#: The shipped rule catalogue, keyed by code.  See ``docs/architecture.md``
#: §10 and §14 for the full rationale of each rule.
RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        # Check-side interprocedural admissibility (DIT0xx). ----------------
        Rule(
            "DIT001",
            "impure-helper",
            ERROR,
            "helper reachable from a check has side effects",
            rationale=(
                "Checks must be side-effect-free (paper §3.5): the engine "
                "memoizes and selectively re-executes nodes, so a helper "
                "that mutates state runs a data-dependent number of times "
                "and the incremental result silently diverges from a "
                "from-scratch execution."
            ),
            example=(
                "def helper(x):\n"
                "    CACHE[x] = x * 2   # store — impure\n"
                "    return CACHE[x]"
            ),
        ),
        Rule(
            "DIT002",
            "unverifiable-call",
            WARNING,
            "call target cannot be resolved or statically verified",
            rationale=(
                "The analyzer proves purity by reading source; a call "
                "whose target cannot be resolved (or has no Python "
                "source) might do anything.  Register the target with "
                "repro.register_pure_helper to assert purity explicitly."
            ),
            example=(
                "@check\n"
                "def c(v):\n"
                "    return mystery(v)  # 'mystery' not defined in "
                "linted files"
            ),
        ),
        Rule(
            "DIT003",
            "untracked-helper-read",
            ERROR,
            "helper reads heap locations the engine cannot attribute",
            rationale=(
                "Helper reads become implicit arguments of the calling "
                "node, but only depth-1 reads of the helper's parameters "
                "can be attributed.  Deeper pointer chases (a.b.c) are "
                "invisible to the dirty-marking pass: mutations there "
                "never re-execute the node."
            ),
            example=(
                "def helper(e):\n"
                "    return e.next.key  # depth-2 read — unattributable"
            ),
        ),
        Rule(
            "DIT004",
            "mutable-global",
            ERROR,
            "check or helper reads a global bound to a mutable value",
            rationale=(
                "Write barriers cover tracked objects, not module "
                "globals.  A check reading a mutable global can change "
                "its answer without any barrier event, so the memo graph "
                "is never dirtied and the stale result is reused."
            ),
            example=(
                "LIMITS = [10, 20]      # mutable module global\n"
                "@check\n"
                "def c(v):\n"
                "    return len(v) < LIMITS[0]"
            ),
        ),
        Rule(
            "DIT005",
            "unverifiable-method",
            WARNING,
            "method call purity cannot be statically verified",
            rationale=(
                "Method dispatch is dynamic: the receiver's class is "
                "unknown statically, so the analyzer cannot find the "
                "implementation to verify.  Register the implementation "
                "with repro.register_pure_method to name it explicitly."
            ),
            example=(
                "@check\n"
                "def c(t):\n"
                "    return t.depth() > 0  # .depth() unverifiable"
            ),
        ),
        Rule(
            "DIT006",
            "registered-pure-lie",
            ERROR,
            "function registered as pure fails the purity analysis",
            rationale=(
                "register_pure_helper / register_pure_method are trust "
                "declarations the engine acts on (it skips re-execution "
                "of registered calls).  When the analyzer can prove the "
                "registered body has side effects, the declaration is a "
                "soundness lie, not an unprovable claim."
            ),
            example=(
                "@register_pure_helper\n"
                "def h(x):\n"
                "    LOG.append(x)  # registered pure, provably impure\n"
                "    return x"
            ),
        ),
        Rule(
            "DIT007",
            "check-restriction",
            ERROR,
            "check violates the admissible language subset",
            rationale=(
                "The incrementalizer supports the paper's check language "
                "(§3.5): straight-line recursive functions without "
                "short-circuits guarded by callee results, stores, or "
                "unbounded constructs.  Outside the subset the memo "
                "graph's reuse conditions do not hold."
            ),
            example=(
                "@check\n"
                "def c(n):\n"
                "    return n.ok and c(n.next)  # callee-guarded "
                "short-circuit"
            ),
        ),
        Rule(
            "DIT008",
            "unattributable-method",
            ERROR,
            "pure method on a tracked receiver has reads the engine "
            "cannot attribute to the calling node",
            rationale=(
                "A registered-pure method on a tracked class is executed "
                "without instrumentation; its heap reads are attributed "
                "to the calling node from its static read summary.  "
                "Reads the summary cannot cover (deep chases, dynamic "
                "subscripts) make mutations invisible to dirty marking."
            ),
            example=(
                "class T(TrackedObject):\n"
                "    def tail(self):\n"
                "        return self.head.next.key  # depth-2 read"
            ),
        ),
        # Mutator-side barrier-bypass detection (DIT1xx). --------------------
        Rule(
            "DIT101",
            "setattr-bypass",
            ERROR,
            "object.__setattr__/__delattr__ store evades the write barrier",
            rationale=(
                "TrackedObject's barrier lives in __setattr__; calling "
                "object.__setattr__ directly stores without logging, so "
                "the engine reuses memoized results computed from the "
                "old value."
            ),
            example=(
                "object.__setattr__(node, 'key', 7)  # no barrier event"
            ),
        ),
        Rule(
            "DIT102",
            "dict-store-bypass",
            ERROR,
            "store through __dict__/vars() evades the write barrier",
            rationale=(
                "Writing instance.__dict__['f'] = v (or through vars()) "
                "skips __setattr__ entirely — the same silent-staleness "
                "hole as DIT101 via a different door."
            ),
            example="node.__dict__['key'] = 7  # no barrier event",
        ),
        Rule(
            "DIT103",
            "dynamic-setattr",
            WARNING,
            "dynamic-name setattr cannot be checked against monitored fields",
            rationale=(
                "setattr(obj, name, v) with a non-literal name does pass "
                "through the barrier, but the linter cannot prove the "
                "name is (or is not) a monitored field, so the finding "
                "is advisory."
            ),
            example="setattr(node, field_name, value)  # name unknown",
        ),
        Rule(
            "DIT104",
            "raw-backing-alias",
            ERROR,
            "raw backing list of a tracked container mutated in place",
            rationale=(
                "Aliasing a tracked container's private backing list "
                "(obj._items) and mutating the alias stores without any "
                "barrier: the container's locations never log and every "
                "dependent check goes stale."
            ),
            example=(
                "raw = vec._items\n"
                "raw.append(5)  # invisible to the write log"
            ),
        ),
        Rule(
            "DIT105",
            "untracked-monitored-store",
            WARNING,
            "monitored field name stored on a class without write barriers",
            rationale=(
                "A store to a field name some check reads, on a class "
                "that does not inherit a tracked base, suggests state "
                "the checks depend on living outside the barrier's "
                "reach.  Often intentional (plain value objects), hence "
                "a warning."
            ),
            example=(
                "class Plain:           # not a TrackedObject\n"
                "    def set(self):\n"
                "        self.items = []  # 'items' is monitored"
            ),
        ),
        # Strategy classification: derived-fold admissibility (DIT2xx). ------
        Rule(
            "DIT201",
            "fold-admissible",
            NOTE,
            "check is an admissible linear fold; eligible for O(1) "
            "derived maintenance",
            rationale=(
                "The check matches the linear-fold grammar: a single "
                "self-call stepping i+1 over one tracked container, with "
                "a commutative-monoid combine (sum, conjunction, min/max "
                "via a comparison-select).  The derived strategy "
                "(strategy='derived'/'hybrid', repro.derive) maintains "
                "its value with an O(1) delta per point mutation instead "
                "of re-running the fold."
            ),
            example=(
                "@check\n"
                "def total(v, i):\n"
                "    if i >= len(v):\n"
                "        return 0\n"
                "    x = v[i]\n"
                "    rest = total(v, i + 1)\n"
                "    return x + rest"
            ),
        ),
        Rule(
            "DIT202",
            "fold-inadmissible",
            NOTE,
            "self-recursive check does not match the linear-fold grammar",
            rationale=(
                "The check recurses but falls outside the maintainable "
                "shape: tree recursion, a pruned traversal (an early "
                "return between the base guard and the self-call), an "
                "order-dependent or non-monoid combine, or a non-affine "
                "index.  Such folds depend on element order or structure "
                "in ways a per-element delta cannot repair, so the check "
                "stays on the memo-graph path — this is a classification "
                "note, not a defect."
            ),
            example=(
                "@check\n"
                "def digits(v, i):\n"
                "    if i >= len(v):\n"
                "        return 0\n"
                "    rest = digits(v, i + 1)\n"
                "    return rest * 10 + v[i]  # order-dependent combine"
            ),
        ),
        Rule(
            "DIT203",
            "fold-opaque-call",
            NOTE,
            "fold body has calls or reads the maintainer cannot attribute "
            "to container slots",
            rationale=(
                "Derived maintenance re-evaluates one element's "
                "contribution when that element changes, which requires "
                "every read in the per-element term to be a function of "
                "the fold index (container[a*i+b]).  Calls to other "
                "functions, pointer chases (e.next), or reads of foreign "
                "state cannot be re-located per slot, so the delta rule "
                "cannot be synthesized."
            ),
            example=(
                "@check\n"
                "def chained(t, i):\n"
                "    if i >= len(t.buckets):\n"
                "        return True\n"
                "    ok = scan_chain(t.buckets[i])  # opaque call\n"
                "    rest = chained(t, i + 1)\n"
                "    return ok and rest"
            ),
        ),
        Rule(
            "DIT204",
            "fold-float-sum",
            WARNING,
            "float summation is not associative; derived maintenance "
            "would change the rounding",
            rationale=(
                "The derived strategy reassociates the fold (subtract "
                "old contribution, add new).  Integer monoids are exact "
                "under reassociation; IEEE-754 addition is not, so a "
                "derived float sum can differ from the from-scratch "
                "value in the last ulp — violating the bit-identical "
                "parity the QA oracle enforces.  The check is kept on "
                "the memo path; restructure to integers (fixed-point) "
                "for O(1) maintenance."
            ),
            example=(
                "@check\n"
                "def mean_part(v, i):\n"
                "    if i >= len(v):\n"
                "        return 0.0          # float identity\n"
                "    rest = mean_part(v, i + 1)\n"
                "    return v[i] * 0.5 + rest"
            ),
        ),
    )
}


@dataclass
class Diagnostic:
    """One finding: a rule violation at a source position."""

    code: str
    message: str
    file: str | None = None
    line: int = 0
    function: str | None = None
    severity: str = ""

    def __post_init__(self) -> None:
        if not self.severity:
            self.severity = RULES[self.code].severity

    @property
    def rule(self) -> Rule:
        return RULES[self.code]

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "name": self.rule.name,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "function": self.function,
        }

    def format(self) -> str:
        where = self.file if self.file else "<live>"
        position = f"{where}:{self.line}" if self.line else where
        scope = f" [{self.function}]" if self.function else ""
        return f"{position}: {self.code} {self.severity}: {self.message}{scope}"


class LintReport:
    """An ordered collection of diagnostics with gate/exit semantics."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: list[Diagnostic] = list(diagnostics)
        #: Number of files the run examined (file mode only).
        self.files_linted = 0

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def notes(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == NOTE]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings are present."""
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def exit_code(self, strict_warnings: bool = False) -> int:
        if self.errors:
            return 1
        if strict_warnings and self.warnings:
            return 1
        return 0

    def sorted(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (
                d.file or "",
                d.line,
                _SEVERITY_ORDER.get(d.severity, 9),
                d.code,
            ),
        )

    def format_text(self) -> str:
        lines = [d.format() for d in self.sorted()]
        summary = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        if self.notes:
            summary += f", {len(self.notes)} note(s)"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": 1,
                "files_linted": self.files_linted,
                "summary": {
                    "errors": len(self.errors),
                    "warnings": len(self.warnings),
                    "notes": len(self.notes),
                },
                "diagnostics": [d.to_dict() for d in self.sorted()],
            },
            indent=2,
            sort_keys=True,
        ) + "\n"
