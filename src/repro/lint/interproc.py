"""Interprocedural admissibility: the live (registration-time) pass.

The per-function analysis of :mod:`repro.instrument.analysis` validates one
check body and *trusts* everything at its boundary — helper calls, method
calls, global bindings.  This module closes the boundary for a registered
entry point: it builds the call graph over the entry's check closure *and*
every non-check helper reachable from it, runs the summary-based purity
analysis (:mod:`repro.lint.purity`) to a fixpoint over that graph, and
folds the helpers' read summaries back into the entry's barrier plan.

The product is an :class:`EntryPlan`:

* ``monitored_fields`` / ``reads_len`` / ``reads_indices`` — the entry's
  *own* barrier plan, including helper-propagated reads.  The engine
  monitors exactly this set instead of a trusted per-check union, which
  both tightens the monitored-field filter and makes helper field reads
  sound (they are monitored even when no check body names them).
* ``helper_summaries`` — per-helper depth-1 read attributions
  (``param index -> fields``) the runtime uses to record a helper's reads
  as implicit arguments of the calling node.
* ``verified_helpers`` — helpers statically proven side-effect-free with
  every read coverable; under ``lint="strict"`` the engine accepts these
  without a ``register_pure_helper`` registration.
* ``diagnostics`` — DIT-rule findings for everything that cannot be
  proven.

``build_plan`` never raises on *lint* findings (the engine decides how to
react); it only propagates :class:`~repro.core.errors.CheckRestrictionError`
from the underlying per-check analyses, exactly as direct registration
would.
"""

from __future__ import annotations

import types
from dataclasses import dataclass, field
from typing import Any

from ..instrument.analysis import (
    PURE_BUILTINS,
    SAFE_BINDINGS,
    classify_binding,
)
from ..core.tracked import TrackedArray, TrackedObject
from ..instrument.registry import CheckFunction, closure_of
from ..instrument.transform import _PURE_HELPERS, _PURE_METHODS
from .purity import HelperSummary, analyze_helper
from .rules import Diagnostic, LintReport

#: Names the instrumentation handles specially — not helper calls.
_SPECIAL_CALLS = PURE_BUILTINS | {"len"}


def _position(func: Any) -> tuple[str | None, int]:
    code = getattr(func, "__code__", None)
    if code is None:
        return None, 0
    return code.co_filename, code.co_firstlineno


@dataclass
class EntryPlan:
    """Whole-program admissibility plan for one registered entry point."""

    entry: CheckFunction
    #: uid -> CheckFunction, the entry's check closure.
    functions: dict[int, CheckFunction]
    #: Fields monitored on behalf of this entry (checks + helpers).
    monitored_fields: frozenset[str]
    reads_len: bool
    reads_indices: bool
    #: Live helper function -> its purity/read summary.
    helper_summaries: dict[Any, HelperSummary] = field(default_factory=dict)
    #: (class, method name) -> read summary for registered pure methods
    #: the entry calls; the runtime attributes their depth-1 receiver and
    #: argument reads exactly like helper reads (param 0 is the receiver).
    method_summaries: dict[tuple[type, str], HelperSummary] = field(
        default_factory=dict
    )
    #: Helpers statically verified pure with fully-coverable reads.
    verified_helpers: frozenset = frozenset()
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def report(self) -> LintReport:
        return LintReport(self.diagnostics)

    @property
    def ok(self) -> bool:
        return not any(d.severity == "error" for d in self.diagnostics)


def _helper_registered(func: Any) -> bool:
    return func in _PURE_HELPERS


def _receiver_tracked(cls: type) -> bool:
    """Does ``cls`` participate in write-barrier tracking?  Methods on
    untracked receivers have no barrier-visible heap to misattribute."""
    return issubclass(cls, (TrackedObject, TrackedArray))


def _pure_method_impls(name: str) -> list[tuple[type, Any]]:
    """Registered-pure implementations of method ``name``: the classes a
    ``register_pure_method(cls, name)`` call named, with the function
    found on the class (``None`` when the registration is dangling)."""
    impls = []
    for cls, registered in _PURE_METHODS:
        if registered == name:
            impls.append((cls, getattr(cls, name, None)))
    return impls


def build_plan(entry: CheckFunction) -> EntryPlan:
    """Build the interprocedural plan for ``entry``.

    Propagates :class:`CheckRestrictionError` from per-check analyses (the
    same error direct use of the check would raise); all whole-program
    findings are returned as diagnostics instead of raised.
    """
    functions = closure_of(entry)
    diagnostics: list[Diagnostic] = []
    fields: set[str] = set()
    reads_len = False
    reads_indices = False

    helper_summaries: dict[Any, HelperSummary] = {}
    method_summaries: dict[tuple[type, str], HelperSummary] = {}
    #: Helpers whose summary (or a callee's) failed — not verifiable.
    tainted_helpers: set[Any] = set()
    worklist: list[tuple[Any, CheckFunction]] = []
    queued: set[Any] = set()

    def queue_helper(func: Any, owner: CheckFunction) -> None:
        if func not in queued:
            queued.add(func)
            worklist.append((func, owner))

    for fn in functions.values():
        analysis = fn.analysis()
        fields |= analysis.fields_read
        reads_len = reads_len or analysis.reads_len
        reads_indices = reads_indices or analysis.reads_indices
        file, line = _position(fn.original)

        for name in sorted(analysis.called_names):
            if name in _SPECIAL_CALLS:
                continue
            target = fn.lookup_name(name)
            if isinstance(target, CheckFunction):
                continue  # part of the closure, analyzed as a check
            if target is None:
                diagnostics.append(Diagnostic(
                    "DIT002",
                    f"check {fn.name!r} calls {name!r}, which cannot be "
                    f"resolved at lint time",
                    file=file, line=line, function=fn.name,
                ))
            elif isinstance(target, type):
                diagnostics.append(Diagnostic(
                    "DIT002",
                    f"check {fn.name!r} calls constructor {name!r}; "
                    f"allocation inside a check cannot be verified pure",
                    file=file, line=line, function=fn.name,
                ))
            elif isinstance(target, types.FunctionType):
                queue_helper(target, fn)
            elif not _helper_registered(target):
                diagnostics.append(Diagnostic(
                    "DIT002",
                    f"check {fn.name!r} calls {name!r} "
                    f"({type(target).__name__}), which has no analyzable "
                    f"source and is not registered pure",
                    file=file, line=line, function=fn.name,
                ))

        for name in sorted(analysis.methods_called):
            impls = _pure_method_impls(name)
            if not impls:
                diagnostics.append(Diagnostic(
                    "DIT005",
                    f"check {fn.name!r} calls method .{name}() on a "
                    f"receiver whose purity cannot be verified; register "
                    f"it with repro.register_pure_method (strict runtime "
                    f"dispatch rejects it otherwise)",
                    file=file, line=line, function=fn.name,
                ))
                continue
            for cls, impl in impls:
                summary = (
                    analyze_helper(impl)
                    if isinstance(impl, types.FunctionType)
                    else None
                )
                if summary is None:
                    if _receiver_tracked(cls):
                        # No source -> no read summary -> the runtime
                        # cannot attribute the method body's heap reads to
                        # the calling node; mutations it depends on would
                        # never dirty the graph.
                        diagnostics.append(Diagnostic(
                            "DIT008",
                            f"{cls.__name__}.{name} is registered as a "
                            f"pure method on a tracked class but has no "
                            f"analyzable source; its heap reads cannot be "
                            f"attributed to the calling node — define it "
                            f"as plain Python or make it a @check",
                            file=file, line=line,
                            function=f"{cls.__name__}.{name}",
                        ))
                    continue
                if not summary.pure:
                    reasons = "; ".join(
                        f"line {ln}: {msg}"
                        for ln, msg in summary.impure[:3]
                    )
                    ifile, iline = _position(impl)
                    diagnostics.append(Diagnostic(
                        "DIT006",
                        f"{cls.__name__}.{name} is registered as a "
                        f"pure method but has side effects ({reasons})",
                        file=ifile, line=iline,
                        function=f"{cls.__name__}.{name}",
                    ))
                    continue
                fields |= summary.fields_read
                reads_len = reads_len or summary.reads_len or bool(
                    summary.arg_len_read
                )
                reads_indices = reads_indices or summary.reads_indices
                method_summaries[(cls, name)] = summary
                if summary.deep_reads and _receiver_tracked(cls):
                    reasons = "; ".join(
                        f"line {ln}: {msg}"
                        for ln, msg in summary.deep_reads[:3]
                    )
                    ifile, iline = _position(impl)
                    diagnostics.append(Diagnostic(
                        "DIT008",
                        f"{cls.__name__}.{name} reads heap locations the "
                        f"engine cannot attribute to the calling node "
                        f"({reasons})",
                        file=ifile, line=iline,
                        function=f"{cls.__name__}.{name}",
                    ))

        for name in sorted(analysis.globals_read):
            value = fn.lookup_name(name)
            if value is None:
                diagnostics.append(Diagnostic(
                    "DIT002",
                    f"check {fn.name!r} reads global {name!r}, which "
                    f"cannot be resolved at lint time (assumed a "
                    f"late-bound constant)",
                    file=file, line=line, function=fn.name,
                ))
            elif classify_binding(value) not in SAFE_BINDINGS:
                diagnostics.append(Diagnostic(
                    "DIT004",
                    f"check {fn.name!r} reads global {name!r} bound to a "
                    f"mutable {type(value).__name__}; mutations would be "
                    f"invisible to the write barriers",
                    file=file, line=line, function=fn.name,
                ))

    # Helper closure: analyze each reachable helper, queueing its callees. ---
    while worklist:
        func, owner = worklist.pop()
        summary = analyze_helper(func)
        hfile, hline = _position(func)
        hname = getattr(func, "__name__", repr(func))
        if summary is None:
            tainted_helpers.add(func)
            if not _helper_registered(func):
                diagnostics.append(Diagnostic(
                    "DIT002",
                    f"helper {hname!r} (called from check {owner.name!r}) "
                    f"has no analyzable source and is not registered pure",
                    file=hfile, line=hline, function=hname,
                ))
            continue
        helper_summaries[func] = summary
        registered = _helper_registered(func)

        if not summary.pure:
            tainted_helpers.add(func)
            reasons = "; ".join(
                f"line {ln}: {msg}" for ln, msg in summary.impure[:3]
            )
            diagnostics.append(Diagnostic(
                "DIT006" if registered else "DIT001",
                (
                    f"helper {hname!r} is registered as pure but has side "
                    f"effects ({reasons})"
                    if registered
                    else f"helper {hname!r} (called from check "
                         f"{owner.name!r}) has side effects ({reasons})"
                ),
                file=hfile, line=hline, function=hname,
            ))
        if summary.deep_reads:
            tainted_helpers.add(func)
            reasons = "; ".join(
                f"line {ln}: {msg}" for ln, msg in summary.deep_reads[:3]
            )
            diagnostics.append(Diagnostic(
                "DIT003",
                f"helper {hname!r} reads heap locations the engine cannot "
                f"attribute to the calling node ({reasons})",
                file=hfile, line=hline, function=hname,
            ))
        if summary.unverified:
            tainted_helpers.add(func)
            if not registered:
                reasons = "; ".join(
                    f"line {ln}: {msg}" for ln, msg in summary.unverified[:3]
                )
                diagnostics.append(Diagnostic(
                    "DIT002",
                    f"helper {hname!r} cannot be statically verified "
                    f"({reasons}); register it with "
                    f"repro.register_pure_helper to assert purity",
                    file=hfile, line=hline, function=hname,
                ))

        # Helper reads join the entry's barrier plan.
        fields |= summary.fields_read
        reads_len = reads_len or summary.reads_len or bool(
            summary.arg_len_read
        )
        reads_indices = reads_indices or summary.reads_indices

        for cname in sorted(summary.calls):
            target = func.__globals__.get(cname)
            if isinstance(target, CheckFunction):
                tainted_helpers.add(func)
                diagnostics.append(Diagnostic(
                    "DIT003",
                    f"helper {hname!r} calls @check {cname!r}; check calls "
                    f"from inside helpers bypass memoization and read "
                    f"attribution — make the helper a @check",
                    file=hfile, line=hline, function=hname,
                ))
            elif isinstance(target, types.FunctionType):
                queue_helper(target, owner)
            elif target is None or not _helper_registered(target):
                tainted_helpers.add(func)
                if not registered:
                    diagnostics.append(Diagnostic(
                        "DIT002",
                        f"helper {hname!r} calls {cname!r}, which cannot "
                        f"be resolved or verified",
                        file=hfile, line=hline, function=hname,
                    ))

    # Strategy classification (DIT2xx): which checks in the closure admit
    # derived fold maintenance, and why the rest do not.  Informational
    # (note severity, DIT204 warns) — never gates registration.
    from ..derive.classifier import entry_diagnostics  # lazy: import cycle

    by_name = {fn.name: fn for fn in functions.values()}
    for code, message, fname, line in entry_diagnostics(entry):
        owner = by_name.get(fname)
        dfile, dline = (
            _position(owner.original) if owner is not None else (None, 0)
        )
        diagnostics.append(Diagnostic(
            code, message, file=dfile, line=line or dline, function=fname,
        ))

    # Verified closure: a helper is verified only if its own summary is
    # clean and every transitive callee is verified too.  Iterate to a
    # fixpoint over the (small) helper call graph.
    verified = {
        f for f, s in helper_summaries.items()
        if s.verified and f not in tainted_helpers
    }
    changed = True
    while changed:
        changed = False
        for func in list(verified):
            summary = helper_summaries[func]
            for cname in summary.calls:
                target = func.__globals__.get(cname)
                if target not in verified:
                    verified.discard(func)
                    changed = True
                    break

    return EntryPlan(
        entry=entry,
        functions=functions,
        monitored_fields=frozenset(fields),
        reads_len=reads_len,
        reads_indices=reads_indices,
        helper_summaries=helper_summaries,
        method_summaries=method_summaries,
        verified_helpers=frozenset(verified),
        diagnostics=diagnostics,
    )
