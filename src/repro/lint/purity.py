"""Summary-based purity analysis of non-check helpers.

Checks call out to helper functions (``__ditto_rt__.helper``) that run
*uninstrumented*: their heap reads are not recorded as implicit arguments
and their writes are not policed.  The runtime trusts a whitelist
(``register_pure_helper``); this module is the static complement — it
verifies what the whitelist asserts, and classifies exactly which helper
shapes the engine can keep sound:

* **Side effects** (``impure``): any store reaching memory the helper does
  not own — attribute/subscript stores on parameters or globals,
  ``global``/``nonlocal``, mutating method calls on non-owned receivers,
  calls to effectful builtins.  Locally-allocated mutable values (an
  accumulator list built and reduced inside the helper) may be mutated
  freely; the *ownership* analysis tracks names bound to fresh
  allocations, conservatively demoting a name the moment it might alias
  anything else.
* **Unattributable heap reads** (``deep_reads``): reads the engine cannot
  convert into implicit arguments at the call site.  Depth-1 field reads
  on a parameter (``param.field``) and ``len(param)`` are *coverable* —
  the summary records ``(param index, field)`` pairs and the runtime
  attributes them to the calling node — but nested chains
  (``param.next.value``), subscripts, and iteration over parameters are
  not, and make the helper inadmissible (convert it to a ``@check``).
* **Unverifiable constructs** (``unverified``): dynamic features the
  analysis cannot prove either way (unknown call targets, method calls on
  parameters, ``vars``/``globals``).  These degrade the helper from
  *verified* to *trusted-if-registered* and surface as warnings.

Summaries compose through a worklist fixpoint in
:mod:`repro.lint.interproc`: a helper is only as pure as every call it
can reach.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..instrument.analysis import PURE_BUILTINS

#: Builtins whose very invocation is a side effect (or an escape hatch the
#: analysis cannot see through).
IMPURE_BUILTINS = frozenset(
    {
        "print",
        "input",
        "open",
        "exec",
        "eval",
        "compile",
        "setattr",
        "delattr",
        "__import__",
    }
)

#: Method names that mutate their receiver on every built-in container
#: (and on the tracked containers).  A call on a non-owned receiver is a
#: definite side effect.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "sort",
        "reverse",
        "add",
        "discard",
        "update",
        "setdefault",
        "popitem",
        "fill",
        "write",
        "writelines",
    }
)

#: Call targets that produce a freshly-allocated value the caller owns.
_FRESH_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray", "sorted"})


@dataclass
class HelperSummary:
    """Composable purity/read summary of one helper function."""

    name: str
    params: list[str] = field(default_factory=list)
    #: Definite side effects: ``(line, reason)`` pairs.
    impure: list[tuple[int, str]] = field(default_factory=list)
    #: Heap reads the engine cannot attribute: ``(line, reason)`` pairs.
    deep_reads: list[tuple[int, str]] = field(default_factory=list)
    #: Constructs the analysis cannot verify: ``(line, reason)`` pairs.
    unverified: list[tuple[int, str]] = field(default_factory=list)
    #: Coverable depth-1 reads: parameter index -> field names read.
    arg_fields_read: dict[int, set[str]] = field(default_factory=dict)
    #: Parameter indices whose length is read via ``len(param)``.
    arg_len_read: set[int] = field(default_factory=set)
    #: All attribute names read (monitored-field union contribution).
    fields_read: set[str] = field(default_factory=set)
    reads_indices: bool = False
    reads_len: bool = False
    #: Plain-name call targets (non-builtin) for the interprocedural
    #: fixpoint.
    calls: set[str] = field(default_factory=set)
    #: Global names read (validated against mutable bindings).
    globals_read: set[str] = field(default_factory=set)

    @property
    def pure(self) -> bool:
        """No definite side effects (own body only; see the fixpoint)."""
        return not self.impure

    @property
    def verified(self) -> bool:
        """Provably admissible as a helper: side-effect free, every heap
        read coverable by call-site attribution, nothing unverifiable.
        (Own body only — the interprocedural fixpoint degrades this when
        a callee fails.)"""
        return not (self.impure or self.deep_reads or self.unverified)


def _chain_root(node: ast.AST) -> tuple[ast.AST, int]:
    """Peel attribute/subscript layers; return ``(root, depth)``."""
    depth = 0
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
        depth += 1
    return node, depth


class _HelperVisitor(ast.NodeVisitor):
    def __init__(self, tree: ast.FunctionDef, summary: HelperSummary):
        self.tree = tree
        self.summary = summary
        args = tree.args
        self.params = [
            a.arg
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
        ]
        if args.vararg:
            self.params.append(args.vararg.arg)
        if args.kwarg:
            self.params.append(args.kwarg.arg)
        summary.params = list(self.params)
        self.param_index = {name: i for i, name in enumerate(self.params)}
        #: Names currently known to be bound to a fresh local allocation.
        self.owned: set[str] = set()
        #: Every name assigned somewhere in the body (locals).
        self.local_names = {
            n.id
            for n in ast.walk(tree)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
        }
        self.local_names.update(self.params)

    # Classification helpers. ------------------------------------------------

    def _impure(self, node: ast.AST, reason: str) -> None:
        self.summary.impure.append((getattr(node, "lineno", 0), reason))

    def _deep(self, node: ast.AST, reason: str) -> None:
        self.summary.deep_reads.append((getattr(node, "lineno", 0), reason))

    def _unverified(self, node: ast.AST, reason: str) -> None:
        self.summary.unverified.append((getattr(node, "lineno", 0), reason))

    def _is_fresh(self, node: ast.AST) -> bool:
        """Does evaluating ``node`` yield a value the helper owns?"""
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.SetComp, ast.DictComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _FRESH_CONSTRUCTORS
        ):
            return True
        if isinstance(node, ast.Name) and node.id in self.owned:
            return True
        return False

    # Statements. -------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is self.tree:
            for stmt in node.body:
                self.visit(stmt)
        else:
            self._unverified(node, "nested function definition")

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._unverified(node, "lambda expression")

    def visit_Global(self, node: ast.Global) -> None:
        self._impure(node, f"global declaration of {', '.join(node.names)}")

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._impure(node, f"nonlocal declaration of {', '.join(node.names)}")

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        fresh = self._is_fresh(node.value)
        for target in node.targets:
            self._store(target, fresh)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._store(node.target, self._is_fresh(node.value))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            # x += ... keeps (or breaks) ownership exactly like x = x + ...
            if node.target.id not in self.owned:
                pass  # plain local rebinding — pure
            return
        self._store(node.target, fresh=False)

    def _store(self, target: ast.AST, fresh: bool) -> None:
        if isinstance(target, ast.Name):
            if fresh:
                self.owned.add(target.id)
            else:
                self.owned.discard(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt, fresh=False)
            return
        root, _ = _chain_root(target)
        if isinstance(root, ast.Name) and root.id in self.owned:
            return  # mutating a locally-owned allocation is fine
        kind = (
            "attribute" if isinstance(target, ast.Attribute) else "slot"
        )
        self._impure(
            target,
            f"store to {kind} of non-owned object "
            f"{ast.unparse(target) if hasattr(ast, 'unparse') else '<expr>'}",
        )

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.owned.discard(target.id)
                continue
            root, _ = _chain_root(target)
            if isinstance(root, ast.Name) and root.id in self.owned:
                continue
            self._impure(target, "deletion on a non-owned object")

    def visit_With(self, node: ast.With) -> None:
        self._unverified(
            node, "context manager entry/exit may have side effects"
        )
        self.generic_visit(node)

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Yield(self, node: ast.Yield) -> None:
        self._impure(node, "generator helpers are stateful")

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._impure(node, "generator helpers are stateful")

    def visit_Await(self, node: ast.Await) -> None:
        self._impure(node, "await in a helper")

    # Reads. ------------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not isinstance(node.ctx, ast.Load):
            # Stores/deletes are routed through _store/visit_Delete by the
            # statement visitors; reaching here means an unusual context.
            self.generic_visit(node)
            return
        self.summary.fields_read.add(node.attr)
        root, depth = _chain_root(node)
        if isinstance(root, ast.Name):
            if root.id in self.param_index:
                if depth == 1 and isinstance(node.value, ast.Name):
                    # Coverable: the call site attributes param.field.
                    index = self.param_index[root.id]
                    self.summary.arg_fields_read.setdefault(
                        index, set()
                    ).add(node.attr)
                else:
                    self._deep(
                        node,
                        f"reads nested field chain through parameter "
                        f"{root.id!r}; only depth-1 reads (param.field) "
                        f"can be attributed at the call site — make this "
                        f"helper a @check",
                    )
            elif root.id in self.owned:
                pass
            elif root.id not in self.local_names:
                # Attribute of a global (module constant / class attr).
                self.summary.globals_read.add(root.id)
                self._unverified(
                    node,
                    f"reads attribute {node.attr!r} of global {root.id!r}",
                )
            else:
                self._deep(
                    node,
                    f"reads field {node.attr!r} of local {root.id!r} whose "
                    f"provenance is unknown",
                )
        self.visit(node.value)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load):
            root, _ = _chain_root(node)
            owned = isinstance(root, ast.Name) and root.id in self.owned
            literal = isinstance(node.value, (ast.Constant, ast.Tuple))
            if not owned and not literal:
                self.summary.reads_indices = True
                self._deep(
                    node,
                    "subscript read on a non-owned value cannot be "
                    "attributed at the call site — make this helper a "
                    "@check",
                )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        iter_node = node.iter
        iter_ok = (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in {"range", "enumerate", "zip", "sorted",
                                      "reversed"}
            and not any(
                isinstance(a, ast.Name) and a.id in self.param_index
                for a in iter_node.args
            )
        ) or self._is_fresh(iter_node)
        if not iter_ok:
            self._unverified(
                node,
                "iterates over a value of unknown type; if it is a tracked "
                "container the element reads are invisible to the engine",
            )
        if isinstance(node.target, ast.Name):
            self.owned.discard(node.target.id)
        self.generic_visit(node)

    # Calls. ------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name == "len":
                self.summary.reads_len = True
                if (
                    len(node.args) == 1
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in self.param_index
                ):
                    self.summary.arg_len_read.add(
                        self.param_index[node.args[0].id]
                    )
                elif node.args and not self._is_fresh(node.args[0]):
                    self._deep(
                        node,
                        "len() of a non-parameter value cannot be "
                        "attributed at the call site",
                    )
            elif name in IMPURE_BUILTINS:
                self._impure(node, f"calls effectful builtin {name}()")
            elif name in ("globals", "locals", "vars"):
                self._unverified(node, f"calls introspection builtin {name}()")
            elif name in PURE_BUILTINS or name in _FRESH_CONSTRUCTORS:
                pass
            elif name in self.local_names:
                self._unverified(
                    node, f"calls through local binding {name!r}"
                )
            elif name in _BUILTIN_NAMES:
                self._unverified(
                    node, f"calls builtin {name}() outside the pure whitelist"
                )
            else:
                self.summary.calls.add(name)
                self.summary.globals_read.add(name)
        elif isinstance(func, ast.Attribute):
            root, _ = _chain_root(func.value)
            owned_receiver = (
                isinstance(root, ast.Name) and root.id in self.owned
            ) or self._is_fresh(func.value)
            receiver_is_literal = isinstance(func.value, ast.Constant)
            if owned_receiver or receiver_is_literal:
                pass
            elif func.attr in MUTATOR_METHODS:
                self._impure(
                    node,
                    f"calls mutating method .{func.attr}() on a non-owned "
                    f"receiver",
                )
            else:
                self._unverified(
                    node,
                    f"calls method .{func.attr}() on a receiver of unknown "
                    f"type",
                )
            self.visit(func.value)
        else:
            self._unverified(node, "dynamic call target")
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if (
                node.id not in self.local_names
                and node.id not in _BUILTIN_NAMES
            ):
                self.summary.globals_read.add(node.id)


_BUILTIN_NAMES = frozenset(dir(__import__("builtins")))


def analyze_helper_tree(tree: ast.FunctionDef) -> HelperSummary:
    """Compute the :class:`HelperSummary` of one helper's AST."""
    summary = HelperSummary(name=tree.name)
    visitor = _HelperVisitor(tree, summary)
    visitor.visit(tree)
    return summary


def analyze_helper(func) -> HelperSummary | None:
    """Summary of a live helper function, or ``None`` when its source is
    unavailable (builtins, C extensions, REPL definitions)."""
    import inspect
    import textwrap

    try:
        source = textwrap.dedent(inspect.getsource(func))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            return analyze_helper_tree(node)
    return None
