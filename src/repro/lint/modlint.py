"""File-mode whole-program analysis (the ``python -m repro.lint`` side).

Live mode (:mod:`repro.lint.interproc`) resolves call targets through real
function objects; CI cannot import the code under lint (imports execute
arbitrary module bodies, and a broken tree must still be lintable).  This
module rebuilds the environment statically: each file is parsed once into a
:class:`ModuleInfo` symbol table — checks (``@check`` defs), helpers
(other module-level defs), classes and their tracked-base resolution,
purity registrations, and a mutability classification of module-level
constant bindings.  A :class:`Program` merges the tables across every
linted file so imports between them resolve, then the same
admissibility/purity passes that run live are replayed against the static
environment:

* each check body runs through the shared
  :func:`repro.instrument.analysis.run_admissibility` fixpoint (language
  subset + optimistic-memoization restriction) — violations surface as
  DIT007 instead of a registration-time raise;
* reachable helpers run through :mod:`repro.lint.purity`
  (DIT001/DIT002/DIT003/DIT006);
* ``globals_read`` bindings are checked against the constant
  classification (DIT004);
* the union of check + helper field reads feeds the barrier-bypass pass
  (:mod:`repro.lint.barriers`), which needs to know which field names are
  monitored.

Suppression: a finding whose source line ends with ``# noqa`` or
``# noqa: DITxxx[,DITyyy]`` is dropped, matching the convention of other
Python linters.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

from ..instrument.analysis import (
    PURE_BUILTINS,
    CheckAnalysis,
    _check_signature,
    run_admissibility,
)
from .purity import analyze_helper_tree
from .rules import Diagnostic, LintReport
from .barriers import scan_module

#: Base-class leaf names that carry the write barrier.
TRACKED_BASES = frozenset({"TrackedObject", "TrackedArray", "TrackedList"})

_VIOLATION_RE = re.compile(r"^line (\d+): (.*)$", re.DOTALL)
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: Constructor names whose results are immutable values.
_IMMUTABLE_CTORS = frozenset(
    {"int", "float", "bool", "str", "bytes", "tuple", "frozenset", "range",
     "complex"}
)
#: Constructor names whose results are definitely mutable.
_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray"})


def _leaf_name(node: ast.AST) -> str | None:
    """The rightmost identifier of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _classify_constant_expr(node: ast.AST) -> str:
    """Static mirror of ``analysis.classify_binding`` over an initializer
    expression: ``immutable`` / ``mutable`` / ``ctor:<Name>`` (a class
    instantiation, resolved against the program's tracked classes later) /
    ``unknown``."""
    if isinstance(node, ast.Constant):
        return "immutable"
    if isinstance(node, ast.UnaryOp):
        return _classify_constant_expr(node.operand)
    if isinstance(node, ast.BinOp):
        left = _classify_constant_expr(node.left)
        right = _classify_constant_expr(node.right)
        if left == right == "immutable":
            return "immutable"
        return "unknown"
    if isinstance(node, ast.Tuple):
        if all(_classify_constant_expr(e) == "immutable" for e in node.elts):
            return "immutable"
        return "mutable"
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return "mutable"
    if isinstance(node, ast.Call):
        name = _leaf_name(node.func)
        if name in _IMMUTABLE_CTORS:
            return "immutable"
        if name in _MUTABLE_CTORS:
            return "mutable"
        if name:
            return f"ctor:{name}"
    return "unknown"


@dataclass
class ModuleInfo:
    """Static symbol table of one parsed file."""

    path: str
    tree: ast.Module
    source_lines: list[str]
    #: Module-level ``@check`` function defs by name.
    checks: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: Other module-level function defs by name.
    helpers: dict[str, ast.FunctionDef] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: Class name -> base leaf names (for tracked resolution).
    class_bases: dict[str, list[str]] = field(default_factory=dict)
    #: Helper names registered through ``register_pure_helper``.
    registered_pure: set[str] = field(default_factory=set)
    #: Method names registered through ``register_pure_method``.
    pure_method_names: set[str] = field(default_factory=set)
    #: (class leaf name, method name) pairs of those registrations.
    pure_method_pairs: set[tuple[str, str]] = field(default_factory=set)
    #: Module-level binding name -> classification string.
    constants: dict[str, str] = field(default_factory=dict)
    #: Imported local name -> leaf name at the import site.
    imports: dict[str, str] = field(default_factory=dict)


def parse_module(path: str) -> tuple[ModuleInfo | None, list[Diagnostic]]:
    """Parse ``path`` into a :class:`ModuleInfo`; a file that does not
    parse yields a DIT007 error (an unparseable module can hide anything)."""
    try:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 0) or 0
        return None, [Diagnostic(
            "DIT007", f"file cannot be parsed: {exc}", file=path, line=line,
        )]
    info = ModuleInfo(
        path=path, tree=tree, source_lines=source.splitlines()
    )
    _collect(info)
    return info, []


def _decorator_names(fd: ast.FunctionDef) -> set[str]:
    names = set()
    for deco in fd.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        leaf = _leaf_name(target)
        if leaf:
            names.add(leaf)
    return names


def _collect(info: ModuleInfo) -> None:
    for node in info.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[-1]
                info.imports[local] = alias.name.split(".")[-1]
        elif isinstance(node, ast.FunctionDef):
            decorators = {
                info.imports.get(name, name)
                for name in _decorator_names(node)
            }
            if "check" in decorators:
                info.checks[node.name] = node
            else:
                info.helpers[node.name] = node
            if "register_pure_helper" in decorators:
                info.registered_pure.add(node.name)
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = node
            info.class_bases[node.name] = [
                leaf for base in node.bases
                if (leaf := _leaf_name(base)) is not None
            ]
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                info.constants[target.id] = _classify_constant_expr(
                    node.value
                )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                info.constants[node.target.id] = _classify_constant_expr(
                    node.value
                )
    # Registration calls at module level:
    #   register_pure_helper(func) / register_pure_method(Cls, "name")
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        leaf = _leaf_name(node.func)
        canonical = info.imports.get(leaf, leaf) if leaf else None
        if canonical == "register_pure_helper" and node.args:
            name = _leaf_name(node.args[0])
            if name:
                info.registered_pure.add(name)
        elif canonical == "register_pure_method" and len(node.args) >= 2:
            method = node.args[1]
            if isinstance(method, ast.Constant) and isinstance(
                method.value, str
            ):
                info.pure_method_names.add(method.value)
                cls_name = _leaf_name(node.args[0])
                if cls_name:
                    info.pure_method_pairs.add((cls_name, method.value))


class Program:
    """Merged symbol tables of every linted module."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules = modules
        self.check_names: set[str] = set()
        self.helper_defs: dict[str, tuple[ModuleInfo, ast.FunctionDef]] = {}
        self.registered_pure: set[str] = set()
        self.pure_method_names: set[str] = set()
        self.tracked_classes: set[str] = set(TRACKED_BASES)
        self.constants: dict[str, str] = {}
        self.pure_method_pairs: set[tuple[str, str]] = set()
        #: (class name, method name) -> (module, method def).
        self.method_defs: dict[
            tuple[str, str], tuple[ModuleInfo, ast.FunctionDef]
        ] = {}
        for info in modules:
            self.check_names |= set(info.checks)
            for name, fd in info.helpers.items():
                self.helper_defs.setdefault(name, (info, fd))
            self.registered_pure |= info.registered_pure
            self.pure_method_names |= info.pure_method_names
            self.pure_method_pairs |= info.pure_method_pairs
            for cls_name, cd in info.classes.items():
                for stmt in cd.body:
                    if isinstance(stmt, ast.FunctionDef):
                        self.method_defs.setdefault(
                            (cls_name, stmt.name), (info, stmt)
                        )
            for name, kind in info.constants.items():
                self.constants.setdefault(name, kind)
        # Tracked-class fixpoint over leaf base names across all modules.
        bases: dict[str, list[str]] = {}
        for info in modules:
            for name, base_names in info.class_bases.items():
                bases.setdefault(name, []).extend(base_names)
        changed = True
        while changed:
            changed = False
            for name, base_names in bases.items():
                if name not in self.tracked_classes and any(
                    b in self.tracked_classes for b in base_names
                ):
                    self.tracked_classes.add(name)
                    changed = True
        #: Fields monitored program-wide: filled by the admissibility pass,
        #: consumed by the barrier pass.
        self.monitored_fields: set[str] = set()
        #: Class names defined anywhere in the program.
        self.class_names: set[str] = set(bases)
        #: Helper-analysis worklist (seeded by the check pass).
        self._helper_queue: list[str] = []
        self._helper_seen: set[str] = set()

    def constant_kind(self, info: ModuleInfo, name: str) -> str | None:
        """Classification of binding ``name`` as seen from module ``info``:
        its own constant first, then the merged program table (the name may
        be imported from a sibling linted module)."""
        kind = info.constants.get(name)
        if kind is None and name in info.imports:
            kind = self.constants.get(info.imports[name])
        if kind is None:
            kind = self.constants.get(name)
        if kind is not None and kind.startswith("ctor:"):
            ctor = kind.split(":", 1)[1]
            if ctor in self.tracked_classes:
                return "tracked"
            return "unknown"
        return kind


def _is_check_predicate(program: Program, info: ModuleInfo):
    def is_check(name: str) -> bool:
        canonical = info.imports.get(name, name)
        return name in program.check_names or canonical in program.check_names
    return is_check


_SPECIAL_CALLS = PURE_BUILTINS | {"len"}


def _analyze_module_checks(
    program: Program, info: ModuleInfo, report: LintReport
) -> None:
    """DIT007/DIT002/DIT004/DIT005 over the module's checks, plus the
    helper-reachability seeding for :func:`_analyze_helpers`."""
    is_check = _is_check_predicate(program, info)
    for name, fd in info.checks.items():
        analysis = CheckAnalysis(name=name)
        _check_signature(fd, analysis)
        run_admissibility(fd, analysis, is_check)
        for violation in analysis.violations:
            match = _VIOLATION_RE.match(violation)
            line = int(match.group(1)) if match else fd.lineno
            message = match.group(2) if match else violation
            report.add(Diagnostic(
                "DIT007", message, file=info.path, line=line, function=name,
            ))
        program.monitored_fields |= analysis.fields_read

        for called in sorted(analysis.called_names):
            canonical = info.imports.get(called, called)
            if called in _SPECIAL_CALLS or is_check(called):
                continue
            if (
                called in info.helpers
                or canonical in program.helper_defs
            ):
                _queue_helper(program, info, canonical if canonical in
                              program.helper_defs else called)
                continue
            if canonical in program.class_names or (
                called in info.classes
            ):
                report.add(Diagnostic(
                    "DIT002",
                    f"check {name!r} calls constructor {called!r}; "
                    f"allocation inside a check cannot be verified pure",
                    file=info.path, line=fd.lineno, function=name,
                ))
                continue
            report.add(Diagnostic(
                "DIT002",
                f"check {name!r} calls {called!r}, which is not defined in "
                f"the linted files and cannot be verified",
                file=info.path, line=fd.lineno, function=name,
            ))

        for method in sorted(analysis.methods_called):
            if method in program.pure_method_names:
                continue
            report.add(Diagnostic(
                "DIT005",
                f"check {name!r} calls method .{method}() on a receiver "
                f"whose purity cannot be verified; register it with "
                f"repro.register_pure_method",
                file=info.path, line=fd.lineno, function=name,
            ))

        for gname in sorted(analysis.globals_read):
            kind = program.constant_kind(info, gname)
            if kind == "mutable":
                report.add(Diagnostic(
                    "DIT004",
                    f"check {name!r} reads global {gname!r} bound to a "
                    f"mutable value; mutations would be invisible to the "
                    f"write barriers",
                    file=info.path, line=fd.lineno, function=name,
                ))


def _queue_helper(program: Program, info: ModuleInfo, name: str) -> None:
    if name not in program._helper_seen:
        program._helper_seen.add(name)
        program._helper_queue.append(name)


def _analyze_helpers(program: Program, report: LintReport) -> None:
    """Purity of every helper reachable from some check (DIT001/002/003/
    006), mirroring the live fixpoint of :mod:`repro.lint.interproc`."""
    queue = program._helper_queue
    while queue:
        name = queue.pop()
        resolved = program.helper_defs.get(name)
        if resolved is None:
            continue
        info, fd = resolved
        summary = analyze_helper_tree(fd)
        registered = (
            name in program.registered_pure
            or name in info.registered_pure
        )
        if not summary.pure:
            reasons = "; ".join(
                f"line {ln}: {msg}" for ln, msg in summary.impure[:3]
            )
            report.add(Diagnostic(
                "DIT006" if registered else "DIT001",
                (
                    f"helper {name!r} is registered as pure but has side "
                    f"effects ({reasons})"
                    if registered
                    else f"helper {name!r} is reachable from a check and "
                         f"has side effects ({reasons})"
                ),
                file=info.path, line=fd.lineno, function=name,
            ))
        if summary.deep_reads:
            reasons = "; ".join(
                f"line {ln}: {msg}" for ln, msg in summary.deep_reads[:3]
            )
            report.add(Diagnostic(
                "DIT003",
                f"helper {name!r} reads heap locations the engine cannot "
                f"attribute to the calling node ({reasons})",
                file=info.path, line=fd.lineno, function=name,
            ))
        if summary.unverified and not registered:
            reasons = "; ".join(
                f"line {ln}: {msg}" for ln, msg in summary.unverified[:3]
            )
            report.add(Diagnostic(
                "DIT002",
                f"helper {name!r} cannot be statically verified "
                f"({reasons}); register it with repro.register_pure_helper "
                f"to assert purity",
                file=info.path, line=fd.lineno, function=name,
            ))
        program.monitored_fields |= summary.fields_read

        for called in sorted(summary.calls):
            canonical = info.imports.get(called, called)
            if called in program.check_names or (
                canonical in program.check_names
            ):
                report.add(Diagnostic(
                    "DIT003",
                    f"helper {name!r} calls @check {called!r}; check calls "
                    f"from inside helpers bypass memoization and read "
                    f"attribution — make the helper a @check",
                    file=info.path, line=fd.lineno, function=name,
                ))
                continue
            target = (
                canonical if canonical in program.helper_defs else called
            )
            if target in program.helper_defs:
                _queue_helper(program, info, target)
            elif not registered:
                report.add(Diagnostic(
                    "DIT002",
                    f"helper {name!r} calls {called!r}, which cannot be "
                    f"resolved or verified",
                    file=info.path, line=fd.lineno, function=name,
                ))

        for gname in sorted(summary.globals_read):
            if program.constant_kind(info, gname) == "mutable":
                report.add(Diagnostic(
                    "DIT004",
                    f"helper {name!r} reads global {gname!r} bound to a "
                    f"mutable value; mutations would be invisible to the "
                    f"write barriers",
                    file=info.path, line=fd.lineno, function=name,
                ))


def _classify_module_folds(info: ModuleInfo, report: LintReport) -> None:
    """Strategy classification (DIT2xx): judge every self-recursive check
    against the linear-fold grammar of :mod:`repro.derive.classifier`.
    Purely informational — an admissible fold gets a DIT201 note (the
    derived strategy can maintain it in O(1) per mutation), a rejected one
    gets the why-not as DIT202/DIT203/DIT204.  Non-recursive checks are
    not fold candidates and produce nothing."""
    from ..derive.classifier import FoldInfo, classify_fold

    for name, fd in sorted(info.checks.items()):
        verdict = classify_fold(fd)
        if verdict is None:
            continue
        if isinstance(verdict, FoldInfo):
            report.add(Diagnostic(
                "DIT201",
                f"admissible {verdict.describe()}; eligible for O(1) "
                f"derived maintenance",
                file=info.path, line=fd.lineno, function=name,
            ))
        else:
            report.add(Diagnostic(
                verdict.code, verdict.message,
                file=info.path, line=verdict.line or fd.lineno,
                function=name,
            ))


def _analyze_registered_methods(program: Program, report: LintReport) -> None:
    """DIT006/DIT008 over ``register_pure_method`` registrations on tracked
    classes — the static mirror of the live plan's method-summary pass: a
    registered method whose reads the runtime cannot attribute to the
    calling node is a soundness hole (mutations it depends on never dirty
    the graph)."""
    for cls_name, method in sorted(program.pure_method_pairs):
        if cls_name not in program.tracked_classes:
            continue
        resolved = program.method_defs.get((cls_name, method))
        if resolved is None:
            for info in program.modules:
                if (cls_name, method) in info.pure_method_pairs:
                    report.add(Diagnostic(
                        "DIT008",
                        f"{cls_name}.{method} is registered as a pure "
                        f"method on a tracked class but its definition "
                        f"cannot be found; its heap reads cannot be "
                        f"attributed to the calling node",
                        file=info.path, line=0,
                        function=f"{cls_name}.{method}",
                    ))
                    break
            continue
        info, fd = resolved
        summary = analyze_helper_tree(fd)
        if not summary.pure:
            reasons = "; ".join(
                f"line {ln}: {msg}" for ln, msg in summary.impure[:3]
            )
            report.add(Diagnostic(
                "DIT006",
                f"{cls_name}.{method} is registered as a pure method but "
                f"has side effects ({reasons})",
                file=info.path, line=fd.lineno,
                function=f"{cls_name}.{method}",
            ))
            continue
        program.monitored_fields |= summary.fields_read
        if summary.deep_reads:
            reasons = "; ".join(
                f"line {ln}: {msg}" for ln, msg in summary.deep_reads[:3]
            )
            report.add(Diagnostic(
                "DIT008",
                f"{cls_name}.{method} reads heap locations the engine "
                f"cannot attribute to the calling node ({reasons})",
                file=info.path, line=fd.lineno,
                function=f"{cls_name}.{method}",
            ))


def _apply_noqa(
    report: LintReport, modules: dict[str, ModuleInfo]
) -> LintReport:
    kept = LintReport()
    kept.files_linted = report.files_linted
    for diag in report.diagnostics:
        info = modules.get(diag.file or "")
        if info is not None and 0 < diag.line <= len(info.source_lines):
            match = _NOQA_RE.search(info.source_lines[diag.line - 1])
            if match:
                codes = match.group("codes")
                if codes is None:
                    continue  # bare "# noqa" silences everything
                silenced = {c.strip().upper() for c in codes.split(",")}
                if diag.code in silenced:
                    continue
        kept.add(diag)
    return kept


def discover_files(paths: list[str]) -> tuple[list[str], list[Diagnostic]]:
    """Expand files/directories into a sorted ``.py`` file list."""
    files: list[str] = []
    problems: list[Diagnostic] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in {"__pycache__", ".git"}
                )
                files.extend(
                    os.path.join(root, n)
                    for n in sorted(names)
                    if n.endswith(".py")
                )
        elif os.path.isfile(path):
            files.append(path)
        else:
            problems.append(Diagnostic(
                "DIT007", f"no such file or directory: {path}", file=path,
            ))
    return files, problems


def lint_paths(paths: list[str]) -> LintReport:
    """Lint files/directories; the whole set is analyzed as one program so
    cross-file imports of checks, helpers, and tracked classes resolve."""
    files, problems = discover_files(paths)
    report = LintReport(problems)
    modules: dict[str, ModuleInfo] = {}
    for path in files:
        info, diagnostics = parse_module(path)
        report.extend(diagnostics)
        if info is not None:
            modules[path] = info
    report.files_linted = len(files)

    program = Program(list(modules.values()))
    for info in modules.values():
        _analyze_module_checks(program, info, report)
        _classify_module_folds(info, report)
    _analyze_helpers(program, report)
    _analyze_registered_methods(program, report)
    for info in modules.values():
        report.extend(scan_module(
            info.tree,
            info.path,
            tracked_classes=program.tracked_classes,
            monitored_fields=program.monitored_fields,
        ))
    return _apply_noqa(report, modules)
