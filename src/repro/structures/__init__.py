"""Data structures and their invariant checks.

Each module ships a tracked data structure plus invariant checks written in
the paper's style: recursive, side-effect-free functions combining local
properties without short-circuiting over callee results.  The first three
are the paper's benchmark structures (§5.1); the rest extend the evaluation
to additional classic structures.
"""

from .ordered_list import IntListElem, OrderedIntList, is_ordered
from .hash_table import (
    HashElement,
    HashTable,
    bucket_occupancy_from,
    check_hash_buckets,
    check_hash_elements,
    hash_table_invariant,
    table_occupancy,
)
from .red_black_tree import (
    BLACK,
    NIL,
    RED,
    RBNode,
    RedBlackTree,
    check_black_depth,
    is_red_black,
    rbt_invariant,
    rbt_is_ordered,
)
from .avl_tree import (
    AVLNode,
    AVLTree,
    avl_invariant,
    avl_is_ordered,
    check_avl_height,
)
from .binary_heap import (
    BinaryHeap,
    check_heap_order,
    heap_invariant,
    heap_min,
    heap_min_from,
)
from .int_vector import (
    IntVector,
    vector_checksum_from,
    vector_digest,
    vector_sum,
    vector_sum_from,
    vector_tail,
)
from .btree import BTree, BTreeNode, btree_invariant
from .disjointness import (
    DisjointHeapPair,
    check_disjoint_from,
    heaps_disjoint,
    value_in_heap,
)
from .skip_list import SkipList, SkipNode, skip_list_invariant
from .doubly_linked_list import (
    DLLNode,
    DoublyLinkedList,
    dll_invariant,
)
from .rope import (
    Rope,
    RopeConcat,
    RopeLeaf,
    check_rope_leaves,
    check_rope_weights,
    rope_invariant,
)

__all__ = [
    "AVLNode",
    "AVLTree",
    "avl_invariant",
    "avl_is_ordered",
    "NIL",
    "BinaryHeap",
    "BLACK",
    "BTree",
    "BTreeNode",
    "btree_invariant",
    "check_avl_height",
    "check_black_depth",
    "bucket_occupancy_from",
    "check_disjoint_from",
    "DisjointHeapPair",
    "heaps_disjoint",
    "value_in_heap",
    "check_hash_buckets",
    "check_hash_elements",
    "check_heap_order",
    "dll_invariant",
    "DLLNode",
    "DoublyLinkedList",
    "HashElement",
    "hash_table_invariant",
    "HashTable",
    "heap_invariant",
    "heap_min",
    "heap_min_from",
    "IntListElem",
    "IntVector",
    "is_ordered",
    "is_red_black",
    "OrderedIntList",
    "RBNode",
    "rbt_invariant",
    "rbt_is_ordered",
    "RED",
    "RedBlackTree",
    "Rope",
    "rope_invariant",
    "RopeConcat",
    "RopeLeaf",
    "check_rope_leaves",
    "check_rope_weights",
    "SkipList",
    "skip_list_invariant",
    "SkipNode",
    "table_occupancy",
    "vector_checksum_from",
    "vector_digest",
    "vector_sum",
    "vector_sum_from",
    "vector_tail",
]
