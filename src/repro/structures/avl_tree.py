"""AVL tree with height/balance invariants (an extension benchmark).

Not in the paper's evaluation, but exactly in its scope: a self-balancing
tree whose invariants — stored heights are correct, every node is
height-balanced, and the tree is a BST — are natural recursive,
side-effect-free checks.  Rotations relocate whole subtrees, stressing the
incrementalizer's pruning and explicit-argument rekeying the same way the
red-black "acid test" does.

:func:`check_avl_height` returns the height of the subtree, or -1 if any
stored height is wrong or any node is unbalanced, mirroring the paper's
``checkBlackDepth`` error-value style.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..core.tracked import TrackedObject
from ..instrument.registry import check

NEG_INF = float("-inf")
POS_INF = float("inf")


class AVLNode(TrackedObject):
    """A node: key, cached subtree height, left/right children."""

    def __init__(self, key: Any):
        self.key = key
        self.height = 1
        self.left: Optional["AVLNode"] = None
        self.right: Optional["AVLNode"] = None

    def __repr__(self) -> str:
        return f"AVLNode({self.key!r}, h={self.height})"


@check
def check_avl_height(n):
    """Recomputed height of ``n``'s subtree, or -1 on a violation (wrong
    cached height or balance factor outside [-1, 1])."""
    if n is None:
        return 0
    hl = check_avl_height(n.left)
    hr = check_avl_height(n.right)
    if hl == -1 or hr == -1:
        return -1
    diff = hl - hr
    if diff < -1 or diff > 1:
        return -1
    h = hl
    if hr > h:
        h = hr
    h = h + 1
    if h != n.height:
        return -1
    return h


@check
def avl_is_ordered(n, lower, upper):
    """BST ordering with exclusive bounds."""
    if n is None:
        return True
    if n.key <= lower or n.key >= upper:
        return False
    b1 = avl_is_ordered(n.left, lower, n.key)
    b2 = avl_is_ordered(n.right, n.key, upper)
    return b1 and b2


@check
def avl_invariant(tree):
    """Entry point: heights/balance are consistent and the tree is a BST."""
    b1 = check_avl_height(tree.root)
    b2 = avl_is_ordered(tree.root, NEG_INF, POS_INF)
    return b1 != -1 and b2


class AVLTree(TrackedObject):
    """A sorted set of keys with AVL rebalancing."""

    def __init__(self) -> None:
        self.root: Optional[AVLNode] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        n = self.root
        while n is not None:
            if key == n.key:
                return True
            n = n.left if key < n.key else n.right
        return False

    def keys(self) -> Iterator[Any]:
        stack: list[AVLNode] = []
        n = self.root
        while stack or n is not None:
            while n is not None:
                stack.append(n)
                n = n.left
            n = stack.pop()
            yield n.key
            n = n.right

    @staticmethod
    def _height(n: Optional[AVLNode]) -> int:
        return 0 if n is None else n.height

    def _update_height(self, n: AVLNode) -> None:
        n.height = 1 + max(self._height(n.left), self._height(n.right))

    def _balance_factor(self, n: AVLNode) -> int:
        return self._height(n.left) - self._height(n.right)

    def _rotate_right(self, y: AVLNode) -> AVLNode:
        x = y.left
        assert x is not None
        y.left = x.right
        x.right = y
        self._update_height(y)
        self._update_height(x)
        return x

    def _rotate_left(self, x: AVLNode) -> AVLNode:
        y = x.right
        assert y is not None
        x.right = y.left
        y.left = x
        self._update_height(x)
        self._update_height(y)
        return y

    def _rebalance(self, n: AVLNode) -> AVLNode:
        self._update_height(n)
        balance = self._balance_factor(n)
        if balance > 1:
            assert n.left is not None
            if self._balance_factor(n.left) < 0:
                n.left = self._rotate_left(n.left)
            return self._rotate_right(n)
        if balance < -1:
            assert n.right is not None
            if self._balance_factor(n.right) > 0:
                n.right = self._rotate_right(n.right)
            return self._rotate_left(n)
        return n

    def insert(self, key: Any) -> None:
        """Insert ``key`` (no-op if already present)."""
        self.root = self._insert(self.root, key)

    def _insert(self, n: Optional[AVLNode], key: Any) -> AVLNode:
        if n is None:
            self._size += 1
            return AVLNode(key)
        if key == n.key:
            return n
        if key < n.key:
            n.left = self._insert(n.left, key)
        else:
            n.right = self._insert(n.right, key)
        return self._rebalance(n)

    def delete(self, key: Any) -> bool:
        """Remove ``key``; True if it was present."""
        self.root, removed = self._delete(self.root, key)
        if removed:
            self._size -= 1
        return removed

    def _delete(
        self, n: Optional[AVLNode], key: Any
    ) -> tuple[Optional[AVLNode], bool]:
        if n is None:
            return None, False
        if key < n.key:
            n.left, removed = self._delete(n.left, key)
        elif key > n.key:
            n.right, removed = self._delete(n.right, key)
        else:
            removed = True
            if n.left is None:
                return n.right, True
            if n.right is None:
                return n.left, True
            successor = n.right
            while successor.left is not None:
                successor = successor.left
            n.key = successor.key
            n.right, _ = self._delete(n.right, successor.key)
        return self._rebalance(n), removed

    # Fault injection. -----------------------------------------------------------

    def corrupt_height(self, key: Any, height: int) -> bool:
        """Overwrite a node's cached height."""
        n = self.root
        while n is not None:
            if key == n.key:
                n.height = height
                return True
            n = n.left if key < n.key else n.right
        return False
