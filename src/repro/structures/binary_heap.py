"""Array-based binary min-heap with a heap-order invariant (extension).

The heap demonstrates DITTO over *array* locations (``IndexLocation``)
rather than object fields.  The invariant-friendly design point, worth
noting for check authors: the backing store is a fixed-capacity
:class:`~repro.core.tracked.TrackedArray` with ``None`` in unused slots, so
the check's per-node work never reads the (frequently changing) element
count — a size change touches only the boundary slot, keeping the dirty set
small.  Growth replaces the whole array, which the ``items`` field barrier
reports as a single mutation (like the hash table's rehash).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..core.tracked import TrackedArray, TrackedObject
from ..instrument.registry import check

_DEFAULT_CAPACITY = 16


@check
def check_heap_order(h, i):
    """Subtree rooted at slot ``i`` satisfies the min-heap property: no
    child is smaller than its parent, and occupied slots are contiguous
    (a child below an empty slot is a violation)."""
    arr = h.items
    if i >= len(arr):
        return True
    x = arr[i]
    li = 2 * i + 1
    ri = 2 * i + 2
    if x is None:
        ok1 = li >= len(arr) or arr[li] is None
        ok2 = ri >= len(arr) or arr[ri] is None
        return ok1 and ok2
    ok = True
    if li < len(arr):
        l = arr[li]
        if l is not None and l < x:
            ok = False
    if ri < len(arr):
        r = arr[ri]
        if r is not None and r < x:
            ok = False
    b1 = check_heap_order(h, li)
    b2 = check_heap_order(h, ri)
    return ok and b1 and b2


@check
def heap_invariant(h):
    """Entry point: the whole heap is min-ordered and contiguous."""
    return check_heap_order(h, 0)


@check
def heap_min_from(h, i):
    """Smallest occupied slot value in ``i..``, ``2**31 - 1`` when none.

    A linear min fold over the backing array (``check_heap_order`` is
    tree-shaped *and* prunes below empty slots, so it stays on the memo
    path; this check is the derived-strategy companion): empty slots pass
    the running minimum through, occupied slots clamp it down."""
    arr = h.items
    if i >= len(arr):
        return 2147483647
    x = arr[i]
    rest = heap_min_from(h, i + 1)
    if x is None:
        return rest
    return x if x < rest else rest


@check
def heap_min(h):
    """Entry point: the heap's minimum occupied value (the root, whenever
    ``heap_invariant`` holds — corruption can make them disagree)."""
    return heap_min_from(h, 0)


class BinaryHeap(TrackedObject):
    """A min-heap of comparable values."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.items = TrackedArray(capacity)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def peek(self) -> Optional[Any]:
        return self.items[0] if self._size else None

    def __iter__(self) -> Iterator[Any]:
        for i in range(self._size):
            yield self.items[i]

    def push(self, value: Any) -> None:
        """Insert ``value``, growing the backing array if full."""
        if self._size == len(self.items):
            self._grow(2 * len(self.items))
        i = self._size
        self.items[i] = value
        self._size += 1
        self._sift_up(i)

    def pop(self) -> Any:
        """Remove and return the minimum."""
        if self._size == 0:
            raise IndexError("pop from an empty heap")
        top = self.items[0]
        self._size -= 1
        last = self.items[self._size]
        self.items[self._size] = None
        if self._size:
            self.items[0] = last
            self._sift_down(0)
        return top

    def _grow(self, capacity: int) -> None:
        new_items = TrackedArray(capacity)
        for i in range(self._size):
            new_items[i] = self.items[i]
        self.items = new_items

    def _sift_up(self, i: int) -> None:
        items = self.items
        while i > 0:
            parent = (i - 1) // 2
            if items[i] < items[parent]:
                items[i], items[parent] = items[parent], items[i]
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        items = self.items
        n = self._size
        while True:
            smallest = i
            li = 2 * i + 1
            ri = 2 * i + 2
            if li < n and items[li] < items[smallest]:
                smallest = li
            if ri < n and items[ri] < items[smallest]:
                smallest = ri
            if smallest == i:
                return
            items[i], items[smallest] = items[smallest], items[i]
            i = smallest

    # Fault injection. -----------------------------------------------------------

    def corrupt(self, index: int, value: Any) -> None:
        """Overwrite slot ``index`` without re-heapifying."""
        if not 0 <= index < self._size:
            raise IndexError(index)
        self.items[index] = value
