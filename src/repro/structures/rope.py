"""Rope (binary text buffer) with cached-weight invariants (extension).

A rope stores a string as a binary tree: leaves hold text fragments,
internal nodes cache the length of their left subtree (``weight``) so
indexing is O(depth).  The cached weights are classic redundancy — exactly
the kind of derived data that silently rots when an edit path forgets to
update them, and that a dynamic invariant check keeps honest:

* :func:`check_rope_weights` — every concat node's ``weight`` equals the
  recomputed length of its left subtree (returns the subtree length, or
  ``-1`` on a violation — the paper's ``checkBlackDepth`` error-code
  style);
* :func:`check_rope_leaves` — every leaf holds non-empty text (empty
  leaves are legal nowhere except the empty rope), so the structure stays
  canonical.

Edits are implemented functionally at the node level (split/concat build
new nodes and share untouched subtrees) with one tracked ``root`` field
write per edit — the memoized invocations for shared subtrees survive
edits and the incremental check re-examines only the new spine.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from ..core.tracked import TrackedObject
from ..instrument.registry import check

#: Leaves longer than this are split on construction.
MAX_LEAF = 32


class RopeLeaf(TrackedObject):
    """A leaf: an immutable text fragment."""

    def __init__(self, text: str):
        self.text = text

    def __repr__(self) -> str:
        return f"RopeLeaf({self.text!r})"


class RopeConcat(TrackedObject):
    """An internal node: left/right subtrees and the cached left length."""

    def __init__(self, left: "RopeNode", right: "RopeNode", weight: int):
        self.left = left
        self.right = right
        self.weight = weight

    def __repr__(self) -> str:
        return f"RopeConcat(weight={self.weight})"


RopeNode = Union[RopeLeaf, RopeConcat]


@check
def check_rope_weights(n):
    """Recomputed length of the subtree under ``n``, or -1 if any cached
    ``weight`` disagrees with its left subtree's true length."""
    if n is None:
        return 0
    if isinstance(n, RopeLeaf):
        return len(n.text)
    left = check_rope_weights(n.left)
    right = check_rope_weights(n.right)
    if left == -1 or right == -1:
        return -1
    if n.weight != left:
        return -1
    return left + right


@check
def check_rope_leaves(n):
    """No empty leaf fragments anywhere under ``n``."""
    if n is None:
        return True
    if isinstance(n, RopeLeaf):
        return len(n.text) > 0
    b1 = check_rope_leaves(n.left)
    b2 = check_rope_leaves(n.right)
    return b1 and b2


@check
def rope_invariant(rope):
    """Entry point: weights are consistent and leaves are canonical."""
    w = check_rope_weights(rope.root)
    b = check_rope_leaves(rope.root)
    return w != -1 and b


def _length(node: Optional[RopeNode]) -> int:
    if node is None:
        return 0
    if isinstance(node, RopeLeaf):
        return len(node.text)
    return node.weight + _length(node.right)


def _build(text: str) -> Optional[RopeNode]:
    if not text:
        return None
    if len(text) <= MAX_LEAF:
        return RopeLeaf(text)
    mid = len(text) // 2
    left = _build(text[:mid])
    right = _build(text[mid:])
    assert left is not None and right is not None
    return RopeConcat(left, right, mid)


def _concat(
    left: Optional[RopeNode], right: Optional[RopeNode]
) -> Optional[RopeNode]:
    if left is None:
        return right
    if right is None:
        return left
    return RopeConcat(left, right, _length(left))


def _split(
    node: Optional[RopeNode], index: int
) -> tuple[Optional[RopeNode], Optional[RopeNode]]:
    """Split into (first ``index`` chars, the rest), sharing whole
    subtrees wherever the cut does not pass through them."""
    if node is None:
        return None, None
    if isinstance(node, RopeLeaf):
        if index <= 0:
            return None, node
        if index >= len(node.text):
            return node, None
        return (
            RopeLeaf(node.text[:index]),
            RopeLeaf(node.text[index:]),
        )
    if index < node.weight:
        left_a, left_b = _split(node.left, index)
        return left_a, _concat(left_b, node.right)
    if index == node.weight:
        return node.left, node.right
    right_a, right_b = _split(node.right, index - node.weight)
    return _concat(node.left, right_a), right_b


class Rope(TrackedObject):
    """A mutable text buffer backed by a rope."""

    def __init__(self, text: str = ""):
        self.root: Optional[RopeNode] = _build(text)

    def __len__(self) -> int:
        return _length(self.root)

    def __str__(self) -> str:
        return "".join(self._fragments(self.root))

    def _fragments(self, node: Optional[RopeNode]) -> Iterator[str]:
        if node is None:
            return
        if isinstance(node, RopeLeaf):
            yield node.text
            return
        yield from self._fragments(node.left)
        yield from self._fragments(node.right)

    def __getitem__(self, index: int) -> str:
        if index < 0:
            index += len(self)
        node = self.root
        while node is not None:
            if isinstance(node, RopeLeaf):
                return node.text[index]
            if index < node.weight:
                node = node.left
            else:
                index -= node.weight
                node = node.right
        raise IndexError(index)

    def insert(self, index: int, text: str) -> None:
        """Insert ``text`` before position ``index``."""
        if not text:
            return
        if not 0 <= index <= len(self):
            raise IndexError(index)
        left, right = _split(self.root, index)
        self.root = _concat(_concat(left, _build(text)), right)

    def append(self, text: str) -> None:
        self.insert(len(self), text)

    def delete(self, start: int, stop: int) -> None:
        """Delete characters in ``[start, stop)``."""
        n = len(self)
        if not 0 <= start <= stop <= n:
            raise IndexError((start, stop))
        if start == stop:
            return
        left, rest = _split(self.root, start)
        _, right = _split(rest, stop - start)
        self.root = _concat(left, right)

    # Fault injection. -----------------------------------------------------------

    def corrupt_weight(self, delta: int = 1) -> bool:
        """Skew the cached weight of some concat node (pre-order first)."""
        stack: list[Optional[RopeNode]] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, RopeConcat):
                node.weight += delta
                return True
        return False
