"""B-tree (CLRS-style, minimum degree ``t``) with its four invariants.

An extension benchmark in the paper's spirit: the structure databases use
for on-disk indexes, with invariants that combine object fields and array
slots —

* :func:`check_btree_keys_sorted` — keys within every node are strictly
  increasing, and unused key slots are ``None``;
* :func:`check_btree_counts` — every node's key count is within
  ``[t-1, 2t-1]`` (the root may hold as few as 1), and an internal node has
  exactly ``n + 1`` children;
* :func:`check_btree_bounds` — all keys under child ``c_i`` lie strictly
  between the separating keys (threaded as explicit ``lower``/``upper``
  arguments, like the red-black tree's ordering check);
* :func:`check_btree_depth` — every leaf sits at the same depth (returned
  as a count, ``-1`` on violation — the ``checkBlackDepth`` pattern).

Nodes store keys and children in fixed-capacity
:class:`~repro.core.tracked.TrackedArray`s, so a split or merge mutates a
bounded set of slots and the incremental check stays local.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..core.tracked import TrackedArray, TrackedObject
from ..instrument.registry import check

NEG_INF = float("-inf")
POS_INF = float("inf")


class BTreeNode(TrackedObject):
    """One node: ``n`` live keys in ``keys[0:n]``; leaves have no
    children, internal nodes have ``n + 1`` in ``children[0:n+1]``."""

    def __init__(self, t: int, leaf: bool):
        self.n = 0
        self.leaf = leaf
        self.keys = TrackedArray(2 * t - 1)
        self.children = TrackedArray(2 * t)

    def __repr__(self) -> str:
        live = [self.keys[i] for i in range(self.n)]
        kind = "leaf" if self.leaf else "internal"
        return f"BTreeNode({kind}, keys={live})"


@check
def check_btree_keys_sorted(node, i):
    """Keys ``i …`` of ``node`` strictly increase; spare slots are None."""
    keys = node.keys
    if i >= len(keys):
        return True
    if i >= node.n:
        ok = keys[i] is None
    elif i + 1 < node.n:
        k = keys[i]
        nxt = keys[i + 1]
        ok = k is not None and nxt is not None and k < nxt
    else:
        ok = keys[i] is not None
    b = check_btree_keys_sorted(node, i + 1)
    return ok and b


@check
def check_btree_counts(tree, node, is_root):
    """Key-count and child-count discipline for ``node``'s subtree."""
    t = tree.t
    n = node.n
    if is_root:
        ok = 0 <= n <= 2 * t - 1
    else:
        ok = t - 1 <= n <= 2 * t - 1
    b1 = check_btree_keys_sorted(node, 0)
    if node.leaf:
        return ok and b1
    b2 = check_btree_children_counts(tree, node, 0)
    return ok and b1 and b2


@check
def check_btree_children_counts(tree, node, i):
    """Recurse :func:`check_btree_counts` into children ``i … n`` and make
    sure spare child slots are empty."""
    children = node.children
    if i >= len(children):
        return True
    child = children[i]
    if i <= node.n:
        ok = child is not None
        b = True
        if child is not None:
            b = check_btree_counts(tree, child, 0)
    else:
        ok = child is None
        b = True
    b2 = check_btree_children_counts(tree, node, i + 1)
    return ok and b and b2


@check
def check_btree_bounds(node, lower, upper):
    """All keys in ``node``'s subtree lie strictly in (lower, upper)."""
    if node is None:
        return True
    ok = check_btree_bounds_keys(node, 0, lower, upper)
    if node.leaf:
        return ok
    b = check_btree_bounds_children(node, 0, lower, upper)
    return ok and b


@check
def check_btree_bounds_keys(node, i, lower, upper):
    if i >= node.n:
        return True
    k = node.keys[i]
    ok = k is not None and lower < k and k < upper
    b = check_btree_bounds_keys(node, i + 1, lower, upper)
    return ok and b


@check
def check_btree_bounds_children(node, i, lower, upper):
    """Child ``i`` sits between separator keys ``i-1`` and ``i``."""
    if i > node.n:
        return True
    if i == 0:
        lo = lower
    else:
        lo = node.keys[i - 1]
    if i == node.n:
        hi = upper
    else:
        hi = node.keys[i]
    ok = True
    if lo is not None and hi is not None:
        ok = check_btree_bounds(node.children[i], lo, hi)
    b = check_btree_bounds_children(node, i + 1, lower, upper)
    return ok and b


@check
def check_btree_depth(node):
    """Depth of the uniform leaf level below ``node``, or -1."""
    if node is None:
        return -1
    if node.leaf:
        return 1
    return check_btree_depth_children(node, 0)


@check
def check_btree_depth_children(node, i):
    """All children of ``node`` from ``i`` on report the same depth;
    returns that depth + 1, or -1."""
    child_depth = check_btree_depth(node.children[i])
    if i >= node.n:
        if child_depth == -1:
            return -1
        return child_depth + 1
    rest = check_btree_depth_children(node, i + 1)
    if child_depth == -1 or rest == -1:
        return -1
    if child_depth + 1 != rest:
        return -1
    return rest


@check
def btree_invariant(tree):
    """Entry point combining all four B-tree invariants."""
    root = tree.root
    b1 = check_btree_counts(tree, root, 1)
    b2 = check_btree_bounds(root, NEG_INF, POS_INF)
    if root.leaf:
        b3 = 1
    else:
        b3 = check_btree_depth(root)
    return b1 and b2 and b3 != -1


class BTree(TrackedObject):
    """A sorted set of keys with CLRS B-tree insertion and deletion."""

    def __init__(self, t: int = 3):
        if t < 2:
            raise ValueError("minimum degree t must be >= 2")
        self.t = t
        self.root = BTreeNode(t, leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        node = self.root
        while True:
            i = 0
            while i < node.n and key > node.keys[i]:
                i += 1
            if i < node.n and node.keys[i] == key:
                return True
            if node.leaf:
                return False
            node = node.children[i]

    def keys(self) -> Iterator[Any]:
        yield from self._iter(self.root)

    def _iter(self, node: BTreeNode) -> Iterator[Any]:
        for i in range(node.n):
            if not node.leaf:
                yield from self._iter(node.children[i])
            yield node.keys[i]
        if not node.leaf:
            yield from self._iter(node.children[node.n])

    # Insertion. -------------------------------------------------------------

    def insert(self, key: Any) -> bool:
        """Insert ``key``; False if it was already present."""
        if key in self:
            return False
        root = self.root
        if root.n == 2 * self.t - 1:
            new_root = BTreeNode(self.t, leaf=False)
            new_root.children[0] = root
            self.root = new_root
            self._split_child(new_root, 0)
            root = new_root
        self._insert_nonfull(root, key)
        self._size += 1
        return True

    def _split_child(self, parent: BTreeNode, index: int) -> None:
        t = self.t
        full = parent.children[index]
        sibling = BTreeNode(t, leaf=full.leaf)
        sibling.n = t - 1
        for j in range(t - 1):
            sibling.keys[j] = full.keys[j + t]
            full.keys[j + t] = None
        if not full.leaf:
            for j in range(t):
                sibling.children[j] = full.children[j + t]
                full.children[j + t] = None
        median = full.keys[t - 1]
        full.keys[t - 1] = None
        full.n = t - 1
        for j in range(parent.n, index, -1):
            parent.children[j + 1] = parent.children[j]
        parent.children[index + 1] = sibling
        for j in range(parent.n - 1, index - 1, -1):
            parent.keys[j + 1] = parent.keys[j]
        parent.keys[index] = median
        parent.n += 1

    def _insert_nonfull(self, node: BTreeNode, key: Any) -> None:
        i = node.n - 1
        if node.leaf:
            while i >= 0 and key < node.keys[i]:
                node.keys[i + 1] = node.keys[i]
                i -= 1
            node.keys[i + 1] = key
            node.n += 1
            return
        while i >= 0 and key < node.keys[i]:
            i -= 1
        i += 1
        if node.children[i].n == 2 * self.t - 1:
            self._split_child(node, i)
            if key > node.keys[i]:
                i += 1
        self._insert_nonfull(node.children[i], key)

    # Deletion (CLRS full algorithm). -------------------------------------------

    def delete(self, key: Any) -> bool:
        """Remove ``key``; True if it was present."""
        if key not in self:
            return False
        self._delete_from(self.root, key)
        if self.root.n == 0 and not self.root.leaf:
            self.root = self.root.children[0]
        self._size -= 1
        return True

    def _find_index(self, node: BTreeNode, key: Any) -> int:
        i = 0
        while i < node.n and key > node.keys[i]:
            i += 1
        return i

    def _delete_from(self, node: BTreeNode, key: Any) -> None:
        t = self.t
        i = self._find_index(node, key)
        if i < node.n and node.keys[i] == key:
            if node.leaf:
                for j in range(i, node.n - 1):
                    node.keys[j] = node.keys[j + 1]
                node.keys[node.n - 1] = None
                node.n -= 1
                return
            left = node.children[i]
            right = node.children[i + 1]
            if left.n >= t:
                predecessor = self._max_key(left)
                node.keys[i] = predecessor
                self._delete_from(left, predecessor)
            elif right.n >= t:
                successor = self._min_key(right)
                node.keys[i] = successor
                self._delete_from(right, successor)
            else:
                self._merge_children(node, i)
                self._delete_from(left, key)
            return
        assert not node.leaf, "key vanished during descent"
        child = node.children[i]
        if child.n == t - 1:
            # Grow the descent child first; a merge may shift the index.
            i = self._fill_child(node, i)
            child = node.children[i]
        self._delete_from(child, key)

    def _max_key(self, node: BTreeNode) -> Any:
        while not node.leaf:
            node = node.children[node.n]
        return node.keys[node.n - 1]

    def _min_key(self, node: BTreeNode) -> Any:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0]

    def _fill_child(self, node: BTreeNode, i: int) -> int:
        """Grow child ``i`` to >= t keys by borrowing or merging; returns
        the (possibly shifted) child index to continue the descent in."""
        t = self.t
        if i > 0 and node.children[i - 1].n >= t:
            self._borrow_from_left(node, i)
            return i
        if i < node.n and node.children[i + 1].n >= t:
            self._borrow_from_right(node, i)
            return i
        if i < node.n:
            self._merge_children(node, i)
            return i
        self._merge_children(node, i - 1)
        return i - 1

    def _borrow_from_left(self, node: BTreeNode, i: int) -> None:
        child = node.children[i]
        left = node.children[i - 1]
        for j in range(child.n - 1, -1, -1):
            child.keys[j + 1] = child.keys[j]
        if not child.leaf:
            for j in range(child.n, -1, -1):
                child.children[j + 1] = child.children[j]
        child.keys[0] = node.keys[i - 1]
        if not child.leaf:
            child.children[0] = left.children[left.n]
            left.children[left.n] = None
        node.keys[i - 1] = left.keys[left.n - 1]
        left.keys[left.n - 1] = None
        child.n += 1
        left.n -= 1

    def _borrow_from_right(self, node: BTreeNode, i: int) -> None:
        child = node.children[i]
        right = node.children[i + 1]
        child.keys[child.n] = node.keys[i]
        if not child.leaf:
            child.children[child.n + 1] = right.children[0]
        node.keys[i] = right.keys[0]
        for j in range(right.n - 1):
            right.keys[j] = right.keys[j + 1]
        right.keys[right.n - 1] = None
        if not right.leaf:
            for j in range(right.n):
                right.children[j] = right.children[j + 1]
            right.children[right.n] = None
        child.n += 1
        right.n -= 1

    def _merge_children(self, node: BTreeNode, i: int) -> None:
        """Merge child ``i``, separator key ``i``, and child ``i+1``."""
        t = self.t
        child = node.children[i]
        sibling = node.children[i + 1]
        child.keys[t - 1] = node.keys[i]
        for j in range(sibling.n):
            child.keys[j + t] = sibling.keys[j]
        if not child.leaf:
            for j in range(sibling.n + 1):
                child.children[j + t] = sibling.children[j]
        for j in range(i, node.n - 1):
            node.keys[j] = node.keys[j + 1]
        node.keys[node.n - 1] = None
        for j in range(i + 1, node.n):
            node.children[j] = node.children[j + 1]
        node.children[node.n] = None
        child.n += sibling.n + 1
        node.n -= 1

    # Fault injection. --------------------------------------------------------------

    def corrupt_key(self, key: Any, new_key: Any) -> bool:
        """Overwrite ``key`` in place (usually breaks ordering/bounds).
        Scans exhaustively, so it also *restores* keys the ordered search
        could no longer locate."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            for i in range(node.n):
                if node.keys[i] == key:
                    node.keys[i] = new_key
                    return True
            if not node.leaf:
                for i in range(node.n + 1):
                    child = node.children[i]
                    if child is not None:
                        stack.append(child)
        return False

    def corrupt_count(self, delta: int = 1) -> None:
        """Skew the root's key count."""
        self.root.n = max(0, self.root.n + delta)
