"""A growable tracked vector whose checks live on the barrier hot path.

Every other structure in this package wraps its storage in a
:class:`~repro.core.tracked.TrackedArray` (fixed capacity, point-location
barriers).  ``IntVector`` instead exposes :class:`~repro.core.tracked.
TrackedList`'s *structural* operations — clamping ``insert``, validating
``pop``, range-coalesced shift barriers — directly to the invariant layer
and the differential fuzzer.  The two confirmed staleness bugs in the
list barrier (an unclamped out-of-range ``insert`` logging an empty slot
range; ``pop`` logging phantom locations before raising) were invisible
to the corpus precisely because no registered structure drove these ops;
this one exists so they stay covered.

The checks are written in the paper's style (recursive, side-effect-free)
and are deliberately shaped to expose distinct dependency classes:

* ``vector_checksum_from`` reads every slot *and* the length at every
  recursion level — any lost slot or length barrier flips the digest.
* ``vector_tail`` reads ``v[-1]`` and nothing else.  A negative read
  depends on the length through the runtime's index normalization, not
  through an explicit ``len``; it goes stale under exactly the class of
  bug where a growth op fails to dirty the old tail's reader.
"""

from __future__ import annotations

from ..core.tracked import TrackedList
from ..instrument.registry import check


@check
def vector_checksum_from(v, i):
    """Position-weighted checksum of slots ``i..``: each level contributes
    ``(i + 1) * v[i]``, so a changed value, a shifted slot, or a changed
    length all alter the sum."""
    if i >= len(v):
        return 0
    x = v[i]
    rest = vector_checksum_from(v, i + 1)
    return (i + 1) * x + rest


@check
def vector_tail(v):
    """The last element, read through a negative index.  On an empty
    vector this raises ``IndexError`` — identically under scratch and
    incremental execution, which the differential oracle relies on."""
    return v[-1]


@check
def vector_digest(v):
    """Entry point: checksum and tail combined into one scalar."""
    s = vector_checksum_from(v, 0)
    t = vector_tail(v)
    return s * 31 + t


@check
def vector_sum_from(v, i):
    """Plain element sum of slots ``i..`` — the textbook admissible fold
    (sum monoid, identity 0, stencil ``v[i]``): the derived strategy
    maintains it in O(1) per mutation."""
    if i >= len(v):
        return 0
    x = v[i]
    rest = vector_sum_from(v, i + 1)
    return x + rest


@check
def vector_sum(v):
    """Entry point: the element sum, started at slot 0."""
    return vector_sum_from(v, 0)


class IntVector(TrackedList):
    """A growable sequence of small ints.

    Behaviorally identical to :class:`~repro.core.tracked.TrackedList`;
    registered as its own type so the QA layer has a named structure whose
    mutation surface *is* the list barrier."""

    __slots__ = ()

    def __repr__(self) -> str:
        return f"IntVector({self._items!r})"
