"""Skip list with per-level ordering/coherence invariants (extension).

A skip list keeps multiple sorted linked levels; level 0 holds every
element and higher levels skip ahead.  Each node owns a fixed
:class:`~repro.core.tracked.TrackedArray` of forward pointers, so an insert
or delete mutates O(level) array slots and the incremental check re-runs
only the invocations reading those slots.

Invariants (entry point :func:`skip_list_invariant`):

* along every level, values strictly increase
  (:func:`skip_level_sorted`);
* every node reachable at level ``l`` actually has ``> l`` forward slots
  (level coherence — enforced inside :func:`skip_level_sorted`);
* the head sentinel spans all levels.

Determinism: node levels come from a small linear-congruential generator
seeded per list, so test and benchmark runs are reproducible.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..core.tracked import TrackedArray, TrackedObject
from ..instrument.registry import check

MAX_LEVEL = 16
NEG_INF = float("-inf")


class SkipNode(TrackedObject):
    """One element: a value and ``level`` forward pointers."""

    def __init__(self, value: Any, level: int):
        self.value = value
        self.forward = TrackedArray(level)

    def __repr__(self) -> str:
        return f"SkipNode({self.value!r}, levels={len(self.forward)})"


@check
def skip_level_sorted(n, level):
    """From node ``n`` onward, level-``level`` links are strictly
    increasing and every node on the chain owns that level."""
    if n is None:
        return True
    arr = n.forward
    if level >= len(arr):
        return False
    nxt = arr[level]
    if nxt is None:
        return True
    ok = nxt.value > n.value
    b = skip_level_sorted(nxt, level)
    return ok and b


@check
def check_skip_levels(sl, level):
    """Fold :func:`skip_level_sorted` over levels ``level`` … 0."""
    if level < 0:
        return True
    b1 = skip_level_sorted(sl.head, level)
    b2 = check_skip_levels(sl, level - 1)
    return b1 and b2


@check
def skip_list_invariant(sl):
    """Entry point: every level of the skip list is sorted and coherent."""
    return check_skip_levels(sl, sl.level - 1)


class SkipList(TrackedObject):
    """A sorted set of values with O(log n) expected operations."""

    def __init__(self, seed: int = 0x5EED):
        self.head = SkipNode(NEG_INF, MAX_LEVEL)
        self.level = 1  # number of levels currently in use
        self._size = 0
        self._rng_state = seed & 0x7FFFFFFF

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Any]:
        n = self.head.forward[0]
        while n is not None:
            yield n.value
            n = n.forward[0]

    def __contains__(self, value: Any) -> bool:
        n = self.head
        for level in range(self.level - 1, -1, -1):
            while (
                n.forward[level] is not None
                and n.forward[level].value < value
            ):
                n = n.forward[level]
        n = n.forward[0]
        return n is not None and n.value == value

    def _random_level(self) -> int:
        # Deterministic LCG: p = 1/2 per extra level, capped at MAX_LEVEL.
        level = 1
        while level < MAX_LEVEL:
            self._rng_state = (self._rng_state * 1103515245 + 12345) & 0x7FFFFFFF
            if self._rng_state & 1:
                break
            level += 1
        return level

    def insert(self, value: Any) -> bool:
        """Insert ``value``; False if already present."""
        update: list[SkipNode] = [self.head] * MAX_LEVEL
        n = self.head
        for level in range(self.level - 1, -1, -1):
            while (
                n.forward[level] is not None
                and n.forward[level].value < value
            ):
                n = n.forward[level]
            update[level] = n
        nxt = n.forward[0]
        if nxt is not None and nxt.value == value:
            return False
        node_level = self._random_level()
        if node_level > self.level:
            self.level = node_level
        node = SkipNode(value, node_level)
        for level in range(node_level):
            node.forward[level] = update[level].forward[level]
            update[level].forward[level] = node
        self._size += 1
        return True

    def delete(self, value: Any) -> bool:
        """Remove ``value``; True if it was present."""
        update: list[SkipNode] = [self.head] * MAX_LEVEL
        n = self.head
        for level in range(self.level - 1, -1, -1):
            while (
                n.forward[level] is not None
                and n.forward[level].value < value
            ):
                n = n.forward[level]
            update[level] = n
        target = n.forward[0]
        if target is None or target.value != value:
            return False
        for level in range(len(target.forward)):
            if update[level].forward[level] is target:
                update[level].forward[level] = target.forward[level]
        while (
            self.level > 1 and self.head.forward[self.level - 1] is None
        ):
            self.level -= 1
        self._size -= 1
        return True

    # Fault injection. -------------------------------------------------------------

    def corrupt_value(self, value: Any, new_value: Any) -> bool:
        """Overwrite a node's value in place (usually breaks sortedness)."""
        n = self.head.forward[0]
        while n is not None:
            if n.value == value:
                n.value = new_value
                return True
            n = n.forward[0]
        return False
