"""The ordered integer list of paper §2 (Figure 1) and its invariant.

``OrderedIntList`` is a singly-linked list that keeps its elements sorted;
``is_ordered`` is the invariant check, written exactly as in Figure 1::

    Boolean isOrdered(IntListElem e) {
        if (e == null || e.next == null) return true;
        if (e.value > e.next.value) return false;
        return isOrdered(e.next);
    }

The list's mutators perform ordinary imperative pointer surgery; the write
barriers inherited from :class:`~repro.core.tracked.TrackedObject` make the
mutations visible to any engine incrementalizing ``is_ordered``.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.tracked import TrackedObject
from ..instrument.registry import check


class IntListElem(TrackedObject):
    """One cell of the list: an integer ``value`` and a ``next`` pointer."""

    def __init__(self, value: int, next: Optional["IntListElem"] = None):
        self.value = value
        self.next = next

    def __repr__(self) -> str:
        return f"IntListElem({self.value})"


@check
def is_ordered(e):
    """Every element is <= its successor (Figure 1)."""
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return is_ordered(e.next)


class OrderedIntList(TrackedObject):
    """A sorted singly-linked integer list with insert/delete operations."""

    def __init__(self) -> None:
        self.head: Optional[IntListElem] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[int]:
        e = self.head
        while e is not None:
            yield e.value
            e = e.next

    def insert(self, value: int) -> None:
        """Insert ``value`` at its sorted position (duplicates allowed)."""
        self._size += 1
        if self.head is None or value <= self.head.value:
            self.head = IntListElem(value, self.head)
            return
        prev = self.head
        while prev.next is not None and prev.next.value < value:
            prev = prev.next
        prev.next = IntListElem(value, prev.next)

    def delete(self, value: int) -> bool:
        """Remove the first occurrence of ``value``; True if found."""
        e = self.head
        prev: Optional[IntListElem] = None
        while e is not None:
            if e.value == value:
                if prev is None:
                    self.head = e.next
                else:
                    prev.next = e.next
                self._size -= 1
                return True
            prev, e = e, e.next
        return False

    def delete_first(self) -> Optional[int]:
        """Remove and return the smallest element (queue-style pop)."""
        if self.head is None:
            return None
        value = self.head.value
        self.head = self.head.next
        self._size -= 1
        return value

    def to_list(self) -> list[int]:
        return list(self)

    # Fault injection for tests and demos: corrupt the order invariant by
    # swapping a cell's value without going through insert/delete.
    def corrupt(self, index: int, value: int) -> None:
        """Overwrite the value at position ``index`` (may break sortedness)."""
        e = self.head
        for _ in range(index):
            if e is None:
                raise IndexError(index)
            e = e.next
        if e is None:
            raise IndexError(index)
        e.value = value
