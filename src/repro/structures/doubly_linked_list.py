"""Doubly-linked list with next/prev coherence invariant (extension).

The invariant is the classic "my neighbour points back at me" property the
paper's intro motivates (pointer-surgery bugs): for every node, ``n.next is
None`` iff ``n`` is the tail and otherwise ``n.next.prev is n``; and
symmetrically for ``prev``/head.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..core.tracked import TrackedObject
from ..instrument.registry import check


class DLLNode(TrackedObject):
    """A node: value, prev, next."""

    def __init__(self, value: Any):
        self.value = value
        self.prev: Optional["DLLNode"] = None
        self.next: Optional["DLLNode"] = None

    def __repr__(self) -> str:
        return f"DLLNode({self.value!r})"


@check
def check_dll_links(lst, n):
    """From ``n`` to the tail, every link is mutually consistent."""
    if n is None:
        return True
    nxt = n.next
    if nxt is None:
        ok1 = lst.tail is n
    else:
        ok1 = nxt.prev is n
    prv = n.prev
    if prv is None:
        ok2 = lst.head is n
    else:
        ok2 = prv.next is n
    b = check_dll_links(lst, nxt)
    return ok1 and ok2 and b


@check
def dll_invariant(lst):
    """Entry point: the whole list's prev/next pointers are coherent, and
    an empty list has no tail."""
    if lst.head is None:
        return lst.tail is None
    return check_dll_links(lst, lst.head)


class DoublyLinkedList(TrackedObject):
    """A deque-style doubly-linked list."""

    def __init__(self) -> None:
        self.head: Optional[DLLNode] = None
        self.tail: Optional[DLLNode] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Any]:
        n = self.head
        while n is not None:
            yield n.value
            n = n.next

    def push_front(self, value: Any) -> DLLNode:
        node = DLLNode(value)
        node.next = self.head
        if self.head is not None:
            self.head.prev = node
        self.head = node
        if self.tail is None:
            self.tail = node
        self._size += 1
        return node

    def push_back(self, value: Any) -> DLLNode:
        node = DLLNode(value)
        node.prev = self.tail
        if self.tail is not None:
            self.tail.next = node
        self.tail = node
        if self.head is None:
            self.head = node
        self._size += 1
        return node

    def pop_front(self) -> Any:
        if self.head is None:
            raise IndexError("pop from an empty list")
        node = self.head
        self.head = node.next
        if self.head is not None:
            self.head.prev = None
        else:
            self.tail = None
        self._size -= 1
        return node.value

    def pop_back(self) -> Any:
        if self.tail is None:
            raise IndexError("pop from an empty list")
        node = self.tail
        self.tail = node.prev
        if self.tail is not None:
            self.tail.next = None
        else:
            self.head = None
        self._size -= 1
        return node.value

    def remove(self, node: DLLNode) -> None:
        """Unlink ``node`` (must belong to this list)."""
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self.head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self.tail = node.prev
        self._size -= 1
        node.prev = node.next = None

    def insert_after(self, node: DLLNode, value: Any) -> DLLNode:
        """Insert ``value`` right after ``node``."""
        new = DLLNode(value)
        new.prev = node
        new.next = node.next
        if node.next is not None:
            node.next.prev = new
        else:
            self.tail = new
        node.next = new
        self._size += 1
        return new

    # Fault injection. --------------------------------------------------------------

    def corrupt_back_pointer(self, index: int) -> None:
        """Break the ``prev`` pointer of the node at ``index``."""
        n = self.head
        for _ in range(index):
            if n is None:
                raise IndexError(index)
            n = n.next
        if n is None:
            raise IndexError(index)
        n.prev = n.next  # now inconsistent unless the list is tiny
