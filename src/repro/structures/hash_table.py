"""Chained hash table and its bucket-consistency invariant (paper Figure 9).

The invariant — "no entry is in the wrong bucket" — spans two mutually
recursive functions, demonstrating multi-function checks::

    Boolean checkHashBuckets(int i) {
        if (i >= buckets.length) return true;
        boolean b1 = checkHashElements(buckets[i], i),
                b2 = checkHashBuckets(i+1);
        return b1 && b2;
    }
    Boolean checkHashElements(HashElement e, int i) {
        if (e == null) return true;
        return (e.key.hashCode() % buckets.length == i)
               && checkHashElements(e.next, i);
    }

Note the paper's own style: ``checkHashBuckets`` computes ``b1`` and ``b2``
*before* combining them, because a short-circuit ``&&`` whose right operand
is a call guarded by a callee return value would violate the §3.5
restriction.  ``checkHashElements`` may use ``&&`` because its guard is a
heap-derived condition, not a callee return value.

``stable_hash`` replaces Java's ``hashCode``: a deterministic, process-
independent hash so benchmark workloads are reproducible.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..core.tracked import TrackedArray, TrackedObject
from ..instrument.registry import check
from ..instrument.transform import register_pure_helper

_DEFAULT_CAPACITY = 16
_LOAD_FACTOR = 0.75


@register_pure_helper
def stable_hash(key: Any) -> int:
    """Deterministic hash for ints and strings (the ``hashCode`` analog)."""
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, str):
        h = 0
        for ch in key:
            h = (31 * h + ord(ch)) & 0x7FFFFFFF
        return h
    raise TypeError(f"unhashable key type for HashTable: {type(key).__name__}")


class HashElement(TrackedObject):
    """One chain link: key, value, next."""

    def __init__(
        self, key: Any, value: Any, next: Optional["HashElement"] = None
    ):
        self.key = key
        self.value = value
        self.next = next

    def __repr__(self) -> str:
        return f"HashElement({self.key!r}: {self.value!r})"


@check
def check_hash_elements(table, e, i):
    """Every element chained in bucket ``i`` hashes to bucket ``i``."""
    if e is None:
        return True
    buckets = table.buckets
    return (
        stable_hash(e.key) % len(buckets) == i
        and check_hash_elements(table, e.next, i)
    )


@check
def check_hash_buckets(table, i):
    """Fold :func:`check_hash_elements` over all buckets from ``i`` on."""
    buckets = table.buckets
    if i >= len(buckets):
        return True
    b1 = check_hash_elements(table, buckets[i], i)
    b2 = check_hash_buckets(table, i + 1)
    return b1 and b2


@check
def hash_table_invariant(table):
    """Entry point: the whole table is bucket-consistent."""
    return check_hash_buckets(table, 0)


@check
def bucket_occupancy_from(table, i):
    """Number of non-empty bucket heads in slots ``i..``.

    The derived-strategy companion to :func:`check_hash_buckets`: that
    fold chases ``e.next`` chains (pointer reads the maintainer cannot
    re-locate per slot, rejected as DIT203), whereas this count fold
    reads exactly ``buckets[i]`` per level and so admits O(1)
    maintenance."""
    buckets = table.buckets
    if i >= len(buckets):
        return 0
    x = buckets[i]
    rest = bucket_occupancy_from(table, i + 1)
    if x is None:
        return rest
    return 1 + rest


@check
def table_occupancy(table):
    """Entry point: how many buckets have at least one element."""
    return bucket_occupancy_from(table, 0)


class HashTable(TrackedObject):
    """A key → value map using chaining, rehashing at 0.75 load factor."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.buckets = TrackedArray(capacity)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _bucket_index(self, key: Any, capacity: int) -> int:
        return stable_hash(key) % capacity

    def get(self, key: Any, default: Any = None) -> Any:
        e = self.buckets[self._bucket_index(key, len(self.buckets))]
        while e is not None:
            if e.key == key:
                return e.value
            e = e.next
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def put(self, key: Any, value: Any) -> None:
        """Insert or update ``key``; rehashes when the load factor exceeds
        0.75 (replacing the bucket array, which the ``buckets`` field write
        barrier reports as one mutation)."""
        index = self._bucket_index(key, len(self.buckets))
        e = self.buckets[index]
        while e is not None:
            if e.key == key:
                e.value = value
                return
            e = e.next
        self.buckets[index] = HashElement(key, value, self.buckets[index])
        self._size += 1
        if self._size > _LOAD_FACTOR * len(self.buckets):
            self._rehash(2 * len(self.buckets))

    def remove(self, key: Any) -> bool:
        """Delete ``key``; True if it was present."""
        index = self._bucket_index(key, len(self.buckets))
        e = self.buckets[index]
        prev: Optional[HashElement] = None
        while e is not None:
            if e.key == key:
                if prev is None:
                    self.buckets[index] = e.next
                else:
                    prev.next = e.next
                self._size -= 1
                return True
            prev, e = e, e.next
        return False

    def _rehash(self, new_capacity: int) -> None:
        new_buckets = TrackedArray(new_capacity)
        for index in range(len(self.buckets)):
            e = self.buckets[index]
            while e is not None:
                nxt = e.next
                j = self._bucket_index(e.key, new_capacity)
                e.next = new_buckets[j]
                new_buckets[j] = e
                e = nxt
        self.buckets = new_buckets

    def items(self) -> Iterator[tuple[Any, Any]]:
        for index in range(len(self.buckets)):
            e = self.buckets[index]
            while e is not None:
                yield (e.key, e.value)
                e = e.next

    def keys(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    def purge(self, key: Any) -> bool:
        """Remove ``key`` wherever it is, scanning every bucket — the
        repair tool for elements that :meth:`corrupt` displaced (a normal
        :meth:`remove` only looks in the correct bucket)."""
        for index in range(len(self.buckets)):
            e = self.buckets[index]
            prev: Optional[HashElement] = None
            while e is not None:
                if e.key == key:
                    if prev is None:
                        self.buckets[index] = e.next
                    else:
                        prev.next = e.next
                    self._size -= 1
                    return True
                prev, e = e, e.next
        return False

    # Fault injection: move an element into the wrong bucket.
    def corrupt(self, key: Any) -> bool:
        """Relocate ``key``'s element to a wrong bucket (invariant broken)."""
        capacity = len(self.buckets)
        if capacity < 2:
            return False
        index = self._bucket_index(key, capacity)
        e = self.buckets[index]
        prev: Optional[HashElement] = None
        while e is not None:
            if e.key == key:
                if prev is None:
                    self.buckets[index] = e.next
                else:
                    prev.next = e.next
                wrong = (index + 1) % capacity
                e.next = self.buckets[wrong]
                self.buckets[wrong] = e
                return True
            prev, e = e, e.next
        return False
