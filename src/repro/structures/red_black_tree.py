"""Red-black tree and its three invariants (paper Figure 10).

The paper calls the red-black tree "an acid test for the feasibility of
DITTO": a single insert or delete can recolor and rotate large parts of the
tree, and two of the three invariants (black depth, ordering with bounds)
are global properties assembled from local computations.

The tree itself follows the classic sentinel formulation (CLRS-style, the
same shape as the GNU Classpath ``TreeMap`` the paper instruments): a
single always-black ``NIL`` sentinel terminates every path, every node
carries a ``parent`` pointer, and insert/delete restore the red-black
properties with recoloring and rotations.

The three checks, combined by the entry point :func:`rbt_invariant`:

* :func:`rbt_is_ordered` — binary-search-tree ordering, with (lower, upper)
  bounds threaded as explicit arguments;
* :func:`is_red_black` — local color/parent properties (colors are legal,
  children point back to their parent, no red node has a red child);
* :func:`check_black_depth` — every root-to-leaf path has the same number
  of black nodes (returns that count, or -1 on violation).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..core.tracked import TrackedObject
from ..instrument.registry import check

RED = 0
BLACK = 1

NEG_INF = float("-inf")
POS_INF = float("inf")


class RBNode(TrackedObject):
    """A tree node: key, value, color, left/right/parent pointers."""

    def __init__(self, key: Any, value: Any = None):
        self.key = key
        self.value = value
        self.color = RED
        self.left: "RBNode" = NIL
        self.right: "RBNode" = NIL
        self.parent: "RBNode" = NIL

    def __repr__(self) -> str:
        color = "R" if self.color == RED else "B"
        return f"RBNode({self.key!r}:{color})"


class _NilNode(RBNode):
    """The shared always-black sentinel ("nil is a special dummy node in
    the implementation that is always black")."""

    def __init__(self) -> None:
        # Bypass RBNode.__init__: NIL's children are itself.
        self.key = None
        self.value = None
        self.color = BLACK
        self.left = self
        self.right = self
        self.parent = self

    def __repr__(self) -> str:
        return "NIL"


NIL = _NilNode()


@check
def rbt_is_ordered(n, lower, upper):
    """BST ordering with exclusive (lower, upper) bounds (Figure 10)."""
    if n is NIL:
        return True
    if n.key <= lower or n.key >= upper:
        return False
    b1 = rbt_is_ordered(n.left, lower, n.key)
    b2 = rbt_is_ordered(n.right, n.key, upper)
    return b1 and b2


@check
def is_red_black(n):
    """Local red-black properties: legal colors, parent back-pointers,
    red nodes have black children (Figure 10)."""
    if n is NIL:
        return True
    l = n.left
    r = n.right
    if n.color != BLACK and n.color != RED:
        return False
    if (l is not NIL and l.parent is not n) or (
        r is not NIL and r.parent is not n
    ):
        return False
    if n.color == RED and (l.color != BLACK or r.color != BLACK):
        return False
    b1 = is_red_black(l)
    b2 = is_red_black(r)
    return b1 and b2


@check
def check_black_depth(n):
    """Number of black nodes on every path below ``n``, or -1 if paths
    disagree (Figure 10)."""
    if n is NIL:
        return 1
    left = check_black_depth(n.left)
    right = check_black_depth(n.right)
    if left != right or left == -1:
        return -1
    if n.color == BLACK:
        return left + 1
    return left


@check
def rbt_invariant(tree):
    """Entry point combining all three red-black invariants, as in the
    paper's ``invariants()`` method."""
    b1 = is_red_black(tree.root)
    b2 = check_black_depth(tree.root)
    b3 = rbt_is_ordered(tree.root, NEG_INF, POS_INF)
    return b1 and b2 != -1 and b3


class RedBlackTree(TrackedObject):
    """A key → value map backed by a red-black tree."""

    def __init__(self) -> None:
        self.root: RBNode = NIL
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not NIL

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._find(key)
        return default if node is NIL else node.value

    def _find(self, key: Any) -> RBNode:
        n = self.root
        while n is not NIL:
            if key == n.key:
                return n
            n = n.left if key < n.key else n.right
        return NIL

    def keys(self) -> Iterator[Any]:
        """In-order key iteration."""
        stack: list[RBNode] = []
        n = self.root
        while stack or n is not NIL:
            while n is not NIL:
                stack.append(n)
                n = n.left
            n = stack.pop()
            yield n.key
            n = n.right

    # Rotations. -----------------------------------------------------------------

    def _rotate_left(self, x: RBNode) -> None:
        y = x.right
        x.right = y.left
        if y.left is not NIL:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is NIL:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: RBNode) -> None:
        y = x.left
        x.left = y.right
        if y.right is not NIL:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is NIL:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # Insertion. ------------------------------------------------------------------

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` (updating the value if already present)."""
        parent = NIL
        n = self.root
        while n is not NIL:
            parent = n
            if key == n.key:
                n.value = value
                return
            n = n.left if key < n.key else n.right
        node = RBNode(key, value)
        node.parent = parent
        if parent is NIL:
            self.root = node
        elif key < parent.key:
            parent.left = node
        else:
            parent.right = node
        self._size += 1
        self._insert_fixup(node)

    def _insert_fixup(self, z: RBNode) -> None:
        while z.parent.color == RED:
            if z.parent is z.parent.parent.left:
                y = z.parent.parent.right
                if y.color == RED:
                    z.parent.color = BLACK
                    y.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                y = z.parent.parent.left
                if y.color == RED:
                    z.parent.color = BLACK
                    y.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self.root.color = BLACK

    # Deletion. -------------------------------------------------------------------

    def delete(self, key: Any) -> bool:
        """Remove ``key``; True if it was present."""
        z = self._find(key)
        if z is NIL:
            return False
        self._delete_node(z)
        self._size -= 1
        return True

    def _transplant(self, u: RBNode, v: RBNode) -> None:
        if u.parent is NIL:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _minimum(self, n: RBNode) -> RBNode:
        while n.left is not NIL:
            n = n.left
        return n

    def _delete_node(self, z: RBNode) -> None:
        y = z
        y_original_color = y.color
        if z.left is NIL:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is NIL:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_original_color == BLACK:
            self._delete_fixup(x)

    def _delete_fixup(self, x: RBNode) -> None:
        while x is not self.root and x.color == BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color == BLACK and w.right.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color == BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self.root
            else:
                w = x.parent.left
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color == BLACK and w.left.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color == BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self.root
        x.color = BLACK

    # Fault injection. ----------------------------------------------------------------

    def corrupt_color(self, key: Any) -> bool:
        """Flip a node's color (usually breaks a red-black property)."""
        node = self._find(key)
        if node is NIL:
            return False
        node.color = RED if node.color == BLACK else BLACK
        return True

    def corrupt_key(self, key: Any, new_key: Any) -> bool:
        """Overwrite a node's key in place (usually breaks BST order)."""
        node = self._find(key)
        if node is NIL:
            return False
        node.key = new_key
        return True
