"""Cross-structure invariant: two priority queues share no element.

The paper's introduction lists "no elements in this priority queue can be
in that priority queue" among the high-level invariants dynamic checks can
express.  This module implements it over two :class:`~repro.structures.
binary_heap.BinaryHeap` instances — a pattern from schedulers that move
tasks between a *ready* queue and a *waiting* queue and must never hold a
task in both.

The check is quadratic when run from scratch (every element of one heap is
searched in the other), which is exactly where incrementalization shines:
moving one element re-executes O(m) invocations instead of O(n·m).

`DisjointHeapPair` packages the two heaps with `move`-style operations and
fault injection for tests and demos.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.tracked import TrackedObject
from ..instrument.registry import check
from .binary_heap import BinaryHeap


@check
def value_in_heap(h, x, i):
    """``x`` occurs in heap ``h`` at slot >= ``i`` (occupied slots are a
    contiguous prefix, so the scan stops at the first empty slot)."""
    arr = h.items
    if i >= len(arr):
        return False
    v = arr[i]
    if v is None:
        return False
    found = v == x
    b = value_in_heap(h, x, i + 1)
    return found or b


@check
def check_disjoint_from(a, b, i):
    """No element of heap ``a`` at slot >= ``i`` occurs in heap ``b``."""
    arr = a.items
    if i >= len(arr):
        return True
    x = arr[i]
    ok = True
    if x is not None:
        ok = not value_in_heap(b, x, 0)
    b1 = check_disjoint_from(a, b, i + 1)
    return ok and b1


@check
def heaps_disjoint(pair):
    """Entry point: the pair's two heaps have no element in common."""
    return check_disjoint_from(pair.ready, pair.waiting, 0)


class DisjointHeapPair(TrackedObject):
    """A ready/waiting queue pair whose element sets must stay disjoint."""

    def __init__(self, capacity: int = 64):
        self.ready = BinaryHeap(capacity)
        self.waiting = BinaryHeap(capacity)

    def submit(self, value: Any) -> None:
        """New work enters the waiting queue."""
        self.waiting.push(value)

    def activate(self) -> Optional[Any]:
        """Move the most urgent waiting element to the ready queue."""
        if len(self.waiting) == 0:
            return None
        value = self.waiting.pop()
        self.ready.push(value)
        return value

    def complete(self) -> Optional[Any]:
        """Retire the most urgent ready element."""
        if len(self.ready) == 0:
            return None
        return self.ready.pop()

    def suspend(self) -> Optional[Any]:
        """Move the most urgent ready element back to waiting."""
        if len(self.ready) == 0:
            return None
        value = self.ready.pop()
        self.waiting.push(value)
        return value

    # Fault injection: the double-queuing bug the invariant catches.
    def corrupt_duplicate(self) -> Optional[Any]:
        """'Activate' an element while forgetting to remove it from the
        waiting queue, so it now lives in both heaps."""
        if len(self.waiting) == 0:
            return None
        value = self.waiting.peek()
        self.ready.push(value)
        return value
