"""Core incrementalization machinery (the paper's contribution)."""

from .argkeys import ArgsKey, is_primitive
from .engine import DittoEngine
from .errors import (
    CheckDeadlineExceeded,
    CheckRestrictionError,
    CyclicCheckError,
    DittoError,
    EngineBusyError,
    EngineStateError,
    GraphAuditError,
    InstrumentationError,
    OptimisticMispredictionError,
    ResultTypeError,
    StepLimitExceeded,
    TenantIsolationError,
    TrackingError,
    UnknownCheckError,
    VerificationError,
)
from .locations import (
    FieldLocation,
    IndexLocation,
    LengthLocation,
    Location,
    RangeLocation,
)
from .memo_table import MemoTable
from .node import ComputationNode
from .order_maintenance import OrderList, Record
from .stats import EngineStats, FallbackEvent, RunReport
from .tracked import (
    TrackedArray,
    TrackedList,
    TrackedObject,
    TrackingState,
    WriteLog,
    is_tracked,
    reset_tracking,
    tracking_state,
)

__all__ = [
    "ArgsKey",
    "CheckDeadlineExceeded",
    "CheckRestrictionError",
    "ComputationNode",
    "CyclicCheckError",
    "DittoEngine",
    "DittoError",
    "EngineBusyError",
    "EngineStateError",
    "EngineStats",
    "FallbackEvent",
    "FieldLocation",
    "GraphAuditError",
    "IndexLocation",
    "InstrumentationError",
    "is_primitive",
    "is_tracked",
    "LengthLocation",
    "Location",
    "MemoTable",
    "OptimisticMispredictionError",
    "OrderList",
    "RangeLocation",
    "Record",
    "reset_tracking",
    "ResultTypeError",
    "RunReport",
    "StepLimitExceeded",
    "TenantIsolationError",
    "TrackedArray",
    "TrackedList",
    "TrackedObject",
    "TrackingError",
    "TrackingState",
    "tracking_state",
    "UnknownCheckError",
    "VerificationError",
    "WriteLog",
]
