"""Core incrementalization machinery (the paper's contribution)."""

from .argkeys import ArgsKey, is_primitive
from .engine import DittoEngine
from .errors import (
    CheckRestrictionError,
    CyclicCheckError,
    DittoError,
    EngineStateError,
    GraphAuditError,
    InstrumentationError,
    OptimisticMispredictionError,
    ResultTypeError,
    StepLimitExceeded,
    TrackingError,
    UnknownCheckError,
    VerificationError,
)
from .locations import (
    FieldLocation,
    IndexLocation,
    LengthLocation,
    Location,
    RangeLocation,
)
from .memo_table import MemoTable
from .node import ComputationNode
from .order_maintenance import OrderList, Record
from .stats import EngineStats, FallbackEvent, RunReport
from .tracked import (
    TrackedArray,
    TrackedList,
    TrackedObject,
    WriteLog,
    is_tracked,
    reset_tracking,
    tracking_state,
)

__all__ = [
    "ArgsKey",
    "CheckRestrictionError",
    "ComputationNode",
    "CyclicCheckError",
    "DittoEngine",
    "DittoError",
    "EngineStateError",
    "EngineStats",
    "FallbackEvent",
    "FieldLocation",
    "GraphAuditError",
    "IndexLocation",
    "InstrumentationError",
    "is_primitive",
    "is_tracked",
    "LengthLocation",
    "Location",
    "MemoTable",
    "OptimisticMispredictionError",
    "OrderList",
    "RangeLocation",
    "Record",
    "reset_tracking",
    "ResultTypeError",
    "RunReport",
    "StepLimitExceeded",
    "TrackedArray",
    "TrackedList",
    "TrackedObject",
    "TrackingError",
    "tracking_state",
    "UnknownCheckError",
    "VerificationError",
    "WriteLog",
]
