"""The memoization table and its reverse (location → nodes) map.

Paper §3.1: "DITTO stores the graph in memory in the form of a table …
indexed by a pair (f, explicit args)"; "In addition … a reverse map, from
heap locations (implicit arguments) to table entries, is created."

The table also centralizes the reference-count maintenance on tracked
containers (paper §4): a container's count equals the number of live
implicit-argument entries, across all nodes in this table, whose location
names the container.  Write barriers consult the count to skip logging
writes no invariant check depends on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional

from .argkeys import ArgsKey
from .locations import IndexLocation, Location, RangeLocation
from .node import ComputationNode
from .tracked import (
    TrackedArray,
    TrackedObject,
    TrackingState,
    adopt_container,
)


def _merge_intervals(
    intervals: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Coalesce half-open ``(start, stop)`` intervals into a minimal
    disjoint cover.  Shift-heavy workloads log many overlapping ranges per
    drain (``insert(0)`` at every length produces a new ``(0, n+1)``);
    merging first makes the expansion cost proportional to the covered
    span, not to span × pending ranges."""
    intervals.sort()
    merged: list[tuple[int, int]] = []
    for start, stop in intervals:
        if merged and start <= merged[-1][1]:
            last_start, last_stop = merged[-1]
            if stop > last_stop:
                merged[-1] = (last_start, stop)
        else:
            merged.append((start, stop))
    return merged

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..instrument.registry import CheckFunction


class MemoTable:
    """Computation graph storage for one engine.

    ``tracking`` is the engine's isolation domain: every container this
    table takes an implicit-argument reference into is adopted by that
    domain first (its barriers then log to the domain's write log).  A
    bare ``MemoTable()`` performs no adoption — containers keep logging to
    the process-default state, the pre-isolation behaviour unit tests rely
    on."""

    def __init__(self, tracking: Optional[TrackingState] = None) -> None:
        self._entries: dict[tuple[int, ArgsKey], ComputationNode] = {}
        self._reverse: dict[Location, set[ComputationNode]] = {}
        self.tracking = tracking

    # Entry lookup. ----------------------------------------------------------

    def lookup(
        self, func: "CheckFunction", key: ArgsKey
    ) -> Optional[ComputationNode]:
        return self._entries.get((func.uid, key))

    def get_or_create(
        self, func: "CheckFunction", key: ArgsKey
    ) -> tuple[ComputationNode, bool]:
        """Return ``(node, created)`` for invocation ``func(key.args)``."""
        table_key = (func.uid, key)
        node = self._entries.get(table_key)
        if node is not None:
            return node, False
        node = ComputationNode(func, key)
        self._entries[table_key] = node
        return node, True

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ComputationNode]:
        return iter(self._entries.values())

    # Implicit arguments and the reverse map. --------------------------------

    def record_implicit(self, node: ComputationNode, location: Location) -> None:
        """Add ``location`` to ``node``'s implicit arguments, updating the
        reverse map and the container's reference count."""
        if location in node.implicits:
            return
        container = location.container
        if self.tracking is not None:
            # First reference into the container binds its barriers to this
            # engine's isolation domain (raises TenantIsolationError on a
            # live cross-domain share).  Must happen before ANY bookkeeping:
            # a location recorded in node.implicits without its matching
            # incref would be decref'd by clear_implicits on the aborted
            # run, silently draining the rightful owner's reference counts
            # (and with them its barrier filters) one failed attempt at a
            # time — until a retry found refcount 0 and adopted the
            # structure out from under its owner.
            adopt_container(container, self.tracking)
        node.implicits.add(location)
        dependents = self._reverse.get(location)
        if dependents is None:
            dependents = set()
            self._reverse[location] = dependents
        dependents.add(node)
        # Location-attributed incref.  The shipped tracked types get a
        # direct (monomorphic) call — every location reaching here for them
        # is already the interned instance, so canonicalization inside
        # ``_ditto_incref_loc`` is a dict no-op; duck-typed getattr
        # dispatch remains only for custom tracked containers.
        if isinstance(container, (TrackedObject, TrackedArray)):
            container._ditto_incref_loc(location)
        else:
            incref_loc = getattr(container, "_ditto_incref_loc", None)
            if incref_loc is not None:
                incref_loc(location)
            else:
                incref = getattr(container, "_ditto_incref", None)
                if incref is not None:
                    incref()

    def clear_implicits(self, node: ComputationNode) -> None:
        """Drop all of ``node``'s implicit arguments (before re-execution or
        when pruning), releasing reverse-map entries and reference counts."""
        for location in node.implicits:
            dependents = self._reverse.get(location)
            if dependents is not None:
                dependents.discard(node)
                if not dependents:
                    del self._reverse[location]
            container = location.container
            if isinstance(container, (TrackedObject, TrackedArray)):
                container._ditto_decref_loc(location)
            else:
                decref_loc = getattr(container, "_ditto_decref_loc", None)
                if decref_loc is not None:
                    decref_loc(location)
                else:
                    decref = getattr(container, "_ditto_decref", None)
                    if decref is not None:
                        decref()
        node.implicits.clear()

    def nodes_reading(self, location: Location) -> set[ComputationNode]:
        """Nodes whose implicit arguments include ``location``."""
        return self._reverse.get(location, set())

    def map_locations_to_nodes(
        self, locations: Iterable[Location]
    ) -> set[ComputationNode]:
        """``map_locs_to_memo_table_entries`` from Figure 7.

        Point locations probe the reverse map directly.  Coalesced
        :class:`RangeLocation` entries are expanded here — implicit
        arguments always name individual slots, so a range can never hit
        the reverse map as-is.  Ranges are first merged per container,
        then each merged interval is expanded by whichever side is
        smaller: probing one interned slot location per covered index, or
        scanning the reverse map once when the span exceeds its size."""
        dirty: set[ComputationNode] = set()
        ranges: dict[int, tuple[Any, list[tuple[int, int]]]] = {}
        for loc in locations:
            if type(loc) is RangeLocation:
                if loc.stop > loc.start:
                    entry = ranges.setdefault(id(loc.container),
                                              (loc.container, []))
                    entry[1].append((loc.start, loc.stop))
                continue
            dependents = self._reverse.get(loc)
            if dependents:
                dirty.update(dependents)
        for container, intervals in ranges.values():
            for start, stop in _merge_intervals(intervals):
                if stop - start <= len(self._reverse):
                    cache = getattr(container, "_ditto_loc_cache", None)
                    for index in range(start, stop):
                        probe = None if cache is None else cache.get(index)
                        if probe is None:
                            probe = IndexLocation(container, index)
                        dependents = self._reverse.get(probe)
                        if dependents:
                            dirty.update(dependents)
                else:
                    for key, dependents in self._reverse.items():
                        if (
                            type(key) is IndexLocation
                            and key.container is container
                            and start <= key.index < stop
                        ):
                            dirty.update(dependents)
        return dirty

    # Call edges. -------------------------------------------------------------

    def add_edge(self, caller: ComputationNode, callee: ComputationNode) -> None:
        """Record one ``caller -> callee`` call occurrence."""
        caller.calls.append(callee)
        callee.callers[caller] = callee.callers.get(caller, 0) + 1
        new_depth = caller.depth + 1
        if callee.depth == 0 or new_depth < callee.depth:
            callee.depth = new_depth

    def remove_edge(self, caller: ComputationNode, callee: ComputationNode) -> None:
        """Remove one ``caller -> callee`` call occurrence (the caller's
        ``calls`` list is managed by the engine)."""
        count = callee.callers.get(caller, 0)
        if count <= 1:
            callee.callers.pop(caller, None)
        else:
            callee.callers[caller] = count - 1

    # Pruning (Figure 7's ``prune``). ------------------------------------------

    def prune(self, node: ComputationNode) -> list[ComputationNode]:
        """Remove ``node`` and, transitively, any callee left without
        callers.  Returns the list of removed nodes (for stats and for the
        engine to release order-maintenance records).

        A node that is currently executing is never removed, even at zero
        callers: after a rotation-style reshape, a pruning cascade can
        reach an *ancestor of the current execution* through stale edges.
        Such nodes finish their execution and the engine prunes them then
        if they are still unreachable."""
        removed: list[ComputationNode] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.in_progress:
                continue  # deferred: the engine re-checks after its exec
            table_key = (current.func.uid, current.key)
            if self._entries.get(table_key) is not current:
                continue  # already pruned
            del self._entries[table_key]
            self.clear_implicits(current)
            removed.append(current)
            for callee in current.calls:
                self.remove_edge(current, callee)
                if callee.caller_count() == 0:
                    stack.append(callee)
            current.calls.clear()
            current.callers.clear()
        return removed

    def contains(self, node: ComputationNode) -> bool:
        return self._entries.get((node.func.uid, node.key)) is node

    def clear(self) -> list[ComputationNode]:
        """Drop the whole graph (step-limit fallback / engine reset),
        releasing all reference counts.  Returns the removed nodes."""
        removed = list(self._entries.values())
        for node in removed:
            self.clear_implicits(node)
            node.calls.clear()
            node.callers.clear()
        self._entries.clear()
        self._reverse.clear()
        return removed

    # Introspection used by tests and the graph auditor. -----------------------

    def entries(self) -> Iterator[tuple[tuple[int, ArgsKey], ComputationNode]]:
        """Iterate ``((uid, key), node)`` pairs — the raw table rows.  The
        auditor uses this to confirm each row's key matches the identity of
        the node stored under it."""
        return iter(self._entries.items())

    def reverse_items(self) -> Iterator[tuple[Location, set[ComputationNode]]]:
        """Iterate ``(location, dependent nodes)`` pairs of the reverse map.
        The auditor cross-checks these against each node's ``implicits``."""
        return iter(self._reverse.items())


    def snapshot(self) -> dict[tuple[str, tuple], object]:
        """Map ``(function name, explicit args)`` to return values, for
        graph-isomorphism assertions in the test suite."""
        return {
            (node.func.name, node.explicit_args): node.return_val
            for node in self._entries.values()
        }

    def reverse_map_size(self) -> int:
        return len(self._reverse)
