"""The DITTO incrementalization engine.

One :class:`DittoEngine` incrementalizes one invariant check, identified by
its entry-point function (paper §2: "we identify the check by the
entry-point function that is invoked by the main program").  Three execution
modes reproduce the paper's three strategies:

* ``"scratch"`` — run the original, un-instrumented check (the "standard
  invariant checks" curve in Figure 11);
* ``"naive"`` — the naive incrementalizer of Figure 6: reuse a cached
  invocation only after *replaying* every callee and confirming all callee
  return values are unchanged;
* ``"ditto"`` — the optimistic incrementalizer of Figure 7 (default):
  reuse any non-dirty cached invocation outright, then repair with pruning,
  return-value propagation, and misprediction retry.

Typical use::

    from repro import DittoEngine, check

    @check
    def is_ordered(e): ...

    engine = DittoEngine(is_ordered)
    lst = OrderedIntList()
    assert engine.run(lst.head)        # first run: builds the graph
    lst.insert(42)                     # write barriers log the mutations
    assert engine.run(lst.head)        # incremental: re-runs O(1) nodes

The engine validates the check against the paper's static restrictions at
construction time, registers the fields the check reads with the global
write-barrier state, and compiles instrumented versions of every function
in the check's call-graph closure.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..instrument.registry import CheckFunction, check as as_check, closure_of
from ..instrument.transform import instrument, instrumented_source
from .argkeys import ArgsKey, is_primitive
from .errors import (
    CheckDeadlineExceeded,
    CheckRestrictionError,
    CyclicCheckError,
    DittoError,
    EngineBusyError,
    EngineStateError,
    GraphAuditError,
    InstrumentationError,
    OptimisticMispredictionError,
    ResultTypeError,
    StepLimitExceeded,
    TenantIsolationError,
    TrackingError,
    UnknownCheckError,
    VerificationError,
)
from .memo_table import MemoTable
from .node import ComputationNode
from .order_maintenance import OrderList
from .runtime import Runtime
from .stats import PHASES, EngineStats, RunReport
from .tracked import TrackingState, tracking_state
from ..obs.trace import NullSink, TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.profiler import RepairProfiler
    from ..obs.provenance import RunRecorder
    from ..resilience.auditor import AuditReport
    from ..resilience.degradation import DegradationPolicy

_MODES = ("ditto", "naive", "scratch")

#: Phase name -> EngineStats accumulator attribute (precomputed so the
#: per-phase accounting does no string building at run time).
_TIMER_ATTRS = {phase: "time_" + phase for phase in PHASES}

#: Deterministic usage/semantics errors a scratch re-run cannot repair (and
#: must not mask): graceful degradation forwards these to the main program
#: instead of retrying.
_UNRECOVERABLE = (
    CheckRestrictionError,
    CyclicCheckError,
    EngineStateError,
    InstrumentationError,
    ResultTypeError,
    TenantIsolationError,
    TrackingError,
    UnknownCheckError,
)

#: Control-flow exceptions that must never be converted into a fallback.
_NEVER_CAUGHT = (KeyboardInterrupt, SystemExit, GeneratorExit)

#: Scalar types never treated as heap references by the leaf-call test.
_SCALARS = (int, float, bool, str, bytes, complex)

#: Maximum misprediction-retry rounds before exceptions are forwarded to the
#: main program (§3.5: "If an exception still occurs at this stage, the
#: exception is forwarded on").
_MAX_RETRY_ROUNDS = 3

#: Valid values of the ``specialize`` engine option.
_SPECIALIZE_CHOICES = ("off", "on", "auto")

#: Environment values that turn the specialization tier off under
#: ``specialize="auto"`` (anything else, including unset, leaves it on).
_SPECIALIZE_OFF_VALUES = ("0", "off", "false", "no")


def _resolve_specialize(setting: str) -> bool:
    """Map the ``specialize`` option (plus ``DITTO_SPECIALIZE`` under
    ``"auto"``) to the tier decision."""
    if setting == "auto":
        env = os.environ.get("DITTO_SPECIALIZE", "").strip().lower()
        return env not in _SPECIALIZE_OFF_VALUES
    return setting == "on"


#: Valid values of the ``strategy`` engine option (see :mod:`repro.derive`):
#: ``"memo"`` always repairs through the memo graph; ``"derived"`` requires
#: the fold classifier to accept the entry (raising otherwise); ``"hybrid"``
#: picks derived maintenance where admissibility is proven and the memo
#: graph everywhere else; ``"auto"`` reads ``DITTO_STRATEGY`` (defaulting
#: to memo).
_STRATEGY_CHOICES = ("memo", "derived", "hybrid", "auto")


def _resolve_strategy(setting: str) -> str:
    """Map the ``strategy`` option (plus ``DITTO_STRATEGY`` under
    ``"auto"``) to the repair-strategy decision."""
    if setting == "auto":
        env = os.environ.get("DITTO_STRATEGY", "").strip().lower()
        return env if env in ("memo", "derived", "hybrid") else "memo"
    return setting


class DittoEngine:
    """Automatic incrementalizer for one data structure invariant check."""

    # Step-accounting backing fields.  Class-level defaults let the property
    # setters below run in any order during ``__init__`` (each reads its
    # siblings' backing attributes).
    _step_limit: Optional[int] = None
    _step_hook: Optional[Callable[["DittoEngine"], None]] = None
    _step_hook_interval: int = 128
    _hook_countdown: int = 128
    #: True iff a step limit or step hook is armed.  This is the single
    #: per-step test both tiers perform before entering :meth:`_step_tail`,
    #: so unlimited runs pay one attribute load per step instead of the
    #: limit/hook/countdown cascade.
    _step_active: bool = False

    def __init__(
        self,
        entry: CheckFunction,
        mode: str = "ditto",
        strict: bool = True,
        leaf_optimization: bool = True,
        step_limit: Optional[int] = None,
        recursion_limit: Optional[int] = 20_000,
        paranoia: int = 0,
        degradation: Optional["DegradationPolicy"] = None,
        trace_sink: Optional[TraceSink] = None,
        lint: str = "off",
        tracking: Optional[TrackingState] = None,
        step_hook: Optional[Callable[["DittoEngine"], None]] = None,
        step_hook_interval: int = 128,
        profiler: Optional["RepairProfiler"] = None,
        specialize: str = "auto",
        strategy: str = "auto",
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if specialize not in _SPECIALIZE_CHOICES:
            raise ValueError(
                f"specialize must be one of {_SPECIALIZE_CHOICES}, got "
                f"{specialize!r}"
            )
        if strategy not in _STRATEGY_CHOICES:
            raise ValueError(
                f"strategy must be one of {_STRATEGY_CHOICES}, got "
                f"{strategy!r}"
            )
        if paranoia < 0:
            raise ValueError(f"paranoia must be >= 0, got {paranoia!r}")
        if lint not in ("off", "warn", "strict"):
            raise ValueError(
                f"lint must be 'off', 'warn', or 'strict', got {lint!r}"
            )
        #: Checks recurse once per structure element and the engine adds a
        #: few frames per invocation, so runs raise the interpreter
        #: recursion limit to at least this value (None disables; for very
        #: deep structures run inside
        #: :func:`repro.bench.runner.run_with_big_stack`).
        self.recursion_limit = recursion_limit
        self.entry = as_check(entry)
        self.mode = mode
        self.strict = strict
        self.leaf_optimization = leaf_optimization
        self.step_limit = step_limit
        #: Audit the graph and cross-check the result against the
        #: uninstrumented check every N runs (0 disables).  See
        #: :mod:`repro.resilience` for the failure modes this catches.
        self.paranoia = paranoia
        #: How to recover when trust in the graph is lost; None preserves
        #: the classic behaviour (step-limit rebuilds, everything else is
        #: forwarded to the main program).
        self.degradation = degradation
        #: The write-barrier isolation domain this engine consumes from.
        #: Defaults to the process-wide state; the serving layer binds each
        #: tenant's engines to a private :class:`TrackingState` so tenants
        #: cannot observe each other's barriers or fault hooks.
        self.tracking = tracking if tracking is not None else tracking_state()
        # Step accounting: the interval is assigned first (its setter
        # validates and primes the countdown) so installing the hook sees
        # the requested cadence, not the class default.
        self.step_hook_interval = step_hook_interval
        self.step_hook = step_hook
        self.stats = EngineStats()
        self.table = MemoTable(self.tracking)
        self.order = OrderList()
        self.runtime = Runtime(self)
        # Observability (repro.obs).  ``tracing`` is the single boolean the
        # hot paths test: with the default NullSink no event is ever built.
        self._sink: TraceSink = trace_sink if trace_sink is not None else NullSink()
        self.tracing = not isinstance(self._sink, NullSink)
        #: Per-run provenance recorder (repro.obs.enable_provenance).
        self.recorder: Optional["RunRecorder"] = None
        #: Repair-cost attribution profiler (repro.obs.profiler).  Hooks
        #: mirror the recorder's ``is not None`` guard; attached below
        #: (once tracking exists) or later via ``profiler.attach(engine)``.
        self.profiler: Optional["RepairProfiler"] = None
        #: Wall-clock seconds of the most recent run() call and its
        #: per-phase breakdown (reset at the start of every run).
        self.last_duration = 0.0
        self.last_phase_times: dict[str, float] = {}
        self._current_phase = ""

        # Resolve the check's function closure and validate every member
        # (analysis() raises CheckRestrictionError on a violation), then
        # build the interprocedural plan: the per-entry monitored-field set
        # (checks + reachable helpers), helper read summaries for call-site
        # attribution, and the lint diagnostics.
        self.functions: dict[int, CheckFunction] = closure_of(self.entry)
        #: How whole-program lint findings are handled at construction:
        #: ``"off"`` builds the plan silently, ``"warn"`` counts findings
        #: in the stats, ``"strict"`` additionally raises on error-severity
        #: findings and trusts statically-verified helpers at runtime.
        self.lint_mode = lint
        self.plan = None
        from ..lint.interproc import build_plan  # lazy: import cycle

        try:
            self.plan = build_plan(self.entry)
        except CheckRestrictionError:
            raise
        except Exception:  # pragma: no cover - planner bug; stay usable
            self.plan = None
        #: Helper function -> HelperSummary for depth-1 read attribution.
        self.helper_summaries: dict[Any, Any] = {}
        #: (class, method name) -> HelperSummary for registered pure
        #: methods on tracked receivers (depth-1 receiver/argument reads).
        self.method_summaries: dict[tuple[type, str], Any] = {}
        #: Helpers accepted without registration (lint="strict" only).
        self.verified_helpers: frozenset = frozenset()
        if self.plan is not None:
            self.monitored_fields = frozenset(self.plan.monitored_fields)
            self.helper_summaries = self.plan.helper_summaries
            self.method_summaries = self.plan.method_summaries
            if lint == "strict":
                self.verified_helpers = self.plan.verified_helpers
            if lint != "off":
                report = self.plan.report()
                self.stats.lint_runs += 1
                self.stats.lint_errors += len(report.errors)
                self.stats.lint_warnings += len(report.warnings)
                if lint == "strict" and report.errors:
                    raise CheckRestrictionError(
                        self.entry.name,
                        [d.format() for d in report.errors],
                    )
        else:
            fields: set[str] = set()
            for fn in self.functions.values():
                fields.update(fn.analysis().fields_read)
            self.monitored_fields = frozenset(fields)
        self.tracking.monitor_fields(self.monitored_fields)
        self._log_cid = self.tracking.write_log.register()

        # Execution state the compiled tiers close over (the stack list is
        # pre-bound by specialized closures and must exist before compile).
        self._stack: list[ComputationNode] = []

        # Repair strategy (repro.derive): when the fold classifier accepts
        # the entry under strategy "derived"/"hybrid", the engine bypasses
        # the memo graph entirely and repairs through synthesized fold
        # maintainers driven off the same write-log cursor.
        #: The requested ``strategy`` option, unresolved.
        self.strategy = strategy
        #: ``"derived"`` or ``"memo"`` — what this engine actually runs.
        self.active_strategy = "memo"
        #: The :class:`~repro.derive.maintain.DerivedState` facade, or None
        #: when the memo graph is the strategy.
        self.derived = None
        resolved = _resolve_strategy(strategy) if mode == "ditto" else "memo"
        if resolved in ("derived", "hybrid"):
            from ..derive import DerivedState, classify_entry

            classification = classify_entry(self.entry)
            if classification.ok:
                self.derived = DerivedState(
                    self.entry, classification, self.tracking, self.stats,
                )
                self.active_strategy = "derived"
            elif resolved == "derived":
                raise CheckRestrictionError(
                    self.entry.name,
                    [
                        "strategy='derived' requires an admissible fold: "
                        + (classification.why_not() or "no fold found")
                    ],
                )

        # Compile instrumented versions (Figure 3) of every check function.
        #: Whether the specialization tier compiles this engine's checks
        #: (``specialize`` kwarg, ``DITTO_SPECIALIZE`` env under "auto");
        #: irrelevant in scratch mode, which runs the original source.
        self.specialize = specialize
        self.specialized = mode != "scratch" and _resolve_specialize(specialize)
        self._compiled: dict[int, Any] = {}
        if self.derived is not None:
            # Derived engines never call into the memo tiers; skipping
            # instrumentation keeps their construction cost proportional
            # to the classifier, not the compiler.
            pass
        elif self.specialized:
            from ..instrument.specialize import specialize_closure

            self._compiled.update(specialize_closure(self))
        else:
            for fn in self.functions.values():
                uid_map = {
                    name: callee.uid
                    for name, callee in fn.resolve_callees().items()
                }
                self._compiled[fn.uid] = instrument(fn, uid_map, self.runtime)
        self._root: Optional[ComputationNode] = None
        # Artificial caller pinning the root so it is never pruned.
        self._anchor = ComputationNode(self.entry, ArgsKey(("<anchor>",)))
        self.steps = 0
        self.in_incremental_run = False
        self._final_retry = False
        # Busy guard: the lock makes the check-and-set atomic across
        # threads; the flag additionally catches same-thread re-entrancy
        # (a check body calling back into its own engine) and is what
        # tests/introspection read.
        self._running = False
        self._run_lock = threading.Lock()
        self._tick = 0
        self._to_propagate: set[ComputationNode] = set()
        self._failed: set[ComputationNode] = set()
        self._closed = False
        # Degradation state (configured by self.degradation, reset by a
        # clean incremental run): scratch-only runs left in the current
        # cooldown window, consecutive-fallback streak for backoff, and the
        # paranoia run counter.
        self._cooldown_remaining: float = 0
        self._consecutive_fallbacks = 0
        self._runs_since_audit = 0
        if profiler is not None:
            profiler.attach(self)

    # Observability plumbing (repro.obs). -------------------------------------------

    @property
    def trace_sink(self) -> TraceSink:
        """The attached :class:`~repro.obs.trace.TraceSink`.  Assigning a
        non-null sink turns tracing on; assigning ``None`` or a
        :class:`~repro.obs.trace.NullSink` turns it off."""
        return self._sink

    @trace_sink.setter
    def trace_sink(self, sink: Optional[TraceSink]) -> None:
        self._sink = sink if sink is not None else NullSink()
        self.tracing = not isinstance(self._sink, NullSink)

    # Step accounting (shared by the interpreter and specialized tiers). -----------

    @property
    def step_limit(self) -> Optional[int]:
        """Abort an *incremental* run after this many runtime steps
        (§3.5's second remedy for optimistic non-termination); ``None``
        disables the limit."""
        return self._step_limit

    @step_limit.setter
    def step_limit(self, limit: Optional[int]) -> None:
        self._step_limit = limit
        self._step_active = limit is not None or self._step_hook is not None

    @property
    def step_hook(self) -> Optional[Callable[["DittoEngine"], None]]:
        """Cooperative cancellation hook: called with the engine every
        ``step_hook_interval`` runtime steps during instrumented execution.
        Raising :class:`CheckDeadlineExceeded` from it aborts the run
        transactionally (graph discarded, exception forwarded); the serving
        layer uses this for soft deadlines."""
        return self._step_hook

    @step_hook.setter
    def step_hook(self, hook: Optional[Callable[["DittoEngine"], None]]) -> None:
        self._step_hook = hook
        # A freshly-(re)installed hook starts a full interval from *now* —
        # the countdown must not inherit the previous hook's residue, which
        # could make the first firing up to a full interval late.
        self._hook_countdown = self._step_hook_interval
        self._step_active = hook is not None or self._step_limit is not None

    @property
    def step_hook_interval(self) -> int:
        """Steps between :attr:`step_hook` invocations (>= 1)."""
        return self._step_hook_interval

    @step_hook_interval.setter
    def step_hook_interval(self, interval: int) -> None:
        if interval < 1:
            raise ValueError(
                f"step_hook_interval must be >= 1, got {interval!r}"
            )
        self._step_hook_interval = interval
        # Re-arm immediately at the new cadence: a hook that tightens the
        # interval mid-run (deadline pressure) must not wait out the stale
        # countdown primed from the old interval.
        self._hook_countdown = interval

    def _step_tail(self) -> None:
        """Slow half of per-step accounting, entered only when
        ``_step_active`` (a limit or hook is armed).  ``Runtime._step`` and
        the specialized tier's inlined step sequence share this so the two
        tiers cannot drift."""
        if (
            self._step_limit is not None
            and self.in_incremental_run
            and self.steps > self._step_limit
        ):
            raise StepLimitExceeded(
                f"incremental run exceeded {self._step_limit} steps"
            )
        hook = self._step_hook
        if hook is not None:
            self._hook_countdown -= 1
            if self._hook_countdown <= 0:
                self._hook_countdown = self._step_hook_interval
                hook(self)

    def _phase_begin(self, name: str) -> float:
        self._current_phase = name
        return time.perf_counter()

    def _phase_end(self, name: str, start: float) -> None:
        """Account one completed phase: per-run breakdown, lifetime stats
        accumulator, and (when tracing) a span event."""
        dur = time.perf_counter() - start
        self._current_phase = ""
        times = self.last_phase_times
        times[name] = times.get(name, 0.0) + dur
        stats_dict = self.stats.__dict__
        attr = _TIMER_ATTRS[name]
        stats_dict[attr] = stats_dict[attr] + dur
        if self.tracing:
            self._sink.span(name, start, dur)

    # Public API. -----------------------------------------------------------------

    def run(self, *args: Any) -> Any:
        """Execute the invariant check on the current program state and
        return its result, reusing previous executions where possible.

        This is also the resilience boundary: step-limit blowups, repair
        exceptions (when a :class:`~repro.resilience.degradation.
        DegradationPolicy` is configured), paranoia audit failures, and
        verify mismatches are all converted here into a transactional
        graph discard plus a trustworthy from-scratch answer."""
        if self._closed:
            raise EngineStateError("engine has been closed")
        # Atomic busy guard: the non-blocking lock rejects a second thread,
        # the flag rejects same-thread re-entrancy (a check body calling
        # back into its own engine would corrupt the memo graph mid-run).
        if self._running or not self._run_lock.acquire(blocking=False):
            raise EngineBusyError(
                f"DittoEngine.run() for check {self.entry.name!r} called "
                f"while a run is already executing; check() is not "
                f"re-entrant and engines must be externally serialized "
                f"across threads (see repro.serving for a pooled front end)"
            )
        try:
            self._running = True
            self.last_phase_times = {}
            self._hook_countdown = self.step_hook_interval
            if self.mode == "scratch":
                self.stats.runs += 1
                self.stats.full_runs += 1
                start = self._phase_begin("exec")
                try:
                    return self.entry.original(*args)
                finally:
                    self._phase_end("exec", start)
                    self.last_duration = time.perf_counter() - start
            start = time.perf_counter()
            aborted = True
            try:
                if self.derived is not None:
                    result = self._run_derived(args)
                else:
                    result = self._run_resilient(args)
                aborted = False
                return result
            finally:
                self.last_duration = time.perf_counter() - start
                if self.recorder is not None:
                    self.recorder.end_run(
                        self.last_duration, self.last_phase_times, aborted
                    )
                if self.profiler is not None:
                    self.profiler.run_finished(self, aborted)
        finally:
            self._running = False
            self._run_lock.release()

    def run_with_report(self, *args: Any) -> RunReport:
        """Like :meth:`run`, also returning per-run statistics."""
        before = self.stats.snapshot()
        incremental = self._root is not None or (
            self.derived is not None and self.derived.is_bound
        )
        result = self.run(*args)
        return RunReport(
            result=result,
            mode=self.mode,
            incremental=incremental and self.mode != "scratch",
            delta=self.stats.delta(before),
            graph_size=len(self.table),
            duration=self.last_duration,
            phase_times=dict(self.last_phase_times),
        )

    def invalidate(self) -> None:
        """Drop the computation graph; the next run starts from scratch."""
        for node in self.table.clear():
            if node.order_rec is not None:
                self.order.delete(node.order_rec)
                node.order_rec = None
        self._anchor.calls.clear()
        self._root = None
        self._to_propagate.clear()
        self._failed.clear()
        if self.derived is not None:
            self.derived.invalidate()
        # Discard pending log entries; the next run re-reads everything.
        self.tracking.write_log.consume(self._log_cid)

    def close(self) -> None:
        """Release global tracking resources held by this engine."""
        if self._closed:
            return
        self.invalidate()
        if self.derived is not None:
            self.derived.release()
        self.tracking.write_log.unregister(self._log_cid)
        self.tracking.unmonitor_fields(self.monitored_fields)
        self._closed = True

    def __enter__(self) -> "DittoEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def graph_size(self) -> int:
        return len(self.table)

    def graph_snapshot(self) -> dict[tuple[str, tuple], object]:
        """(function name, explicit args) → return value, for tests."""
        return self.table.snapshot()

    def validate(self) -> None:
        """Assert the engine's internal consistency invariants; raises
        ``AssertionError`` with a description on any violation.  Intended
        for tests (the property machines call it after every step) and for
        debugging engine extensions — it walks the whole graph.
        """
        table = self.table
        # Anchor and root agree.
        if self._root is not None:
            assert table.contains(self._root), "root not in table"
            assert self._root.callers.get(self._anchor, 0) == 1, (
                "root is not anchored exactly once"
            )
            assert self._anchor.calls.count(self._root) == 1, (
                "anchor call edge out of sync"
            )
        edge_counts: dict[tuple[int, int], int] = {}
        for node in table:
            assert not node.dirty, f"{node} left dirty after run"
            assert not node.failed, f"{node} left failed after run"
            assert not node.in_progress, f"{node} left in-progress"
            assert node.has_result, f"{node} has no result"
            assert node.order_rec is not None and node.order_rec.alive, (
                f"{node} lost its order record"
            )
            for callee in node.calls:
                assert table.contains(callee), (
                    f"{node} calls pruned node {callee}"
                )
                key = (id(node), id(callee))
                edge_counts[key] = edge_counts.get(key, 0) + 1
            for location in node.implicits:
                assert node in table.nodes_reading(location), (
                    f"reverse map missing {location} -> {node}"
                )
        for node in table:
            for caller, count in node.callers.items():
                if caller is self._anchor:
                    continue
                assert table.contains(caller), (
                    f"{node} has pruned caller {caller}"
                )
                assert edge_counts.get((id(caller), id(node))) == count, (
                    f"edge multiplicity mismatch {caller} -> {node}"
                )
            if node is not self._root:
                assert node.caller_count() > 0, f"{node} unreachable"

    def lint(self):
        """Re-run the whole-program lint pass for this engine's entry point
        and return the :class:`~repro.lint.rules.LintReport`.

        The pass resolves against the *current* registry state, so it
        reflects helpers registered (or rebound) after construction.  The
        refreshed plan also replaces :attr:`plan` / :attr:`helper_summaries`
        (and, under ``lint="strict"``, :attr:`verified_helpers`), keeping
        runtime attribution in step with what was just verified.  Findings
        are counted in :attr:`stats` (``lint_runs`` / ``lint_errors`` /
        ``lint_warnings``) and never raise — gating is the constructor's
        job."""
        from ..lint.interproc import build_plan  # lazy: import cycle

        plan = build_plan(self.entry)
        self.plan = plan
        self.helper_summaries = plan.helper_summaries
        self.method_summaries = plan.method_summaries
        if self.lint_mode == "strict":
            self.verified_helpers = plan.verified_helpers
        report = plan.report()
        self.stats.lint_runs += 1
        self.stats.lint_errors += len(report.errors)
        self.stats.lint_warnings += len(report.warnings)
        return report

    def audit(self, raise_on_failure: bool = True) -> "AuditReport":
        """Run the :class:`~repro.resilience.auditor.GraphAuditor` over the
        computation graph and return its report.  Unlike :meth:`validate`
        (assertion-based, test-oriented), the audit collects *every*
        violation, counts itself in :attr:`stats`, and is safe to run in
        production (``paranoia`` mode calls it automatically)."""
        from ..resilience.auditor import GraphAuditor

        start = self._phase_begin("audit")
        try:
            report = GraphAuditor(self).run()
        finally:
            self._phase_end("audit", start)
        self.stats.audits += 1
        if not report.ok:
            self.stats.audit_failures += 1
            if raise_on_failure:
                raise GraphAuditError(report)
        return report

    def instrumented_source(self, func: Optional[CheckFunction] = None) -> str:
        """The Figure 3 view: instrumented source of a check function."""
        fn = as_check(func) if func is not None else self.entry
        uid_map = {
            name: callee.uid for name, callee in fn.resolve_callees().items()
        }
        return instrumented_source(fn, uid_map)

    # Run orchestration (Figure 7's ``incrementalize``). ----------------------------

    def _run_derived(self, args: tuple) -> Any:
        """One run under the derived strategy: drain the write log, let the
        fold maintainers apply deltas (or rebuild), and evaluate the
        combiner.  The original check still computes every authoritative
        value, so exceptions and result types match scratch bit-for-bit."""
        self.stats.runs += 1
        if (
            self.recursion_limit is not None
            and sys.getrecursionlimit() < self.recursion_limit
        ):
            sys.setrecursionlimit(self.recursion_limit)
        start = self._phase_begin("barrier_drain")
        try:
            pending = self.tracking.write_log.consume(self._log_cid)
        finally:
            self._phase_end("barrier_drain", start)
        start = self._phase_begin("exec")
        try:
            return self.derived.run(args, pending)
        finally:
            self._phase_end("exec", start)

    def _run_resilient(self, args: tuple) -> Any:
        """Wrap one tracked run with the degradation ladder: cooldown
        service, fault fallback, and paranoia auditing/verification."""
        policy = self.degradation
        if self._cooldown_remaining > 0:
            # Degraded: answer from the uninstrumented check while the
            # cooldown window drains; the graph was discarded at fallback
            # time, so only the write-log cursor needs to stay current.
            self._cooldown_remaining -= 1
            self.stats.runs += 1
            self.stats.degraded_runs += 1
            self.tracking.write_log.consume(self._log_cid)
            start = self._phase_begin("degraded")
            try:
                return self.entry.original(*args)
            finally:
                self._phase_end("degraded", start)
        fallbacks_before = self.stats.scratch_fallbacks
        try:
            result = self._run_tracked(args)
        except StepLimitExceeded as exc:
            # §3.5 second remedy: discard and re-run from scratch (always
            # on, with or without a policy).
            return self._fallback("step_limit", args, exc)
        except CheckDeadlineExceeded:
            # Cooperative cancellation (soft deadline): transactionally
            # discard the partially-repaired graph and forward.  The caller
            # decides whether to retry (the next run rebuilds from
            # scratch), degrade, or reject — see :mod:`repro.serving`.
            self.invalidate()
            self.stats.deadline_aborts += 1
            raise
        except _NEVER_CAUGHT:
            self.invalidate()
            raise
        except _UNRECOVERABLE:
            # Deterministic usage errors are forwarded, not retried — but
            # one thrown mid-repair (e.g. a check body re-entering its own
            # engine) leaves the graph partially repaired: discard it so
            # the next run starts from a consistent state.
            self.invalidate()
            raise
        except BaseException as exc:
            if policy is None or not policy.fallback_on_exception:
                raise
            return self._fallback("repair_exception", args, exc)
        if self.paranoia:
            self._runs_since_audit += 1
            if self._runs_since_audit >= self.paranoia:
                self._runs_since_audit = 0
                result = self._paranoia_check(result, args)
        if self.stats.scratch_fallbacks == fallbacks_before:
            # A clean run (no fallback, including none from paranoia)
            # resets the consecutive-failure streak for backoff purposes.
            self._consecutive_fallbacks = 0
        return result

    def _fallback(self, reason: str, args: tuple, cause: BaseException) -> Any:
        """Transactionally discard the graph and produce a trustworthy
        answer: rebuild in place (cooldown disabled) or serve the
        uninstrumented check and back off to scratch mode for a while.
        Genuine check failures — the from-scratch path raising too — are
        forwarded to the main program, as the paper requires."""
        policy = self.degradation
        start = self._phase_begin("fallback")
        if self.tracing:
            self._sink.instant(
                "degradation", start, {"reason": reason, "cause": repr(cause)}
            )
        self.invalidate()
        self.in_incremental_run = False
        cooldown: float = 0
        if policy is not None:
            cooldown = policy.cooldown_for(self._consecutive_fallbacks + 1)
        rebuilt = False
        try:
            if cooldown > 0:
                # The graph would only go stale during the scratch window,
                # so don't bother rebuilding it; the run after the window
                # does.
                result = self.entry.original(*args)
            else:
                try:
                    result = self._incrementalize(args)
                    rebuilt = True
                except CheckDeadlineExceeded:
                    # The rebuild itself blew the soft deadline: count the
                    # abort and forward — converting it into yet another
                    # fallback would run uncancellable original code.
                    self.invalidate()
                    self.stats.deadline_aborts += 1
                    raise
                except _NEVER_CAUGHT:
                    self.invalidate()
                    raise
                except _UNRECOVERABLE:
                    self.invalidate()
                    raise
                except BaseException:
                    # Even the instrumented rebuild fails: distrust the
                    # whole machinery and fall back to the original check.
                    # If that raises as well the failure is genuine and
                    # propagates.
                    self.invalidate()
                    if policy is None or not policy.fallback_on_exception:
                        raise
                    result = self.entry.original(*args)
                    cooldown = policy.cooldown_for(
                        max(self._consecutive_fallbacks + 1, 2)
                    )
        finally:
            # Exception safety: even when the fallback itself raises (a
            # genuine check failure, or a deadline abort mid-rebuild), the
            # failure streak still lengthens, the cooldown still engages,
            # the phase timer closes, and the episode is recorded.
            # Otherwise a raising fallback would freeze the backoff state
            # and leak the open "fallback" phase into the next run.
            self._consecutive_fallbacks += 1
            self._cooldown_remaining = cooldown
            self._phase_end("fallback", start)
            self.stats.record_fallback(
                reason=reason,
                duration=time.perf_counter() - start,
                rebuilt=rebuilt,
                cooldown=int(cooldown) if cooldown != float("inf") else -1,
                detail=repr(cause),
            )
        return result

    def _paranoia_check(self, result: Any, args: tuple) -> Any:
        """Every N-th run: audit the graph's representation invariants and
        cross-check the incremental result against the uninstrumented
        check — the only detector for silently-stale graphs (e.g. a lost
        write barrier) and corrupted cached values."""
        policy = self.degradation
        report = self.audit(raise_on_failure=False)
        if not report.ok:
            if policy is not None and policy.fallback_on_audit_failure:
                return self._fallback(
                    "audit_failure", args, GraphAuditError(report)
                )
            raise GraphAuditError(report)
        self.stats.verify_checks += 1
        start = self._phase_begin("verify")
        try:
            expected = self.entry.original(*args)
        except _NEVER_CAUGHT:
            raise
        except BaseException:
            # The incremental run returned a value but the from-scratch
            # check raises: that too is a divergence.  Distrust the graph
            # and forward the genuine exception.
            self.invalidate()
            raise
        finally:
            self._phase_end("verify", start)
        if not _same_value(result, expected):
            self.stats.verify_mismatches += 1
            error = VerificationError(result, expected)
            if policy is not None and policy.fallback_on_verify_mismatch:
                return self._fallback("verify_mismatch", args, error)
            raise error
        return result

    def _run_tracked(self, args: tuple) -> Any:
        self.stats.runs += 1
        self.steps = 0
        if (
            self.recursion_limit is not None
            and sys.getrecursionlimit() < self.recursion_limit
        ):
            sys.setrecursionlimit(self.recursion_limit)
        try:
            return self._incrementalize(args)
        except DittoError:
            raise
        except BaseException:
            # A genuine failure escaped (invariant code crashed); drop the
            # graph so the next run rebuilds a consistent state.
            self.invalidate()
            raise

    def _incrementalize(self, args: tuple) -> Any:
        key = ArgsKey(args)
        start = self._phase_begin("barrier_drain")
        pending = self.tracking.write_log.consume(self._log_cid)
        dirty = self.table.map_locations_to_nodes(pending)
        self._phase_end("barrier_drain", start)
        if self.tracing:
            counters = self.tracking.barrier_counters()
            counters["pending"] = len(pending)
            counters["dirtied"] = len(dirty)
            self._sink.instant("barrier_drain", time.perf_counter(), counters)
        root = self.table.lookup(self.entry, key)
        first_run = self._root is None
        self.in_incremental_run = not first_run

        if first_run:
            self.stats.full_runs += 1
        else:
            self.stats.incremental_runs += 1

        start = self._phase_begin("dirty_mark")
        for node in dirty:
            node.dirty = True
        self.stats.dirty_marked += len(dirty)
        if self.recorder is not None:
            self.recorder.begin_run(self, pending, dirty, not first_run)
        if self.profiler is not None:
            self.profiler.begin_run(self, pending, dirty, not first_run)
        self._phase_end("dirty_mark", start)
        self._to_propagate.clear()
        self._failed.clear()

        try:
            start = self._phase_begin("exec")
            try:
                # Re-run the root first when its entry arguments are new
                # (Figure 7: "need to re-run root if arguments have
                # changed").
                if root is None:
                    try:
                        root = self._retarget_root(key)
                    except OptimisticMispredictionError:
                        root = self._root  # created; retried after propagation
                        assert root is not None
                else:
                    if root is not self._root:
                        # The entry arguments changed to an invocation that
                        # already exists in the graph (e.g. queue-style
                        # delete-first whose new head was memoized):
                        # re-anchor without re-executing.
                        self._reanchor(root)
                    if self.mode == "naive":
                        # Figure 6: one top-down replay from the root
                        # re-executes exactly the invocations whose inputs
                        # changed.
                        self._naive_value(root)
                if self.mode == "ditto":
                    # Re-execute dirty invocations closest to the root
                    # first; invocations that already fell out of the
                    # computation are pruned, not re-executed (Figure 7).
                    # Hot loop: bound references hoisted out of the
                    # per-node iteration.
                    contains = self.table.contains
                    prune = self._prune
                    exec_node = self._exec
                    stats = self.stats
                    root_node = self._root
                    for node in sorted(dirty, key=ComputationNode.sort_token):
                        if not (contains(node) and node.dirty):
                            continue
                        if node is not root_node and node.caller_count() == 0:
                            prune(node)
                            continue
                        stats.dirty_execs += 1
                        try:
                            exec_node(node)
                        except OptimisticMispredictionError:
                            pass  # recorded in self._failed; retried below
            finally:
                self._phase_end("exec", start)
            start = self._phase_begin("propagate")
            try:
                self._propagate()
            finally:
                self._phase_end("propagate", start)
            start = self._phase_begin("retry")
            try:
                self._retry_failed()
            finally:
                self._phase_end("retry", start)
        finally:
            self.in_incremental_run = False
        assert root.has_result
        return root.return_val

    def _retarget_root(self, key: ArgsKey) -> ComputationNode:
        """Create/execute the root node for a new entry-argument tuple and
        re-anchor; the previous root's subgraph is pruned if unreachable."""
        old_root = self._root
        node, created = self.table.get_or_create(self.entry, key)
        if created:
            self.stats.nodes_created += 1
            node.order_rec = self.order.insert_last()
        self.table.add_edge(self._anchor, node)
        self._root = node
        try:
            self._exec(node)
        finally:
            if old_root is not None and self.table.contains(old_root):
                self._anchor.calls.remove(old_root)
                self.table.remove_edge(self._anchor, old_root)
                if old_root.caller_count() == 0:
                    self._prune(old_root)
        return node

    def _reanchor(self, node: ComputationNode) -> None:
        """Move the artificial root anchor onto ``node`` (already memoized)
        and prune whatever part of the old root's graph becomes
        unreachable."""
        old_root = self._root
        self.table.add_edge(self._anchor, node)
        self._root = node
        if old_root is not None and self.table.contains(old_root):
            self._anchor.calls.remove(old_root)
            self.table.remove_edge(self._anchor, old_root)
            if old_root.caller_count() == 0:
                self._prune(old_root)

    # Node execution (Figure 7's ``exec``). -------------------------------------------

    def current_node(self) -> ComputationNode:
        return self._stack[-1]

    def _exec(self, node: ComputationNode) -> Any:
        """(Re-)execute ``node``'s invocation against the current program
        state, rebuilding its implicit arguments and call edges."""
        if node.in_progress:
            raise CyclicCheckError(node.func.name, node.explicit_args)
        old_calls = node.calls
        old_has = node.has_result
        old_val = node.return_val
        self.table.clear_implicits(node)
        node.calls = []
        node.in_progress = True
        self._stack.append(node)
        profiler = self.profiler
        if profiler is not None:
            profiler.node_begin(node)
        ok = False
        try:
            result = self._compiled[node.func.uid](*node.explicit_args)
            ok = True
        except StepLimitExceeded:
            raise
        except Exception as exc:
            # Roll back the partially-recorded call edges; the node keeps
            # its old value and stays scheduled for re-execution.  Fresh
            # nodes created by the aborted execution are pruned if nothing
            # else reaches them.
            partial_calls = node.calls
            for child in partial_calls:
                self.table.remove_edge(node, child)
            node.calls = old_calls
            for child in set(partial_calls):
                if (
                    self.table.contains(child)
                    and child.caller_count() == 0
                    and not child.in_progress
                ):
                    self._prune(child)
            if (
                self.mode == "ditto"
                and self.in_incremental_run
                and not self._final_retry
            ):
                # §3.5: presumably caused by a stale optimistic value.
                node.failed = True
                self._failed.add(node)
                self.stats.mispredictions += 1
                if self.tracing:
                    self._sink.instant(
                        "misprediction",
                        time.perf_counter(),
                        {"node": node.func.name, "error": repr(exc)},
                    )
                raise OptimisticMispredictionError(node, exc) from exc
            raise
        finally:
            node.in_progress = False
            self._stack.pop()
            if profiler is not None:
                profiler.node_finish(node, ok, self._current_phase or "exec")

        if not is_primitive(result):
            raise ResultTypeError(
                f"check {node.func.name!r} returned {type(result).__name__}; "
                f"checks must return immutable primitive values"
            )
        self._tick += 1
        node.last_exec_tick = self._tick
        node.dirty = False
        node.failed = False
        self._failed.discard(node)
        node.return_val = result
        node.has_result = True
        self.stats.execs += 1
        if not self.in_incremental_run:
            self.stats.initial_execs += 1
        if self.recorder is not None:
            self.recorder.executed(node, self._current_phase or "exec")
        if self.tracing:
            self._sink.instant(
                "node_exec",
                time.perf_counter(),
                {"node": node.func.name, "phase": self._current_phase},
            )

        # Drop the superseded call edges and prune unreachable callees.
        for child in old_calls:
            self.table.remove_edge(node, child)
        for child in set(old_calls):
            if (
                self.table.contains(child)
                and child.caller_count() == 0
            ):
                self._prune(child)

        if old_has and not _same_value(result, old_val):
            node.value_tick = self._tick
            self._to_propagate.add(node)

        # A pruning cascade may have tried to remove this node while it was
        # executing (rotation-style reshapes can make it a stale descendant
        # of a pruned region); the removal was deferred.  If nothing
        # reaches it now, complete the prune.
        if (
            node is not self._root
            and node.caller_count() == 0
            and self.table.contains(node)
        ):
            self._prune(node)
        return result

    def _prune(self, node: ComputationNode) -> None:
        # Prune time is accounted as its own phase but accumulates *inside*
        # the enclosing exec/propagate/retry span (cascades are triggered
        # mid-phase), so it deliberately leaves ``_current_phase`` alone.
        start = time.perf_counter()
        removed = self.table.prune(node)
        self.stats.nodes_pruned += len(removed)
        for n in removed:
            if n.order_rec is not None:
                self.order.delete(n.order_rec)
                n.order_rec = None
            self._to_propagate.discard(n)
            self._failed.discard(n)
        if self.recorder is not None and removed:
            self.recorder.pruned(removed)
        dur = time.perf_counter() - start
        times = self.last_phase_times
        times["prune"] = times.get("prune", 0.0) + dur
        self.stats.time_prune += dur
        if self.tracing:
            self._sink.span("prune", start, dur, {"removed": len(removed)})

    # Memoized call dispatch (Figures 6/7 ``memo``). ---------------------------------

    def memo_call(self, uid: int, args: tuple) -> Any:
        """Entry point for ``__ditto_rt__.call`` from instrumented code."""
        func = self.functions.get(uid)
        if func is None:
            raise UnknownCheckError(f"no check function with uid {uid}")
        if self.leaf_optimization and _is_leaf_call(args):
            # §4 "Optimizing leaf calls": run outright, attributing any
            # implicit reads to the caller; no memo entry is created.
            self.stats.leaf_execs += 1
            if self.tracing:
                self._sink.instant(
                    "leaf_exec", time.perf_counter(), {"func": func.name}
                )
            return self._compiled[uid](*args)
        caller = self._stack[-1]
        key = ArgsKey(args)
        table = self.table
        node, created = table.get_or_create(func, key)
        if created:
            self.stats.nodes_created += 1
            node.order_rec = self.order.insert_last()
        table.add_edge(caller, node)
        if node.dirty or not node.has_result:
            return self._exec(node)
        if self.mode == "naive":
            return self._naive_value(node)
        # Optimistic memoization: reuse without validating callee returns.
        self.stats.reuses += 1
        if self.tracing:
            self._sink.instant(
                "reuse", time.perf_counter(), {"node": node.func.name}
            )
        return node.return_val

    def _naive_value(self, node: ComputationNode) -> Any:
        """Figure 6's memo: reuse only after replaying every callee and
        confirming each returns its cached value."""
        if node.dirty or not node.has_result:
            return self._exec(node)
        for child in list(node.calls):
            old_return_val = child.return_val
            self.stats.replays += 1
            value = self._naive_value(child)
            if not _same_value(value, old_return_val):
                # A memo lookup failed somewhere in the child's call tree.
                return self._exec(node)
        self.stats.reuses += 1
        if self.tracing:
            self._sink.instant(
                "reuse", time.perf_counter(), {"node": node.func.name}
            )
        return node.return_val

    # Return-value propagation (Figure 7's ``propagate_return_vals``). -----------------

    def _propagate(self) -> None:
        while self._to_propagate:
            node = max(self._to_propagate, key=ComputationNode.sort_token)
            self._to_propagate.discard(node)
            if not self.table.contains(node):
                continue
            callers = [
                c
                for c in node.callers
                if c is not self._anchor and self.table.contains(c)
            ]
            callers.sort(key=ComputationNode.sort_token, reverse=True)
            for caller in callers:
                if caller.last_exec_tick > node.value_tick:
                    continue  # already re-executed after this change
                if not self.table.contains(caller):
                    continue
                self.stats.propagation_execs += 1
                try:
                    self._exec(caller)
                except OptimisticMispredictionError:
                    pass  # retried later

    def _retry_failed(self) -> None:
        """Re-execute nodes whose incremental re-execution raised (§3.5).
        After bounded rounds, a persisting exception is forwarded to the
        main program."""
        rounds = 0
        while self._failed and rounds < _MAX_RETRY_ROUNDS:
            rounds += 1
            batch = sorted(
                (n for n in self._failed if self.table.contains(n)),
                key=ComputationNode.sort_token,
                reverse=True,  # deepest first: settle callees before callers
            )
            self._failed.clear()
            for node in batch:
                if not (
                    self.table.contains(node) and (node.dirty or node.failed)
                ):
                    continue
                if node is not self._root and node.caller_count() == 0:
                    self._prune(node)
                    continue
                self.stats.retry_execs += 1
                try:
                    self._exec(node)
                except OptimisticMispredictionError:
                    pass
            self._propagate()
        if self._failed:
            self._final_retry = True
            try:
                batch = sorted(
                    (n for n in self._failed if self.table.contains(n)),
                    key=ComputationNode.sort_token,
                    reverse=True,
                )
                self._failed.clear()
                for node in batch:
                    if not (
                        self.table.contains(node)
                        and (node.dirty or node.failed)
                    ):
                        continue
                    if node is not self._root and node.caller_count() == 0:
                        self._prune(node)
                        continue
                    self.stats.retry_execs += 1
                    self._exec(node)  # exceptions escape to the caller
            finally:
                self._final_retry = False
            self._propagate()


def _same_value(a: Any, b: Any) -> bool:
    """Return-value comparison: semantic equality within the same type, so a
    change from ``True`` to ``1`` still propagates."""
    return type(a) is type(b) and a == b


def _is_leaf_call(args: tuple) -> bool:
    """Paper §4: a call is a leaf call if it has at least one reference
    argument and all its reference arguments are None."""
    has_ref = False
    for a in args:
        if a is None:
            has_ref = True
        elif not isinstance(a, _SCALARS):
            return False
    return has_ref
