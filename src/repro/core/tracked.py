"""Write-barrier substrate: tracked objects, tracked arrays, the write log.

The original DITTO injects write barriers into the *bytecode of the whole
program* and a reference-count header into every class used by invariant
checks (by re-parenting the class hierarchy onto ``IncObject``).  Python has
no ambient bytecode hook, so this reproduction asks data structures checked
by DITTO to derive from :class:`TrackedObject` (and to use
:class:`TrackedArray` / :class:`TrackedList` where Java code would use
arrays).  This is the same contract as the paper's ``IncObject`` rewriting:
every object type an invariant check reads carries the barrier and the
reference count; the rest of the program is untouched.

Both of the paper's Section 4 barrier optimizations are implemented:

1. **Monitored-field filter** — barriers only *log* writes to fields that
   some invariant check actually reads (collected by the static analysis at
   engine-construction time).  Writes to other fields cost one set lookup.
2. **Reference-count filter** — each tracked container carries a count of
   live implicit-argument entries (across all engines) that name one of its
   locations.  A write to a container with a zero count affects no
   computation node and is not logged.
3. **Per-location refinement** — the container count says *some* location
   of the container is read, not *which*.  Engine-managed implicit entries
   additionally bump a per-:class:`~repro.core.locations.Location` count on
   the interned location itself (``_ditto_incref_loc``), mirrored into the
   container's ``_ditto_locrefs``.  A store to a monitored field of a
   referenced container whose own location count is zero is provably
   unread and is skipped (counted in ``barrier_location_filtered``).  The
   filter is exact only while every container reference is
   location-attributed: code that bumps the coarse count directly
   (``_ditto_incref``) leaves ``_ditto_refcount != _ditto_locrefs`` and the
   barrier falls back to logging every monitored store, preserving the
   pre-refinement behaviour.  Coalesced range barriers always log — a
   range spans many point locations and is not interned.
   :func:`set_location_filter` disables the refinement for A/B
   measurements (``benchmarks/bench_barrier_overhead.py``).

Mutations that pass both filters append their :class:`~repro.core.locations.
Location` to the global :class:`WriteLog`.  Each engine keeps a cursor into
the log and consumes newly-logged locations at the start of its next run;
the log compacts itself once every registered engine has caught up.

Isolation domains
-----------------

Tracking state is *scoped*, not global: every :class:`TrackingState` is an
independent isolation domain with its own write log and monitored-field
set.  A process-default state (:func:`tracking_state`) preserves the
classic single-heap behaviour — engines constructed without an explicit
``tracking=`` argument all share it — while the multi-tenant serving layer
(:mod:`repro.serving`) gives every tenant a private state, so a barrier
fired under tenant A is physically unobservable by tenant B: it lands in a
different log, is deduplicated against different cursors, and is dropped
by a different fault hook.

Each tracked container is *adopted* by the state of the first engine whose
memo table takes a reference into it (``_ditto_state``); its barriers log
to that state from then on.  An engine bound to a different state that
tries to read an owned container raises
:class:`~repro.core.errors.TenantIsolationError` while the owner still
holds references — silent cross-wiring is never an outcome.  Ownership is
re-assignable once every reference is released (or the owning state is
retired by :func:`reset_tracking`), so structures migrate cleanly between
sequentially-used engines.

Hot-path layout
---------------

The barrier is the tax every mutation of the main program pays, so the
common cases are flattened:

* Each state snapshots its monitored-field set and its write log's bound
  ``append`` into the ``monitored`` / ``log_append`` attributes, refreshed
  whenever monitoring changes.  An unmonitored attribute store costs one
  refcount check, one owner-state load, and one frozenset probe; a write
  to an unreferenced container costs the refcount check alone (and is
  deliberately *not* counted — counting would tax the path the filter
  exists to keep free).
* Shift-heavy list mutations (``insert`` / ``pop`` not at the tail,
  ``fill``) log a single coalesced :class:`~repro.core.locations.
  RangeLocation` covering every shifted slot instead of one
  ``IndexLocation`` per slot; the memo table expands ranges against its
  reverse map at drain time.
* Mutators validate their index *before* logging: a mutation that raises
  (``pop`` from empty, out-of-range ``__setitem__``) leaves the write log
  untouched, and ``insert`` clamps exactly as ``list.insert`` does before
  computing which slots it logs.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from .locations import (
    FieldLocation,
    IndexLocation,
    LengthLocation,
    Location,
    RangeLocation,
)


class WriteLog:
    """Append-only log of mutated heap locations with per-consumer cursors.

    Consumers (engines) register and receive a consumer id; ``consume(cid)``
    returns every location logged since that consumer's previous call.  A
    location whose latest log position is still unread by *some* consumer is
    not appended again (write deduplication); the backing list is compacted
    whenever all consumers have caught up.
    """

    def __init__(self) -> None:
        self._entries: list[Location] = []
        self._cursors: dict[int, int] = {}
        self._next_cid = 0
        self._last_pos: dict[Location, int] = {}
        #: Lifetime count of barrier events offered to the log (after the
        #: refcount/monitored filters and the fault hook, before write
        #: deduplication).  One coalesced range counts as one event.
        self.logged = 0
        #: Lifetime count of slots covered by coalesced ``RangeLocation``
        #: entries — each such event would have cost this many per-slot
        #: appends under the uncoalesced barrier.
        self.coalesced = 0
        #: Test-only fault hook (see :mod:`repro.resilience.faults`): when
        #: set, every would-be append is offered to the hook first and is
        #: *dropped* if the hook returns True.  Simulates a lost write
        #: barrier — the failure mode paranoia verification exists to catch.
        self.fault_hook: "Any | None" = None

    def register(self) -> int:
        """Register a new consumer; it starts at the current end of the log
        (pre-existing writes predate the consumer's first run and are seen
        by that run from scratch anyway)."""
        cid = self._next_cid
        self._next_cid += 1
        self._cursors[cid] = len(self._entries)
        return cid

    def unregister(self, cid: int) -> None:
        self._cursors.pop(cid, None)
        self._compact()

    def append(self, location: Location) -> None:
        """Log a mutation of ``location`` unless its most recent occurrence
        is still unread by every consumer."""
        if not self._cursors:
            return
        if self.fault_hook is not None and self.fault_hook(location):
            return
        self.logged += 1
        if type(location) is RangeLocation:
            self.coalesced += location.stop - location.start
        last = self._last_pos.get(location)
        if last is not None and last >= max(self._cursors.values()):
            return
        self._last_pos[location] = len(self._entries)
        self._entries.append(location)

    def consume(self, cid: int) -> list[Location]:
        """Return locations logged since consumer ``cid`` last consumed."""
        start = self._cursors[cid]
        pending = self._entries[start:]
        self._cursors[cid] = len(self._entries)
        self._compact()
        return pending

    def peek(self, cid: int) -> list[Location]:
        """Locations logged since consumer ``cid`` last consumed, without
        advancing its cursor.  Diagnostics only (e.g. the pending-write dump
        emitted when a guarded block raises mid-mutation)."""
        return self._entries[self._cursors[cid]:]

    def _compact(self) -> None:
        if not self._cursors:
            low = len(self._entries)
        else:
            low = min(self._cursors.values())
        if low == len(self._entries) and self._entries:
            self._entries.clear()
            self._last_pos.clear()
            for cid in self._cursors:
                self._cursors[cid] = 0

    def __len__(self) -> int:
        return len(self._entries)


class TrackingState:
    """One write-barrier isolation domain.

    Holds a write log and the union of the monitored field names of the
    engines bound to it.  The process keeps one *default* state
    (:func:`tracking_state`) that engines use unless constructed with an
    explicit ``tracking=`` argument; the serving layer creates one state
    per tenant.  Tests call :func:`reset_tracking` to start the default
    domain from a clean slate.
    """

    def __init__(self) -> None:
        self.write_log = WriteLog()
        # field name -> number of engines monitoring it
        self._monitored_fields: dict[str, int] = {}
        #: Lifetime count of attribute writes to *referenced* containers
        #: that the monitored-field filter suppressed.  (Writes filtered by
        #: the refcount alone are uncounted — see the module docstring.)
        self.barrier_filtered = 0
        #: Lifetime count of monitored writes to *referenced* containers
        #: that the per-location refinement suppressed: the store passed
        #: both §4 filters but no live implicit argument names the exact
        #: location being written.
        self.barrier_location_filtered = 0
        #: Set by :func:`reset_tracking` on the state it replaces: engines
        #: bound to a retired state must not be used, and containers it
        #: still owns may be re-adopted by a live state.
        self.retired = False
        #: Profiling probe (:mod:`repro.obs.profiler`): when armed, every
        #: location that passes the barrier filters is offered to the probe
        #: *before* it reaches the write log, so the profiler can attribute
        #: the mutation to its call site.  ``None`` (the default) keeps
        #: ``log_append`` the raw bound ``WriteLog.append`` — a disarmed
        #: domain pays nothing.
        self.mutation_probe: "Any | None" = None
        #: Hot-path snapshots (module docstring): the current monitored
        #: field set and the bound ``append`` of this state's write log.
        self.monitored: frozenset[str] = frozenset()
        self.log_append = self.write_log.append

    def monitor_fields(self, fields: Iterable[str]) -> None:
        for f in fields:
            self._monitored_fields[f] = self._monitored_fields.get(f, 0) + 1
        self._refresh()

    def unmonitor_fields(self, fields: Iterable[str]) -> None:
        for f in fields:
            n = self._monitored_fields.get(f, 0) - 1
            if n <= 0:
                self._monitored_fields.pop(f, None)
            else:
                self._monitored_fields[f] = n
        self._refresh()

    def set_mutation_probe(self, probe: "Any | None") -> "Any | None":
        """Arm (or, with ``None``, disarm) the profiling mutation probe and
        return the previous one.

        While armed, every barrier append goes through a wrapper that calls
        ``probe(location)`` first — this is the single choke point all
        barrier paths (attribute stores, element stores, point and range
        logs) funnel through, so one probe observes every mutation of the
        domain.  The probe must be cheap and must not raise; it runs on the
        main program's mutation path.
        """
        previous = self.mutation_probe
        self.mutation_probe = probe
        self._refresh()
        return previous

    def _refresh(self) -> None:
        self.monitored = frozenset(self._monitored_fields)
        probe = self.mutation_probe
        raw_append = self.write_log.append
        if probe is None:
            self.log_append = raw_append
        else:
            def log_append(
                location: Location, _probe=probe, _append=raw_append
            ) -> None:
                _probe(location)
                _append(location)

            self.log_append = log_append

    def is_monitored(self, field: str) -> bool:
        return field in self._monitored_fields

    @property
    def monitored_fields(self) -> frozenset[str]:
        return frozenset(self._monitored_fields)

    def barrier_counters(self) -> dict[str, int]:
        """The barrier throughput counters, for the metrics bridge."""
        return {
            "barrier_logged": self.write_log.logged,
            "barrier_filtered": self.barrier_filtered,
            "barrier_coalesced": self.write_log.coalesced,
            "barrier_location_filtered": self.barrier_location_filtered,
        }


#: The process-default isolation domain (see :func:`tracking_state`).
_state = TrackingState()


#: Per-location refinement toggle (module docstring, optimization 3).
_location_filter = True


def set_location_filter(enabled: bool) -> bool:
    """Enable/disable the per-location barrier refinement.  Returns the
    previous setting.  Exists for A/B benchmarking and for reproducing the
    coarse (container-count only) §4 behaviour; leave it on in normal use.
    """
    global _location_filter
    previous = _location_filter
    _location_filter = bool(enabled)
    return previous


def location_filter_enabled() -> bool:
    """True when the per-location barrier refinement is active."""
    return _location_filter


def tracking_state() -> TrackingState:
    """Return the process-default :class:`TrackingState` (the domain used
    by engines constructed without an explicit ``tracking=``)."""
    return _state


def reset_tracking() -> None:
    """Discard the default tracking state (write log, monitored fields).

    Intended for test isolation; engines created before a reset must not be
    used afterwards.  The replaced state is marked ``retired`` so tracked
    containers it still owns can be re-adopted by the fresh state.  States
    created explicitly (per-tenant serving domains) are unaffected.
    """
    global _state
    _state.retired = True
    _state = TrackingState()


class TrackedObject:
    """Base class for heap objects read by DITTO invariant checks.

    Mirrors the paper's ``IncObject``: carries a reference-count header and
    a write barrier.  Assigning to an attribute of an instance whose
    reference count is positive *and* whose attribute name is read by some
    check logs the mutated :class:`FieldLocation` into the global write log.

    Attributes whose names start with ``_`` are never monitored, so internal
    bookkeeping writes are cheap and invisible to the engines.
    """

    _ditto_refcount = 0
    _ditto_locrefs = 0
    #: Owning isolation domain, set on adoption by the first memo table
    #: that takes a reference; ``None`` means the process-default state.
    _ditto_state: "TrackingState | None" = None

    def __setattr__(self, name: str, value: Any) -> None:
        if self._ditto_refcount > 0 and name[0] != "_":
            state = self._ditto_state
            if state is None:
                state = _state
            if name in state.monitored:
                location = self._ditto_location(name)
                if (
                    location.refcount > 0
                    or self._ditto_refcount != self._ditto_locrefs
                    or not _location_filter
                ):
                    state.log_append(location)
                else:
                    state.barrier_location_filtered += 1
            else:
                state.barrier_filtered += 1
        object.__setattr__(self, name, value)

    def _ditto_location(self, name: str) -> FieldLocation:
        """Interned :class:`FieldLocation` for ``self.<name>`` — one object
        per (container, field), shared by write barriers and implicit-read
        recording so the hot paths skip Location construction/hashing."""
        cache = self.__dict__.get("_ditto_loc_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_ditto_loc_cache", cache)
        location = cache.get(name)
        if location is None:
            location = FieldLocation(self, name)
            cache[name] = location
        return location

    # Reference-count maintenance (called by the memo table). ---------------

    def _ditto_incref(self) -> None:
        object.__setattr__(self, "_ditto_refcount", self._ditto_refcount + 1)

    def _ditto_decref(self) -> None:
        object.__setattr__(self, "_ditto_refcount", self._ditto_refcount - 1)

    def _ditto_incref_loc(self, location: Location) -> None:
        """Location-attributed incref: bump the coarse container count *and*
        the per-location count of the canonical (interned) location, keeping
        ``_ditto_locrefs`` in step so the barrier knows the counts are
        exact.  ``location`` need not be the interned instance — it is
        canonicalized (and adopted as canonical if the slot has none yet)
        through the location cache."""
        cache = self.__dict__.get("_ditto_loc_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_ditto_loc_cache", cache)
        location = cache.setdefault(location.coordinate, location)
        location.refcount += 1
        object.__setattr__(self, "_ditto_locrefs", self._ditto_locrefs + 1)
        object.__setattr__(self, "_ditto_refcount", self._ditto_refcount + 1)

    def _ditto_decref_loc(self, location: Location) -> None:
        cache = self.__dict__.get("_ditto_loc_cache")
        if cache is not None:
            location = cache.get(location.coordinate, location)
        location.refcount -= 1
        object.__setattr__(self, "_ditto_locrefs", self._ditto_locrefs - 1)
        object.__setattr__(self, "_ditto_refcount", self._ditto_refcount - 1)


class TrackedArray:
    """Fixed-length array with write barriers on element stores.

    The Python analog of a Java array used by a check (hash-table buckets,
    the Netcols grid, ``reserved_names``).  Reading is plain indexing; the
    instrumented check records :class:`IndexLocation` /
    :class:`LengthLocation` implicit arguments through the runtime.

    Instances are slotted: the barrier fast path touches exactly three
    attributes and never pays for a per-instance ``__dict__``.
    """

    __slots__ = ("_items", "_ditto_refcount", "_ditto_locrefs",
                 "_ditto_loc_cache", "_ditto_state")

    def __init__(self, initial: Iterable[Any] | int, fill: Any = None):
        if isinstance(initial, int):
            self._items: list[Any] = [fill] * initial
        else:
            self._items = list(initial)
        self._ditto_refcount = 0
        self._ditto_locrefs = 0
        self._ditto_loc_cache: dict[Any, Location] = {}
        self._ditto_state: "TrackingState | None" = None

    def __getitem__(self, index: int) -> Any:
        return self._items[index]

    def _ditto_location(self, index: "int | str") -> Location:
        """Interned :class:`IndexLocation` (or, for the key ``"<len>"``,
        :class:`LengthLocation`) — see ``TrackedObject._ditto_location``."""
        location = self._ditto_loc_cache.get(index)
        if location is None:
            if index == "<len>":
                location = LengthLocation(self)
            else:
                location = IndexLocation(self, index)
            self._ditto_loc_cache[index] = location
        return location

    def __setitem__(self, index: int, value: Any) -> None:
        items = self._items
        if self._ditto_refcount > 0:
            if index < 0:
                index += len(items)
            if not 0 <= index < len(items):
                raise IndexError("list assignment index out of range")
            location = self._ditto_location(index)
            state = self._ditto_state
            if state is None:
                state = _state
            if (
                location.refcount > 0
                or self._ditto_refcount != self._ditto_locrefs
                or not _location_filter
            ):
                state.log_append(location)
            else:
                state.barrier_location_filtered += 1
        items[index] = value

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __repr__(self) -> str:
        return f"TrackedArray({self._items!r})"

    def fill(self, value: Any) -> None:
        """Set every slot to ``value`` (bulk store, one coalesced range
        barrier for the whole array).  Ranges are never location-filtered —
        they are not interned and span many point counts."""
        items = self._items
        if self._ditto_refcount > 0 and items:
            self._ditto_log_range(RangeLocation(self, 0, len(items)))
        items[:] = [value] * len(items)

    def _ditto_log_point(self, location: Location) -> None:
        """Log a point mutation unless the per-location refinement proves
        no live implicit argument reads it (see the module docstring)."""
        state = self._ditto_state
        if state is None:
            state = _state
        if (
            location.refcount > 0
            or self._ditto_refcount != self._ditto_locrefs
            or not _location_filter
        ):
            state.log_append(location)
        else:
            state.barrier_location_filtered += 1

    def _ditto_log_range(self, location: Location) -> None:
        """Log a coalesced range barrier into the owning domain's log."""
        state = self._ditto_state
        if state is None:
            state = _state
        state.log_append(location)

    def _ditto_incref(self) -> None:
        self._ditto_refcount += 1

    def _ditto_decref(self) -> None:
        self._ditto_refcount -= 1

    def _ditto_incref_loc(self, location: Location) -> None:
        """See ``TrackedObject._ditto_incref_loc``."""
        location = self._ditto_loc_cache.setdefault(
            location.coordinate, location
        )
        location.refcount += 1
        self._ditto_locrefs += 1
        self._ditto_refcount += 1

    def _ditto_decref_loc(self, location: Location) -> None:
        location = self._ditto_loc_cache.get(location.coordinate, location)
        location.refcount -= 1
        self._ditto_locrefs -= 1
        self._ditto_refcount -= 1


class TrackedList(TrackedArray):
    """Growable tracked sequence.

    Structural operations (append/pop/insert/remove) log the length
    location plus the affected slots — a single interned point location
    when only one slot changes (append, tail pop), a coalesced
    :class:`RangeLocation` when slots shift.  Indexes are validated (and,
    for ``insert``, clamped — matching ``list.insert``) *before* anything
    is logged, so a raising mutator leaves the write log untouched.
    """

    __slots__ = ()

    def append(self, value: Any) -> None:
        items = self._items
        if self._ditto_refcount > 0:
            self._ditto_log_point(self._ditto_location("<len>"))
            self._ditto_log_point(self._ditto_location(len(items)))
        items.append(value)

    def pop(self, index: int = -1) -> Any:
        items = self._items
        n = len(items)
        if not n:
            raise IndexError("pop from empty list")
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("pop index out of range")
        if self._ditto_refcount > 0:
            self._ditto_log_point(self._ditto_location("<len>"))
            if index == n - 1:
                self._ditto_log_point(self._ditto_location(index))
            else:
                # Slots index..n-1 all shift down; slot n-1 disappears but
                # a reader of it (necessarily length-guarded pre-shrink)
                # still depends on the old coordinate, so the range covers
                # it too.
                self._ditto_log_range(RangeLocation(self, index, n))
        return items.pop(index)

    def insert(self, index: int, value: Any) -> None:
        items = self._items
        n = len(items)
        # Clamp exactly as list.insert does — *before* computing the slots
        # to log, so an out-of-range index can't silently log an empty run
        # while the underlying list still writes slot 0 or n.
        if index < 0:
            index += n
            if index < 0:
                index = 0
        elif index > n:
            index = n
        if self._ditto_refcount > 0:
            self._ditto_log_point(self._ditto_location("<len>"))
            if index == n:
                self._ditto_log_point(self._ditto_location(index))
            else:
                self._ditto_log_range(RangeLocation(self, index, n + 1))
        items.insert(index, value)

    def remove(self, value: Any) -> None:
        self.pop(self._items.index(value))

    def __repr__(self) -> str:
        return f"TrackedList({self._items!r})"


def is_tracked(obj: Any) -> bool:
    """True if ``obj`` participates in write-barrier tracking."""
    return isinstance(obj, (TrackedObject, TrackedArray))


def adopt_container(container: Any, state: TrackingState) -> None:
    """Bind ``container``'s barriers to the isolation domain ``state``.

    Called by the memo table before it takes its first reference into a
    container.  An unowned container (or one whose previous owner released
    every reference or was retired) is adopted; a container still owned by
    a *different* live domain raises
    :class:`~repro.core.errors.TenantIsolationError` — the cross-tenant
    sharing the serving layer must never silently permit.  Containers
    without the ``_ditto_state`` slot (custom duck-typed tracked types)
    keep logging to the default domain.
    """
    owner = getattr(container, "_ditto_state", None)
    if owner is state:
        return
    if (
        owner is None
        or owner.retired
        or getattr(container, "_ditto_refcount", 0) == 0
    ):
        try:
            container._ditto_state = state
        except AttributeError:
            pass
        return
    from .errors import TenantIsolationError

    raise TenantIsolationError(container, owner, state)
