"""The runtime object instrumented check code calls into.

Every engine owns one :class:`Runtime`, bound as ``__ditto_rt__`` in the
namespace of its compiled check functions (see
:mod:`repro.instrument.transform`).  The runtime:

* records implicit arguments — ``get_attr`` / ``get_item`` / ``get_len``
  attribute each heap read to the computation node currently executing
  (reads made by callees are attributed to the callee, matching
  Definition 1's "implicit arguments … not … locations read (only) by the
  callees");
* is the memoization entry point — ``call`` implements the mode-dependent
  ``memo`` functions of Figures 6 and 7, including the leaf-call
  optimization of §4;
* polices purity of non-check calls (``helper`` / ``method``), the runtime
  complement of the static whitelist, counting each dispatch in
  ``EngineStats.helper_calls`` for the observability layer;
* counts steps for the optional step-limit fallback (§3.5's second remedy
  for optimistic non-termination).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .errors import TrackingError
from .tracked import TrackedArray, TrackedObject
from ..instrument.transform import (
    IMMUTABLE_RECEIVERS,
    is_pure_helper,
    is_pure_method,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import DittoEngine


class Runtime:
    """Per-engine services for instrumented check code."""

    __slots__ = ("engine",)

    def __init__(self, engine: "DittoEngine"):
        self.engine = engine

    # Implicit-argument recording. ---------------------------------------------

    def _step(self) -> None:
        # The limit/hook cascade lives in DittoEngine._step_tail, shared
        # with the specialized tier's inlined step sequence; unlimited runs
        # pay one flag test here.
        engine = self.engine
        engine.steps += 1
        if engine._step_active:
            engine._step_tail()

    def get_attr(self, obj: Any, name: str) -> Any:
        self._step()
        engine = self.engine
        if isinstance(obj, TrackedObject):
            engine.stats.implicit_reads += 1
            engine.table.record_implicit(
                engine.current_node(), obj._ditto_location(name)
            )
            return getattr(obj, name)
        if obj is None or isinstance(obj, IMMUTABLE_RECEIVERS):
            # None raises AttributeError naturally (the Java NPE analog);
            # immutable values can be read freely.
            return getattr(obj, name)
        if engine.strict:
            raise TrackingError(
                f"check read attribute {name!r} of untracked mutable object "
                f"{type(obj).__name__}; derive it from TrackedObject"
            )
        return getattr(obj, name)

    def get_item(self, obj: Any, index: Any) -> Any:
        self._step()
        engine = self.engine
        if isinstance(obj, TrackedArray):
            engine.stats.implicit_reads += 1
            node = engine.current_node()
            table = engine.table
            if isinstance(index, int) and index < 0:
                # A negative read depends on the *length* too: growing the
                # list retargets obj[-1] without writing the old tail slot,
                # so without this dependency the node would go stale.
                table.record_implicit(node, obj._ditto_location("<len>"))
                index += len(obj)
                if index < 0:
                    # Still out of range after normalization: raise the
                    # natural IndexError without recording a phantom slot.
                    return obj[index]
            table.record_implicit(node, obj._ditto_location(index))
            return obj[index]
        if isinstance(obj, (str, bytes, tuple, frozenset, range)):
            return obj[index]
        if engine.strict:
            raise TrackingError(
                f"check indexed into untracked mutable container "
                f"{type(obj).__name__}; use TrackedArray/TrackedList"
            )
        return obj[index]

    def get_len(self, obj: Any) -> int:
        self._step()
        engine = self.engine
        if isinstance(obj, TrackedArray):
            engine.stats.implicit_reads += 1
            engine.table.record_implicit(
                engine.current_node(), obj._ditto_location("<len>")
            )
            return len(obj)
        if isinstance(obj, (str, bytes, tuple, frozenset, range)):
            return len(obj)
        if engine.strict:
            raise TrackingError(
                f"check took len() of untracked mutable container "
                f"{type(obj).__name__}; use TrackedArray/TrackedList"
            )
        return len(obj)

    # Calls. ---------------------------------------------------------------------

    def call(self, uid: int, *args: Any) -> Any:
        self._step()
        return self.engine.memo_call(uid, args)

    def helper(self, func: Any, *args: Any) -> Any:
        self._step()
        engine = self.engine
        engine.stats.helper_calls += 1
        if (
            engine.strict
            and not is_pure_helper(func)
            and func not in engine.verified_helpers
        ):
            raise TrackingError(
                f"check called unregistered helper "
                f"{getattr(func, '__name__', func)!r}; register it with "
                f"repro.register_pure_helper if it is pure"
            )
        summary = engine.helper_summaries.get(func)
        if summary is not None:
            self._attribute_helper_reads(summary, args)
        return func(*args)

    def _attribute_helper_reads(self, summary: Any, args: tuple) -> None:
        """Charge a lint-summarized helper's depth-1 heap reads to the
        calling node.

        The static analyzer (``repro.lint.purity``) proved the helper reads
        at most ``param.field`` / ``len(param)`` — shallower than the check
        itself may — so recording those locations here keeps Definition 1's
        implicit-argument set sound even though the helper body runs
        uninstrumented."""
        engine = self.engine
        node = engine.current_node()
        table = engine.table
        nargs = len(args)
        for index, fields in summary.arg_fields_read.items():
            if index < nargs and isinstance(args[index], TrackedObject):
                obj = args[index]
                for fld in fields:
                    engine.stats.implicit_reads += 1
                    table.record_implicit(node, obj._ditto_location(fld))
        for index in summary.arg_len_read:
            if index < nargs and isinstance(args[index], TrackedArray):
                engine.stats.implicit_reads += 1
                table.record_implicit(
                    node, args[index]._ditto_location("<len>")
                )

    def method(self, receiver: Any, name: str, *args: Any) -> Any:
        self._step()
        engine = self.engine
        engine.stats.helper_calls += 1
        if engine.strict and not is_pure_method(receiver, name):
            raise TrackingError(
                f"check called method {name!r} on "
                f"{type(receiver).__name__}; register it with "
                f"repro.register_pure_method if it is pure"
            )
        summary = self._method_summary(receiver, name)
        if summary is not None:
            # Attribute the method body's depth-1 heap reads to the calling
            # node, exactly as ``helper`` does: the body runs uninstrumented
            # but the lint summary proved it reads at most receiver/argument
            # fields and lengths (Definition 1 soundness for method calls).
            self._attribute_helper_reads(summary, (receiver,) + args)
        return getattr(receiver, name)(*args)

    def _method_summary(self, receiver: Any, name: str) -> Any:
        """The registered pure method's read summary, resolved along the
        receiver's MRO (mirrors ``is_pure_method`` resolution)."""
        summaries = self.engine.method_summaries
        if not summaries:
            return None
        for cls in type(receiver).__mro__:
            summary = summaries.get((cls, name))
            if summary is not None:
                return summary
        return None
