"""Execution statistics for a :class:`~repro.core.engine.DittoEngine`.

The counters make the incrementalizer's behaviour observable: tests assert,
for example, that inserting one element into a 1000-element ordered list
re-executes O(1) nodes, and the ablation benchmarks report how many node
executions each strategy performs.

Beyond the plain counters, the stats object is the resilience layer's
flight recorder: every graph-discarding fallback is appended to
``fallback_events`` as a :class:`FallbackEvent` (reason, run index,
recovery duration, whether the graph was rebuilt), and ``fallback_reasons``
aggregates the same events by reason string.

It is also the observability layer's accumulator: the engine adds the
wall-clock seconds of every run phase (barrier drain, dirty marking,
execution, return-value propagation, pruning, misprediction retry,
fallback recovery, audits, verification) to the ``time_*`` fields, so the
paper's overhead breakdown (Figures 11-13 measure *where* repair time
goes) can be reported without attaching a trace sink.

The contract between the counters and :meth:`EngineStats.snapshot` /
:meth:`EngineStats.delta` is a *declared* field set: ``COUNTER_FIELDS``
lists the per-run-subtractable integers, ``TIMER_FIELDS`` the wall-clock
accumulators, and ``LOG_FIELDS`` the cumulative logs.  Snapshots cover
exactly ``COUNTER_FIELDS`` — adding a field to the dataclass without
classifying it fails the test suite rather than silently changing what
``delta()`` returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

#: Run phases the engine times, in execution order.  ``barrier_drain``
#: through ``retry`` partition one incremental run; ``prune`` is nested
#: inside ``exec``/``propagate`` (it times the pruning cascades those
#: phases trigger); ``fallback`` wraps a whole recovery (including the
#: phases of the rebuild run it performs); ``audit``/``verify`` are the
#: paranoia-mode passes; ``degraded`` is a run served by the
#: uninstrumented check during a degradation cooldown.
PHASES = (
    "barrier_drain",
    "dirty_mark",
    "exec",
    "propagate",
    "prune",
    "retry",
    "fallback",
    "audit",
    "verify",
    "degraded",
)


@dataclass
class FallbackEvent:
    """One graceful-degradation episode: why the engine distrusted its
    graph, when, how long recovery took, and what it recovered to."""

    #: Why the graph was discarded: ``"step_limit"``, ``"repair_exception"``,
    #: ``"audit_failure"``, or ``"verify_mismatch"``.
    reason: str
    #: Value of ``stats.runs`` when the fallback fired (1-based).
    run_index: int
    #: Wall-clock seconds spent producing the replacement answer.
    duration: float
    #: True when the graph was rebuilt in place (incremental mode stays on);
    #: False when the engine answered from the uninstrumented check and
    #: entered a scratch-mode cooldown.
    rebuilt: bool
    #: Scratch-only runs scheduled before incremental mode is retried
    #: (-1 = permanent: the policy's ``give_up_after`` was exceeded).
    cooldown: int = 0
    #: ``repr()`` of the triggering exception or audit report.
    detail: str = ""


@dataclass
class EngineStats:
    """Counters accumulated over an engine's lifetime (see also
    :meth:`snapshot` / :meth:`delta` for per-run accounting)."""

    runs: int = 0
    full_runs: int = 0
    incremental_runs: int = 0
    #: Node (re-)executions, total and split by phase.
    execs: int = 0
    initial_execs: int = 0
    dirty_execs: int = 0
    propagation_execs: int = 0
    retry_execs: int = 0
    #: Memo-table reuse events (optimistic or validated).
    reuses: int = 0
    #: Naive-mode call replays (child return-value validations).
    replays: int = 0
    leaf_execs: int = 0
    nodes_created: int = 0
    nodes_pruned: int = 0
    dirty_marked: int = 0
    #: Re-executions that raised and were deferred to the retry phase.
    mispredictions: int = 0
    #: Graph-discarding fallbacks to a from-scratch run (all reasons).
    scratch_fallbacks: int = 0
    implicit_reads: int = 0
    #: Pure helper/method dispatches from instrumented code.
    helper_calls: int = 0
    #: Runs served by the uninstrumented check during a degradation cooldown.
    degraded_runs: int = 0
    #: Runs cancelled cooperatively by a step hook raising
    #: :class:`~repro.core.errors.CheckDeadlineExceeded` (soft deadlines).
    deadline_aborts: int = 0
    #: Graph audits performed (``engine.audit()`` / paranoia mode) and how
    #: many of them reported findings.
    audits: int = 0
    audit_failures: int = 0
    #: Paranoia cross-checks against the uninstrumented check, and how many
    #: caught a divergent incremental result.
    verify_checks: int = 0
    verify_mismatches: int = 0
    #: Whole-program lint passes (:meth:`DittoEngine.lint` plus the
    #: construction-time pass) and the findings they produced.
    lint_runs: int = 0
    lint_errors: int = 0
    lint_warnings: int = 0
    #: Derived-strategy accounting (:mod:`repro.derive`): total runs served
    #: by fold maintainers, runs repaired purely by O(1) deltas, full-fold
    #: rebuilds (bind, container rebinding, bulk mutations, exceptions),
    #: and transactional invalidations of the derived state.
    derived_runs: int = 0
    derived_hits: int = 0
    derived_full_folds: int = 0
    derived_invalidations: int = 0
    #: Per-phase wall-clock accumulators (seconds over the engine's
    #: lifetime); one per entry of :data:`PHASES`.
    time_barrier_drain: float = 0.0
    time_dirty_mark: float = 0.0
    time_exec: float = 0.0
    time_propagate: float = 0.0
    time_prune: float = 0.0
    time_retry: float = 0.0
    time_fallback: float = 0.0
    time_audit: float = 0.0
    time_verify: float = 0.0
    time_degraded: float = 0.0
    #: Per-reason fallback totals, e.g. ``{"step_limit": 2}``.
    fallback_reasons: dict[str, int] = field(default_factory=dict)
    #: Chronological log of degradation episodes.
    fallback_events: list[FallbackEvent] = field(default_factory=list)

    #: Cap on the ``fallback_events`` log; oldest entries are dropped first
    #: so a persistently-faulting engine cannot grow without bound.
    MAX_FALLBACK_EVENTS = 256

    #: The per-run-subtractable integer counters — exactly the keys of
    #: :meth:`snapshot` / :meth:`delta`.
    COUNTER_FIELDS: ClassVar[tuple[str, ...]] = (
        "runs",
        "full_runs",
        "incremental_runs",
        "execs",
        "initial_execs",
        "dirty_execs",
        "propagation_execs",
        "retry_execs",
        "reuses",
        "replays",
        "leaf_execs",
        "nodes_created",
        "nodes_pruned",
        "dirty_marked",
        "mispredictions",
        "scratch_fallbacks",
        "implicit_reads",
        "helper_calls",
        "degraded_runs",
        "deadline_aborts",
        "audits",
        "audit_failures",
        "verify_checks",
        "verify_mismatches",
        "lint_runs",
        "lint_errors",
        "lint_warnings",
        "derived_runs",
        "derived_hits",
        "derived_full_folds",
        "derived_invalidations",
    )

    #: The wall-clock accumulators (floats; excluded from snapshots — a
    #: per-run time breakdown comes from ``RunReport.phase_times``).
    TIMER_FIELDS: ClassVar[tuple[str, ...]] = tuple(
        "time_" + phase for phase in PHASES
    )

    #: Cumulative logs, excluded from snapshots.
    LOG_FIELDS: ClassVar[tuple[str, ...]] = (
        "fallback_reasons",
        "fallback_events",
    )

    def record_fallback(
        self,
        reason: str,
        duration: float,
        rebuilt: bool,
        cooldown: int = 0,
        detail: str = "",
    ) -> FallbackEvent:
        """Account one degradation episode (counter, reason totals, event
        log) and return the recorded event."""
        event = FallbackEvent(
            reason=reason,
            run_index=self.runs,
            duration=duration,
            rebuilt=rebuilt,
            cooldown=cooldown,
            detail=detail,
        )
        self.scratch_fallbacks += 1
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1
        self.fallback_events.append(event)
        if len(self.fallback_events) > self.MAX_FALLBACK_EVENTS:
            del self.fallback_events[: -self.MAX_FALLBACK_EVENTS]
        return event

    def snapshot(self) -> dict[str, int]:
        """The declared integer counters only (``COUNTER_FIELDS``) — timers
        and cumulative logs are excluded so :meth:`delta` stays a pure
        subtraction."""
        own = self.__dict__
        return {name: own[name] for name in self.COUNTER_FIELDS}

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Difference between the current counters and a snapshot."""
        own = self.__dict__
        return {
            name: own[name] - before.get(name, 0)
            for name in self.COUNTER_FIELDS
        }

    def timers(self) -> dict[str, float]:
        """The lifetime per-phase wall-clock accumulators, keyed by phase
        name (``{"exec": 0.12, ...}``)."""
        own = self.__dict__
        return {phase: own["time_" + phase] for phase in PHASES}


@dataclass
class RunReport:
    """Per-run summary returned by ``DittoEngine.run_with_report``."""

    result: object = None
    mode: str = ""
    incremental: bool = False
    delta: dict[str, int] = field(default_factory=dict)
    graph_size: int = 0
    #: Wall-clock seconds of the whole :meth:`DittoEngine.run` call.
    duration: float = 0.0
    #: Seconds per run phase, keyed by :data:`PHASES` names.  The keys are
    #: mode-consistent: a ``scratch``-mode (or degraded-cooldown) run
    #: reports the single phase that ran (``exec`` / ``degraded``), an
    #: incremental run reports the phases of Figure 7 it entered.
    phase_times: dict[str, float] = field(default_factory=dict)
