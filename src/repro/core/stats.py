"""Execution statistics for a :class:`~repro.core.engine.DittoEngine`.

The counters make the incrementalizer's behaviour observable: tests assert,
for example, that inserting one element into a 1000-element ordered list
re-executes O(1) nodes, and the ablation benchmarks report how many node
executions each strategy performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Counters accumulated over an engine's lifetime (see also
    :meth:`snapshot` / :meth:`delta` for per-run accounting)."""

    runs: int = 0
    full_runs: int = 0
    incremental_runs: int = 0
    #: Node (re-)executions, total and split by phase.
    execs: int = 0
    initial_execs: int = 0
    dirty_execs: int = 0
    propagation_execs: int = 0
    retry_execs: int = 0
    #: Memo-table reuse events (optimistic or validated).
    reuses: int = 0
    #: Naive-mode call replays (child return-value validations).
    replays: int = 0
    leaf_execs: int = 0
    nodes_created: int = 0
    nodes_pruned: int = 0
    dirty_marked: int = 0
    #: Re-executions that raised and were deferred to the retry phase.
    mispredictions: int = 0
    #: Step-limit fallbacks to a from-scratch run.
    scratch_fallbacks: int = 0
    implicit_reads: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Difference between the current counters and a snapshot."""
        return {k: v - before.get(k, 0) for k, v in self.__dict__.items()}


@dataclass
class RunReport:
    """Per-run summary returned by ``DittoEngine.run_with_report``."""

    result: object = None
    mode: str = ""
    incremental: bool = False
    delta: dict[str, int] = field(default_factory=dict)
    graph_size: int = 0
