"""Execution statistics for a :class:`~repro.core.engine.DittoEngine`.

The counters make the incrementalizer's behaviour observable: tests assert,
for example, that inserting one element into a 1000-element ordered list
re-executes O(1) nodes, and the ablation benchmarks report how many node
executions each strategy performs.

Beyond the plain counters, the stats object is the resilience layer's
flight recorder: every graph-discarding fallback is appended to
``fallback_events`` as a :class:`FallbackEvent` (reason, run index,
recovery duration, whether the graph was rebuilt), and ``fallback_reasons``
aggregates the same events by reason string.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FallbackEvent:
    """One graceful-degradation episode: why the engine distrusted its
    graph, when, how long recovery took, and what it recovered to."""

    #: Why the graph was discarded: ``"step_limit"``, ``"repair_exception"``,
    #: ``"audit_failure"``, or ``"verify_mismatch"``.
    reason: str
    #: Value of ``stats.runs`` when the fallback fired (1-based).
    run_index: int
    #: Wall-clock seconds spent producing the replacement answer.
    duration: float
    #: True when the graph was rebuilt in place (incremental mode stays on);
    #: False when the engine answered from the uninstrumented check and
    #: entered a scratch-mode cooldown.
    rebuilt: bool
    #: Scratch-only runs scheduled before incremental mode is retried
    #: (-1 = permanent: the policy's ``give_up_after`` was exceeded).
    cooldown: int = 0
    #: ``repr()`` of the triggering exception or audit report.
    detail: str = ""


@dataclass
class EngineStats:
    """Counters accumulated over an engine's lifetime (see also
    :meth:`snapshot` / :meth:`delta` for per-run accounting)."""

    runs: int = 0
    full_runs: int = 0
    incremental_runs: int = 0
    #: Node (re-)executions, total and split by phase.
    execs: int = 0
    initial_execs: int = 0
    dirty_execs: int = 0
    propagation_execs: int = 0
    retry_execs: int = 0
    #: Memo-table reuse events (optimistic or validated).
    reuses: int = 0
    #: Naive-mode call replays (child return-value validations).
    replays: int = 0
    leaf_execs: int = 0
    nodes_created: int = 0
    nodes_pruned: int = 0
    dirty_marked: int = 0
    #: Re-executions that raised and were deferred to the retry phase.
    mispredictions: int = 0
    #: Graph-discarding fallbacks to a from-scratch run (all reasons).
    scratch_fallbacks: int = 0
    implicit_reads: int = 0
    #: Runs served by the uninstrumented check during a degradation cooldown.
    degraded_runs: int = 0
    #: Graph audits performed (``engine.audit()`` / paranoia mode) and how
    #: many of them reported findings.
    audits: int = 0
    audit_failures: int = 0
    #: Paranoia cross-checks against the uninstrumented check, and how many
    #: caught a divergent incremental result.
    verify_checks: int = 0
    verify_mismatches: int = 0
    #: Per-reason fallback totals, e.g. ``{"step_limit": 2}``.
    fallback_reasons: dict[str, int] = field(default_factory=dict)
    #: Chronological log of degradation episodes.
    fallback_events: list[FallbackEvent] = field(default_factory=list)

    #: Cap on the ``fallback_events`` log; oldest entries are dropped first
    #: so a persistently-faulting engine cannot grow without bound.
    MAX_FALLBACK_EVENTS = 256

    def record_fallback(
        self,
        reason: str,
        duration: float,
        rebuilt: bool,
        cooldown: int = 0,
        detail: str = "",
    ) -> FallbackEvent:
        """Account one degradation episode (counter, reason totals, event
        log) and return the recorded event."""
        event = FallbackEvent(
            reason=reason,
            run_index=self.runs,
            duration=duration,
            rebuilt=rebuilt,
            cooldown=cooldown,
            detail=detail,
        )
        self.scratch_fallbacks += 1
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1
        self.fallback_events.append(event)
        if len(self.fallback_events) > self.MAX_FALLBACK_EVENTS:
            del self.fallback_events[: -self.MAX_FALLBACK_EVENTS]
        return event

    def snapshot(self) -> dict[str, int]:
        """The integer counters only — reasons/events are cumulative logs
        and are excluded so :meth:`delta` stays a pure subtraction."""
        return {k: v for k, v in self.__dict__.items() if isinstance(v, int)}

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Difference between the current counters and a snapshot."""
        return {
            k: v - before.get(k, 0)
            for k, v in self.__dict__.items()
            if isinstance(v, int)
        }


@dataclass
class RunReport:
    """Per-run summary returned by ``DittoEngine.run_with_report``."""

    result: object = None
    mode: str = ""
    incremental: bool = False
    delta: dict[str, int] = field(default_factory=dict)
    graph_size: int = 0
