"""Computation-graph nodes (the memo-table entries of paper §3.1).

A :class:`ComputationNode` is one row of the paper's table::

    f | explicit args | implicit args | calls | return val | dirty

plus the bookkeeping the full algorithm (Figure 7) needs:

* ``callers`` — reverse edges with multiplicities (``get_callers`` in the
  pseudo-code); a node with no callers is unreachable and gets pruned.
* ``depth`` — distance from the root, maintained as a minimum over caller
  depths; drives the breadth-first scheduling of dirty re-executions and
  the reverse-BFS ordering of return-value propagation.
* ``order_rec`` — a record in the engine's order-maintenance list
  (Bender et al.), stamping nodes in execution order to break depth ties
  deterministically.
* ``in_progress`` — cycle detection for re-entrant invocations.
* ``failed`` — set when an incremental re-execution raised, presumably from
  a stale optimistically-reused value (§3.5); such nodes are retried after
  return-value propagation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from .argkeys import ArgsKey
from .locations import Location
from .order_maintenance import Record

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..instrument.registry import CheckFunction


class ComputationNode:
    """One dynamic invocation ``f(explicit_args)`` of a check function."""

    # Slot order is tuned for the hot loops, hottest first: the memo probe
    # and propagate loop test ``dirty``/``has_result`` and read
    # ``return_val``/``depth``/``callers``/``calls`` on every visit, while
    # ``func``/``key``/ticks are touched once per (re)execution.  CPython
    # lays slots out in declaration order, so the early ones share the
    # object head's cache lines.
    __slots__ = (
        "dirty",
        "has_result",
        "return_val",
        "depth",
        "callers",
        "calls",
        "implicits",
        "in_progress",
        "failed",
        "order_rec",
        "func",
        "key",
        "last_exec_tick",
        "value_tick",
    )

    def __init__(self, func: "CheckFunction", key: ArgsKey):
        self.func = func
        self.key = key
        #: Heap locations read by this invocation's own frame.
        self.implicits: set[Location] = set()
        #: Child invocations, in call order (may repeat).
        self.calls: list[ComputationNode] = []
        #: Caller node -> number of call edges from it to this node.
        self.callers: dict[ComputationNode, int] = {}
        self.return_val: Any = None
        self.has_result = False
        self.dirty = False
        self.failed = False
        self.in_progress = False
        self.depth = 0
        self.order_rec: Optional[Record] = None
        #: Engine tick of the most recent (successful) execution, and of the
        #: most recent execution that changed the return value.  Used during
        #: return-value propagation to skip callers that already re-executed
        #: after the change.
        self.last_exec_tick = -1
        self.value_tick = -1

    @property
    def explicit_args(self) -> tuple:
        return self.key.args

    def caller_count(self) -> int:
        return sum(self.callers.values())

    def sort_token(self) -> tuple[int, int]:
        """Key for BFS scheduling: primary = depth, tie-break = execution
        order (order-maintenance label)."""
        label = self.order_rec.label if self.order_rec is not None else 0
        return (self.depth, label)

    def __repr__(self) -> str:
        status = []
        if self.dirty:
            status.append("dirty")
        if self.failed:
            status.append("failed")
        if self.in_progress:
            status.append("running")
        flags = f" [{','.join(status)}]" if status else ""
        val = f" -> {self.return_val!r}" if self.has_result else ""
        return f"<{self.func.name}{self.explicit_args!r}{val}{flags}>"
