"""Heap-location model.

DITTO's computation graph records, for every function invocation, the set of
heap locations the invocation's own frame read (its *implicit arguments*,
Definition 1).  Write barriers later report mutations of individual
locations, and a reverse map from locations to computation nodes identifies
the invocations that must be re-executed.

A location is a (container identity, coordinate) pair:

* ``FieldLocation`` — an object field, e.g. ``e.next``.
* ``IndexLocation`` — one slot of an array/list, e.g. ``buckets[i]``.
* ``LengthLocation`` — the length of an array/list (Java's
  ``buckets.length``); growing or shrinking a tracked list mutates it.
* ``RangeLocation`` — a half-open run of slots ``[start, stop)``, the
  write-side coalescing of shift-heavy mutations: one ``insert``/``pop``
  logs a single range instead of one ``IndexLocation`` per shifted slot.
  Ranges exist only in the write log; implicit arguments always name
  individual slots, and the memo table expands ranges against its reverse
  map at drain time.

Identity semantics: two locations are the same iff they name the same slot
of the *same* container object (``id()`` equality), matching the paper's
pointer-identity treatment of heap objects.  Locations hold a strong
reference to their container; they live only inside memo-table entries and
the transient write log, so this does not leak (entries are pruned when the
computation no longer reaches them).
"""

from __future__ import annotations

from typing import Any, Hashable


class Location:
    """Abstract heap location.  Hashable, with identity-based container
    equality.  Concrete subclasses define ``coordinate``.

    ``refcount`` is the per-location analog of the paper's §4 container
    reference count: the number of live implicit-argument entries, across
    all engines, naming exactly this location.  Point locations are
    interned per container (``_ditto_location``), so the write barrier can
    consult the count of the very instance the memo tables increment and
    skip logging stores no computation node reads (see
    :mod:`repro.core.tracked`).
    """

    __slots__ = ("container", "refcount", "_hash")

    def __init__(self, container: Any):
        self.container = container
        self.refcount = 0
        self._hash = hash((type(self).__name__, id(container), self._coord()))

    def _coord(self) -> Hashable:
        raise NotImplementedError

    @property
    def coordinate(self) -> Hashable:
        return self._coord()

    def read(self) -> Any:
        """Return the value currently stored at this location."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.container is other.container  # type: ignore[attr-defined]
            and self._coord() == other._coord()  # type: ignore[attr-defined]
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({type(self.container).__name__}"
            f"@{id(self.container):#x}, {self._coord()!r})"
        )


class FieldLocation(Location):
    """The field ``container.<field>`` of a tracked object."""

    __slots__ = ("field",)

    def __init__(self, container: Any, field: str):
        self.field = field
        super().__init__(container)

    def _coord(self) -> Hashable:
        return self.field

    def read(self) -> Any:
        return getattr(self.container, self.field)


class IndexLocation(Location):
    """The slot ``container[index]`` of a tracked array or list."""

    __slots__ = ("index",)

    def __init__(self, container: Any, index: int):
        self.index = index
        super().__init__(container)

    def _coord(self) -> Hashable:
        return self.index

    def read(self) -> Any:
        return self.container[self.index]


class LengthLocation(Location):
    """The length of a tracked array or list (``len(container)``)."""

    __slots__ = ()

    def _coord(self) -> Hashable:
        return "<len>"

    def read(self) -> Any:
        return len(self.container)


class RangeLocation(Location):
    """The slot run ``container[start:stop]`` (half-open), written as one
    coalesced barrier entry by shift-heavy bulk mutations.

    Unlike the point locations, ranges are *not* interned in the
    container's location cache — the set of (start, stop) pairs a workload
    produces is unbounded, and each range is consumed once at the next
    drain.  Structural equality/hashing still lets the write log
    deduplicate identical pending ranges.
    """

    __slots__ = ("start", "stop")

    def __init__(self, container: Any, start: int, stop: int):
        if start < 0 or stop < start:
            raise ValueError(f"invalid slot range [{start}, {stop})")
        self.start = start
        self.stop = stop
        super().__init__(container)

    def _coord(self) -> Hashable:
        return (self.start, self.stop)

    def __len__(self) -> int:
        return self.stop - self.start

    def covers(self, index: int) -> bool:
        """True if slot ``index`` falls inside this range."""
        return self.start <= index < self.stop

    def read(self) -> Any:
        """The current values of the covered slots (diagnostics only —
        drains never read through a range)."""
        return tuple(
            self.container[i]
            for i in range(self.start, min(self.stop, len(self.container)))
        )
