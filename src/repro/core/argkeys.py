"""Memo-table key semantics (paper §4, "Hashing of objects").

DITTO's memo table maps a function's explicit-argument list to the
computation node for that invocation.  Because DITTO is automatic, it cannot
ask the programmer for an equality notion, so it uses a conservative
all-purpose strategy:

* **semantic equality** for primitive values (numbers, booleans, strings,
  ``None`` — Python's immutable scalars), and
* **pointer identity** for everything else (heap objects), via ``id()``.

Pointer identity prevents two semantically-equal but distinct heap objects
from sharing a node (if only one were later mutated, the shared cached
result would be wrong for the other).  The hash combines
``id()``-based hashes for objects with value hashes for primitives,
mirroring ``System.identityHashCode`` / ``Object.hashCode`` in the paper.

Two float edge cases need sharper-than-``==`` keys, because ``==`` is
coarser than observable behaviour:

* ``0.0 == -0.0`` yet the two are distinguishable inside a check (via
  ``math.copysign``, ``str``, division); keying them together would let
  one invocation serve the other a stale cached result.  Floats are
  therefore keyed by *(type, value, sign bit)* when zero.
* ``nan != nan``, so a NaN-keyed entry could never be found again — every
  call would miss the memo and leak a fresh node into the table (and the
  unequal-to-itself key would break ``contains``/pruning of those
  entries).  NaN is keyed by *identity*: the same NaN object is the same
  invocation; distinct NaN objects are distinct heap-like values.  The
  key's strong reference to the argument keeps the ``id()`` stable.

The same normalization applies recursively inside primitive tuples,
``complex`` components, and frozenset elements.

``ArgsKey`` instances keep strong references to the argument objects, so an
``id()`` can never be recycled while a memo-table entry is alive.
"""

from __future__ import annotations

from math import copysign
from typing import Any

#: Types compared and hashed by value.  ``bool`` is a subclass of ``int``;
#: tuples of primitives also compare by value (they are immutable).
_PRIMITIVE_TYPES = (int, float, str, bytes, complex, frozenset, type(None))

#: Exact types whose Python ``==`` / ``hash`` already agree with the memo
#: semantics (no sign-of-zero or NaN pitfalls) — the ``_freeze`` fast path.
_ATOM_TYPES = frozenset((int, bool, str, bytes, type(None)))

#: Tag for identity-keyed (heap) parts; a unique sentinel so an identity
#: part can never collide with a ``(type, value, ...)`` part.
_ID_TAG = object()

#: Tag marking a NaN part (identity-keyed but type-preserving).
_NAN_TAG = "nan"


def is_primitive(value: Any) -> bool:
    """True if ``value`` is compared semantically in memo keys."""
    if isinstance(value, tuple):
        return all(is_primitive(v) for v in value)
    return isinstance(value, _PRIMITIVE_TYPES)


def _freeze_float(t: type, value: float) -> tuple:
    if value != value:  # NaN: identity semantics (see module docstring)
        return (t, _NAN_TAG, id(value))
    if value == 0.0:
        # +0.0 and -0.0 compare equal; the sign bit splits them.
        return (t, value, copysign(1.0, value))
    return (t, value)


def _freeze(value: Any) -> tuple:
    """Canonical, hashable token for one argument: plain tuple equality on
    tokens is exactly the memo-key equality (type-strict semantic equality
    for primitives with float edges resolved, identity for heap objects)."""
    t = value.__class__
    if t in _ATOM_TYPES:
        return (t, value)
    if t is float:
        return _freeze_float(t, value)
    if t is tuple:
        if is_primitive(value):
            return (t, tuple(_freeze(v) for v in value))
        return (_ID_TAG, id(value))
    if t is complex:
        return (t, _freeze_float(float, value.real),
                _freeze_float(float, value.imag))
    if t is frozenset:
        return (t, frozenset(_freeze(v) for v in value))
    # Subclasses of the primitive types keep semantic comparison but stay
    # type-strict (``t`` is the subclass); the float/complex/frozenset
    # normalizations apply to their subclasses too.
    if isinstance(value, tuple):
        if is_primitive(value):
            return (t, tuple(_freeze(v) for v in value))
        return (_ID_TAG, id(value))
    if isinstance(value, _PRIMITIVE_TYPES):
        if isinstance(value, float):
            return _freeze_float(t, value)
        if isinstance(value, complex):
            return (t, _freeze_float(float, value.real),
                    _freeze_float(float, value.imag))
        if isinstance(value, frozenset):
            return (t, frozenset(_freeze(v) for v in value))
        return (t, value)
    return (_ID_TAG, id(value))


class ArgsKey:
    """Hashable key wrapping one explicit-argument tuple."""

    __slots__ = ("args", "_parts", "_hash")

    def __init__(self, args: tuple):
        self.args = args
        self._parts = parts = tuple(map(_freeze, args))
        self._hash = hash(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArgsKey):
            return NotImplemented
        # Tokens carry the argument's type as their first element, so plain
        # tuple equality is type-strict (1, 1.0 and True never collapse)
        # and the float normalizations above are already baked in.
        return self._parts == other._parts

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"ArgsKey{self.args!r}"
