"""Memo-table key semantics (paper §4, "Hashing of objects").

DITTO's memo table maps a function's explicit-argument list to the
computation node for that invocation.  Because DITTO is automatic, it cannot
ask the programmer for an equality notion, so it uses a conservative
all-purpose strategy:

* **semantic equality** for primitive values (numbers, booleans, strings,
  ``None`` — Python's immutable scalars), and
* **pointer identity** for everything else (heap objects), via ``id()``.

Pointer identity prevents two semantically-equal but distinct heap objects
from sharing a node (if only one were later mutated, the shared cached
result would be wrong for the other).  The hash combines
``id()``-based hashes for objects with value hashes for primitives,
mirroring ``System.identityHashCode`` / ``Object.hashCode`` in the paper.

``ArgsKey`` instances keep strong references to the argument objects, so an
``id()`` can never be recycled while a memo-table entry is alive.
"""

from __future__ import annotations

from typing import Any

#: Types compared and hashed by value.  ``bool`` is a subclass of ``int``;
#: tuples of primitives also compare by value (they are immutable).
_PRIMITIVE_TYPES = (int, float, str, bytes, complex, frozenset, type(None))


def is_primitive(value: Any) -> bool:
    """True if ``value`` is compared semantically in memo keys."""
    if isinstance(value, tuple):
        return all(is_primitive(v) for v in value)
    return isinstance(value, _PRIMITIVE_TYPES)


class ArgsKey:
    """Hashable key wrapping one explicit-argument tuple."""

    __slots__ = ("args", "_parts", "_hash")

    def __init__(self, args: tuple):
        self.args = args
        parts = []
        for a in args:
            if is_primitive(a):
                parts.append((0, a))
            else:
                parts.append((1, id(a)))
        self._parts = tuple(parts)
        self._hash = hash(self._parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArgsKey):
            return NotImplemented
        if self._parts is other._parts:
            return True
        if len(self._parts) != len(other._parts):
            return False
        for (tag_a, val_a), (tag_b, val_b) in zip(self._parts, other._parts):
            if tag_a != tag_b:
                return False
            if tag_a == 0:
                # Semantic comparison; also require same type so that
                # 1 and 1.0 and True do not collapse into one invocation.
                if type(val_a) is not type(val_b) or val_a != val_b:
                    return False
            elif val_a != val_b:  # identity comparison via id()
                return False
        return True

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"ArgsKey{self.args!r}"
