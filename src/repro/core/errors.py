"""Error hierarchy for the DITTO reproduction.

All library-raised exceptions derive from :class:`DittoError` so callers can
catch everything DITTO-specific with one handler.  A few exceptions mirror
concepts named in the paper:

* :class:`CheckRestrictionError` — the static analysis of Section 3.5
  rejected a check (a loop conditional or a call depends on a callee return
  value, or the function is not side-effect-free).
* :class:`OptimisticMispredictionError` — internal signal used while
  re-executing a node whose inputs included a stale optimistic value
  (Section 3.5, "the incorrect return value causes f(x) to throw").
* :class:`StepLimitExceeded` — the alternative timeout remedy of
  Section 3.5: an optimistic re-execution ran far longer than expected and
  the engine falls back to a from-scratch run.
"""

from __future__ import annotations


class DittoError(Exception):
    """Base class for all errors raised by this library."""


class CheckRestrictionError(DittoError):
    """A check function violates the DITTO restrictions (Definition 2 / §3.5).

    Carries a list of human-readable violation messages, one per offending
    program point, so tooling can show all problems at once.
    """

    def __init__(self, function_name: str, violations: list[str]):
        self.function_name = function_name
        self.violations = list(violations)
        details = "\n  - ".join(self.violations)
        super().__init__(
            f"check function {function_name!r} violates DITTO restrictions:\n"
            f"  - {details}"
        )


class InstrumentationError(DittoError):
    """The source-to-source transformation could not instrument a check."""


class UnknownCheckError(DittoError):
    """A name was used as a check function but never registered with @check."""


class CyclicCheckError(DittoError):
    """A check invocation recursively re-entered itself with the same
    explicit arguments before producing a result.

    A side-effect-free check can only do this by traversing a cyclic heap
    shape (e.g. a corrupted, circular "linked list"); the uninstrumented
    check would simply never terminate.  DITTO detects the cycle and reports
    it as a structure bug instead of diverging.
    """

    def __init__(self, function_name: str, args: tuple):
        self.function_name = function_name
        self.args = args
        super().__init__(
            f"cyclic invocation of check {function_name!r} with arguments "
            f"{args!r}; the data structure most likely contains a cycle"
        )


class OptimisticMispredictionError(DittoError):
    """Internal: a node re-execution failed, presumably because it consumed a
    stale optimistically-reused callee value.  Never escapes the engine
    unless the failure persists after return-value propagation."""

    def __init__(self, node, cause: BaseException):
        self.node = node
        self.cause = cause
        super().__init__(f"re-execution of {node} failed: {cause!r}")


class StepLimitExceeded(DittoError):
    """Internal: an incremental run exceeded the configured step budget; the
    engine discards the computation graph and re-runs from scratch."""


class ResultTypeError(DittoError):
    """A check function returned a mutable (non-primitive) value.

    Functions that return new objects are not supported (paper §6: "such
    objects may be modified and thus are unsuitable for memoization").
    """


class TrackingError(DittoError):
    """A check read mutable state that is not under write-barrier tracking
    (strict mode only), so incremental results could silently go stale."""


class GraphAuditError(DittoError):
    """The computation graph failed a :class:`~repro.resilience.auditor.
    GraphAuditor` pass: some internal invariant (memo keys, reverse map,
    edge multiplicities, order records, reference counts) is violated.

    Carries the full :class:`~repro.resilience.auditor.AuditReport` as
    ``report`` so callers can inspect every finding.
    """

    def __init__(self, report):
        self.report = report
        findings = getattr(report, "findings", [])
        lines = "\n  - ".join(str(f) for f in findings) or "<no details>"
        super().__init__(
            f"computation-graph audit failed with {len(findings)} "
            f"finding(s):\n  - {lines}"
        )


class VerificationError(DittoError):
    """A paranoia cross-check found the incremental result differs from the
    from-scratch result — the graph silently went stale (e.g. a lost write
    barrier) or a cached value was corrupted."""

    def __init__(self, incremental: object, scratch: object):
        self.incremental = incremental
        self.scratch = scratch
        super().__init__(
            f"incremental result {incremental!r} disagrees with "
            f"from-scratch result {scratch!r}"
        )


class EngineStateError(DittoError):
    """The engine was used incorrectly (e.g. re-entrant run() call)."""


class EngineBusyError(EngineStateError):
    """``run()`` was called while a run is already executing on this engine
    — either re-entrantly (a check body calling back into its own engine,
    which would corrupt the memo graph mid-repair) or from a second thread
    without external serialization.  The serving layer's shard locks
    prevent this by construction; seeing it means a caller bypassed them.
    """


class CheckDeadlineExceeded(DittoError):
    """A cooperative step-budget hook cancelled the run: the check blew its
    soft deadline.  The engine discards the partially-repaired graph before
    forwarding this, so the caller may retry (the next run rebuilds from
    scratch), degrade, or reject — see :mod:`repro.serving`."""


class TenantIsolationError(DittoError):
    """A tracked container already owned by one :class:`~repro.core.tracked.
    TrackingState` was read by an engine bound to a *different* state.

    Sharing a structure across isolation domains would let one tenant's
    barrier traffic appear in another tenant's write log; the engine
    refuses rather than silently cross-wiring them.  (Engines sharing one
    state — the process-default state, or one tenant's engines — may share
    structures freely.)
    """

    def __init__(self, container: object, owner: object, state: object):
        self.container = container
        self.owner = owner
        self.state = state
        super().__init__(
            f"container {type(container).__name__} at {id(container):#x} is "
            f"owned by tracking state {id(owner):#x} but was read by an "
            f"engine bound to state {id(state):#x}; structures must not be "
            f"shared across isolation domains"
        )
