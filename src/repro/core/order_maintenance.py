"""Order-maintenance list (Bender, Cole, Demaine, Farach-Colton, Zito 2002).

The DITTO implementation keeps computation-graph nodes "ordered using the
order maintenance algorithm due to Bender, et al." instead of re-deriving a
BFS order on every run (paper §3.4).  This module implements the tag/
relabeling ("list-labeling") variant from that paper: every record carries
an integer label drawn from a universe of size 2**62; ``order(a, b)`` is a
label comparison; inserting into a saturated gap relabels the smallest
enclosing aligned tag range whose density is below a geometrically-falling
threshold, giving O(log n) amortized insertions.

The engine stamps each computation node with a record at creation time
(immediately after its parent / previous sibling), yielding a total order
consistent with the execution order of the check, and uses it to break ties
when scheduling dirty-node re-execution and return-value propagation.
"""

from __future__ import annotations

from typing import Iterator, Optional

#: Labels live in the open interval (0, _UNIVERSE); sentinels take the ends.
_UNIVERSE = 1 << 62
#: Density threshold base 1 < T < 2; range at level ``i`` (size ``2**i``)
#: may be relabeled when its record count is below ``2**i / T**i``.
_T = 1.5
#: Stride for the append fast path.  Bisecting between the last record and
#: the tail sentinel halves the remaining gap on every append, forcing a
#: relabel about every 60 inserts in the append-heavy graph-build phase; a
#: fixed stride leaves ~2**42 appends before the universe end is reached
#: (where the bisect/relabel slow path takes over and re-compacts labels).
_APPEND_GAP = 1 << 20


class Record:
    """One element of an :class:`OrderList`.  Treat as opaque."""

    __slots__ = ("label", "prev", "next", "owner")

    def __init__(self, label: int, owner: "OrderList | None"):
        self.label = label
        self.prev: Optional[Record] = None
        self.next: Optional[Record] = None
        self.owner = owner

    @property
    def alive(self) -> bool:
        return self.owner is not None

    def __repr__(self) -> str:
        return f"Record(label={self.label})"


class OrderList:
    """A total order supporting O(1) queries and amortized O(log n) inserts.

    ``insert_after(rec)`` / ``insert_before(rec)`` create a new record
    adjacent to ``rec``; ``order(a, b)`` returns True iff ``a`` precedes
    ``b``; ``delete(rec)`` removes a record.  The two sentinel endpoints are
    internal and never exposed.
    """

    def __init__(self) -> None:
        self._head = Record(0, None)
        self._tail = Record(_UNIVERSE, None)
        self._head.next = self._tail
        self._tail.prev = self._head
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Record]:
        rec = self._head.next
        while rec is not self._tail:
            assert rec is not None
            yield rec
            rec = rec.next

    def insert_first(self) -> Record:
        """Insert a record before everything else."""
        return self.insert_after(self._head)

    def insert_last(self) -> Record:
        """Insert a record after everything else."""
        assert self._tail.prev is not None
        return self.insert_after(self._tail.prev)

    def insert_after(self, rec: Record) -> Record:
        """Insert and return a fresh record immediately after ``rec``."""
        if rec is not self._head and rec.owner is not self:
            raise ValueError("record does not belong to this OrderList")
        nxt = rec.next
        assert nxt is not None
        if nxt is self._tail and rec.label + _APPEND_GAP < _UNIVERSE:
            label = rec.label + _APPEND_GAP
        else:
            if nxt.label - rec.label < 2:
                self._rebalance(rec if rec is not self._head else nxt)
                nxt = rec.next
                assert nxt is not None
            label = (rec.label + nxt.label) // 2
        new = Record(label, self)
        new.prev, new.next = rec, nxt
        rec.next = new
        nxt.prev = new
        self._size += 1
        return new

    def insert_before(self, rec: Record) -> Record:
        if rec.owner is not self:
            raise ValueError("record does not belong to this OrderList")
        assert rec.prev is not None
        return self.insert_after(rec.prev)

    def delete(self, rec: Record) -> None:
        """Remove ``rec`` from the order.  Idempotent."""
        if rec.owner is not self:
            return
        assert rec.prev is not None and rec.next is not None
        rec.prev.next = rec.next
        rec.next.prev = rec.prev
        rec.owner = None
        rec.prev = rec.next = None
        self._size -= 1

    def order(self, a: Record, b: Record) -> bool:
        """True iff ``a`` precedes ``b`` in the list."""
        if a.owner is not self or b.owner is not self:
            raise ValueError("record does not belong to this OrderList")
        return a.label < b.label

    def audit(self) -> list[str]:
        """Structural self-check: walk the list and report every linkage or
        labeling violation as a human-readable string (empty list = sound).

        Used by the resilience layer's :class:`~repro.resilience.auditor.
        GraphAuditor`; kept here because only the list knows its own
        representation invariants (sentinel labels, bidirectional linkage,
        strictly increasing labels, size accounting)."""
        problems: list[str] = []
        if self._head.label != 0:
            problems.append(f"head sentinel label {self._head.label} != 0")
        if self._tail.label != _UNIVERSE:
            problems.append("tail sentinel label moved")
        count = 0
        rec = self._head
        while rec is not self._tail:
            nxt = rec.next
            if nxt is None:
                problems.append(f"forward chain broken after {rec!r}")
                break
            if nxt.prev is not rec:
                problems.append(
                    f"asymmetric linkage: {rec!r}.next.prev is not {rec!r}"
                )
            if nxt.label <= rec.label:
                problems.append(
                    f"labels not strictly increasing: {rec.label} -> "
                    f"{nxt.label}"
                )
            if nxt is not self._tail:
                count += 1
                if nxt.owner is not self:
                    problems.append(f"{nxt!r} in chain but owned elsewhere")
                if count > self._size:
                    problems.append(
                        f"chain longer than recorded size {self._size}"
                    )
                    break
            rec = nxt
        if not problems and count != self._size:
            problems.append(
                f"recorded size {self._size} but walked {count} records"
            )
        return problems

    # Internal: Bender-style range relabeling. ------------------------------

    def _rebalance(self, rec: Record) -> None:
        """Relabel the smallest enclosing aligned tag range around ``rec``
        whose density is below the level threshold."""
        pivot_label = rec.label
        lo = hi = rec
        count = 1
        level = 0
        threshold = 1.0
        while level < 62:
            level += 1
            threshold /= _T
            size = 1 << level
            min_label = pivot_label & ~(size - 1)
            max_label = min_label + size - 1
            while (
                lo.prev is not None
                and lo.prev is not self._head
                and lo.prev.label >= min_label
            ):
                lo = lo.prev
                count += 1
            while (
                hi.next is not None
                and hi.next is not self._tail
                and hi.next.label <= max_label
            ):
                hi = hi.next
                count += 1
            if max_label >= _UNIVERSE:
                break
            # Accept the range only if it is sparse enough *and* even
            # spreading leaves a gap of at least 2, so the pending insert
            # finds a free midpoint label.
            if count / size < threshold and size // (count + 1) >= 2:
                self._relabel_range(lo, count, min_label, size)
                return
        # Fall back to relabeling the whole list across the universe.
        self._relabel_range(
            self._head.next, self._size, 0, _UNIVERSE  # type: ignore[arg-type]
        )

    def _relabel_range(
        self, first: Record, count: int, min_label: int, size: int
    ) -> None:
        """Evenly spread ``count`` records starting at ``first`` over the
        half-open tag range ``[min_label, min_label + size)``, keeping all
        labels strictly positive (the head sentinel owns label 0)."""
        gap = size // (count + 1)
        assert gap >= 1, "tag range too dense to relabel"
        label = min_label
        node: Optional[Record] = first
        for _ in range(count):
            assert node is not None
            label += gap
            node.label = label
            node = node.next
