"""Fault injection: prove detection and recovery instead of assuming them.

The resilience tests need to *cause* the failure modes the engine claims
to survive.  :class:`FaultPlan` describes a deterministic set of faults
and :func:`inject_faults` arms them against one engine inside a ``with``
block:

* **Dropped write barriers** — the global write log silently discards the
  next ``drop_writes`` monitored mutations (or every mutation matching
  ``drop_filter``).  The graph then goes stale without ever being marked
  dirty: the exact corruption paranoia verification exists to catch.
* **Corrupted cached returns** — ``corrupt_returns`` memoized return
  values (deepest nodes first, never the anchor) are rewritten in place
  with ``corrupt_value``; optimistic reuse will serve them verbatim.
* **Exceptions mid-repair** — the engine's compiled check functions are
  wrapped so that, during *incremental* runs only, invocations numbered
  in ``raise_on_calls`` (1-based, counted across the block) raise
  :class:`InjectedFault` instead of executing.  Because the raise happens
  inside ``_exec``'s compiled call, it exercises the §3.5 misprediction
  machinery first and the degradation layer only on persistent failure.

All faults are reverted on block exit; the injector reports what actually
fired via its counters so tests can assert the fault happened at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..core.node import ComputationNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import DittoEngine
    from ..core.locations import Location


class InjectedFault(RuntimeError):
    """Raised by an armed fault plan inside the repair machinery.

    Deliberately *not* a :class:`~repro.core.errors.DittoError`: it models
    an arbitrary crash inside the incremental machinery, which the engine
    must treat as untrusted rather than understood.
    """


def _default_corruption(value: Any) -> Any:
    """Flip/perturb a primitive so it stays a primitive but compares
    unequal (type-preserving where possible, so the corruption survives
    the engine's ``_same_value`` type check)."""
    if value is True or value is False:
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, str):
        return value + "☠"
    return -1


@dataclass
class FaultPlan:
    """A deterministic set of faults to arm with :func:`inject_faults`."""

    #: Drop the next N monitored write-barrier log entries (0 = none,
    #: combine with ``drop_filter`` to drop selectively).
    drop_writes: int = 0
    #: Optional predicate ``Location -> bool``; only matching writes count
    #: against (and are dropped by) the ``drop_writes`` budget.
    drop_filter: Optional[Callable[["Location"], bool]] = None
    #: Corrupt up to N cached return values at arming time.
    corrupt_returns: int = 0
    #: How to corrupt a cached value (defaults to a type-preserving flip).
    corrupt_value: Callable[[Any], Any] = _default_corruption
    #: 1-based indices of incremental check invocations that raise
    #: :class:`InjectedFault`; e.g. ``{1, 2, 3}`` makes the first three
    #: re-executions fail (enough to exhaust misprediction retries).
    raise_on_calls: frozenset[int] = frozenset()
    #: Exception factory for the raise faults.
    raise_exception: Callable[[int], BaseException] = field(
        default=lambda n: InjectedFault(f"injected fault on call #{n}")
    )

    @classmethod
    def persistent_exceptions(cls, upto: int = 64) -> "FaultPlan":
        """Every incremental invocation up to ``upto`` raises — enough to
        exhaust the §3.5 retries and force the degradation layer."""
        return cls(raise_on_calls=frozenset(range(1, upto + 1)))


class FaultInjector:
    """Armed faults for one engine; also the record of what fired."""

    def __init__(self, engine: "DittoEngine", plan: FaultPlan):
        self.engine = engine
        self.plan = plan
        #: Write-barrier entries actually dropped.
        self.writes_dropped = 0
        #: Nodes whose cached return value was corrupted.
        self.returns_corrupted = 0
        #: Injected exceptions actually raised.
        self.faults_raised = 0
        self._incremental_calls = 0
        self._armed = False
        self._saved_compiled: dict[int, Any] = {}

    # Arming / disarming. ----------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        plan = self.plan
        if plan.drop_writes > 0:
            # Arm on the target engine's own isolation domain: a fault
            # plan for one tenant must be invisible to every other
            # tenant's write log (the chaos harness relies on this).
            log = self.engine.tracking.write_log
            if log.fault_hook is not None:
                raise RuntimeError("another fault hook is already armed")
            log.fault_hook = self._maybe_drop
        if plan.corrupt_returns > 0:
            self._corrupt_cached_returns()
        if plan.raise_on_calls:
            self._saved_compiled = dict(self.engine._compiled)
            for uid, compiled in self._saved_compiled.items():
                self.engine._compiled[uid] = self._wrap_compiled(compiled)
        self._armed = True
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if not self._armed:
            return
        self._armed = False
        if self.plan.drop_writes > 0:
            self.engine.tracking.write_log.fault_hook = None
        if self._saved_compiled:
            self.engine._compiled.update(self._saved_compiled)
            self._saved_compiled = {}

    # Fault implementations. -------------------------------------------------

    def _maybe_drop(self, location: "Location") -> bool:
        if self.writes_dropped >= self.plan.drop_writes:
            return False
        if self.plan.drop_filter is not None and not self.plan.drop_filter(
            location
        ):
            return False
        self.writes_dropped += 1
        return True

    def _corrupt_cached_returns(self) -> None:
        # Deepest nodes first: their values were optimistically reused the
        # most, so the corruption exercises the widest reuse surface.
        victims = sorted(
            (n for n in self.engine.table if n.has_result),
            key=ComputationNode.sort_token,
            reverse=True,
        )
        for node in victims[: self.plan.corrupt_returns]:
            node.return_val = self.plan.corrupt_value(node.return_val)
            self.returns_corrupted += 1

    def _wrap_compiled(self, compiled: Any) -> Any:
        def faulty(*args: Any) -> Any:
            if self._armed and self.engine.in_incremental_run:
                self._incremental_calls += 1
                if self._incremental_calls in self.plan.raise_on_calls:
                    self.faults_raised += 1
                    raise self.plan.raise_exception(self._incremental_calls)
            return compiled(*args)

        return faulty


def inject_faults(engine: "DittoEngine", plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` against ``engine``; use as a context manager::

        with inject_faults(engine, FaultPlan(drop_writes=5)) as injector:
            mutate(structure)          # barriers silently lost
            engine.run(head)           # paranoia catches the stale graph
        assert injector.writes_dropped == 5
    """
    return FaultInjector(engine, plan)
