"""Computation-graph self-auditing.

DITTO's value proposition is trust: the incremental answer must be the
answer a from-scratch run would produce.  That guarantee rests on a set of
representation invariants connecting the memo table, the reverse
location→node map, the call-edge multiset, the order-maintenance list,
and the §4 reference counts.  :class:`GraphAuditor` re-derives each of
those invariants from first principles and reports every violation as an
:class:`AuditFinding` instead of asserting, so a production engine can
degrade gracefully (see :mod:`repro.resilience.degradation`) rather than
die mid-request.

Rules audited (names appear in findings and in ``AuditReport.rules_run``):

``table-keys``
    Every memo-table row ``(uid, key) -> node`` stores a node whose
    ``(func.uid, key)`` identity matches the row's key — a mismatch means
    lookups can return the wrong invocation's cached value.
``reverse-map``
    The location→nodes map and each node's recorded implicit reads are
    mirror images (both inclusions), and no pruned node lingers in either.
``edges``
    ``calls`` lists and ``callers`` multiplicity maps agree edge-for-edge,
    every endpoint is a live table node, and every non-root node is
    reachable (has at least one caller).
``node-state``
    Between runs no node is dirty, failed, in-progress, or missing its
    result — a quiescent graph is fully repaired.
``order``
    The order-maintenance list is structurally sound (see
    :meth:`repro.core.order_maintenance.OrderList.audit`), every node owns
    an alive record in it, and the list holds exactly one record per node.
``scheduling``
    For every call edge, the caller (re-)executed *after* the callee's
    return value last changed — the post-condition return-value
    propagation exists to establish.  A violation means some caller is
    holding a stale view of a callee.
``refcounts``
    Each tracked container's §4 reference count covers this engine's
    implicit-argument entries naming it (counts are global across engines,
    so the audit checks a lower bound; an *under*-count means write
    barriers are being skipped for locations the graph depends on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..core.errors import GraphAuditError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import DittoEngine


@dataclass(frozen=True)
class AuditFinding:
    """One violated invariant: the rule that failed and what was seen."""

    rule: str
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.message}"


@dataclass
class AuditReport:
    """Outcome of one :class:`GraphAuditor` pass."""

    findings: list[AuditFinding] = field(default_factory=list)
    rules_run: list[str] = field(default_factory=list)
    nodes_audited: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self, rule: str) -> list[AuditFinding]:
        return [f for f in self.findings if f.rule == rule]

    def raise_if_failed(self) -> None:
        if self.findings:
            raise GraphAuditError(self)

    def __str__(self) -> str:
        if self.ok:
            return (
                f"audit ok: {self.nodes_audited} nodes, "
                f"rules {', '.join(self.rules_run)}"
            )
        lines = "\n  - ".join(str(f) for f in self.findings)
        return f"audit FAILED ({len(self.findings)} findings):\n  - {lines}"


class GraphAuditor:
    """Validates one engine's computation graph; collects, never raises.

    Prefer :meth:`DittoEngine.audit` (which counts the audit in the
    engine's stats and can raise on failure); instantiate directly only
    when you want the raw report machinery.
    """

    #: Findings per rule are capped so a badly corrupted graph produces a
    #: readable report instead of one line per node.
    MAX_FINDINGS_PER_RULE = 20

    def __init__(self, engine: "DittoEngine"):
        self.engine = engine

    def run(self) -> AuditReport:
        report = AuditReport()
        report.nodes_audited = len(self.engine.table)
        for rule, check in (
            ("table-keys", self._audit_table_keys),
            ("reverse-map", self._audit_reverse_map),
            ("edges", self._audit_edges),
            ("node-state", self._audit_node_state),
            ("order", self._audit_order),
            ("scheduling", self._audit_scheduling),
            ("refcounts", self._audit_refcounts),
        ):
            report.rules_run.append(rule)
            count = 0
            for message in check():
                count += 1
                if count > self.MAX_FINDINGS_PER_RULE:
                    message = "... further findings truncated"
                report.findings.append(AuditFinding(rule, message))
                if count > self.MAX_FINDINGS_PER_RULE:
                    break
        return report

    # Individual rules; each yields human-readable violation messages. -------

    def _audit_table_keys(self) -> Iterator[str]:
        for (uid, key), node in self.engine.table.entries():
            if node.func.uid != uid:
                yield (
                    f"row keyed uid={uid} stores node of "
                    f"{node.func.name!r} (uid={node.func.uid})"
                )
            if node.key != key:
                yield (
                    f"row keyed {key.args!r} stores node with explicit "
                    f"args {node.explicit_args!r}"
                )

    def _audit_reverse_map(self) -> Iterator[str]:
        table = self.engine.table
        for location, dependents in table.reverse_items():
            for node in dependents:
                if not table.contains(node):
                    yield f"reverse map {location} lists pruned node {node}"
                elif location not in node.implicits:
                    yield (
                        f"reverse map lists {location} -> {node} but the "
                        f"node does not record that implicit read"
                    )
        for node in table:
            for location in node.implicits:
                if node not in table.nodes_reading(location):
                    yield f"reverse map missing {location} -> {node}"

    def _audit_edges(self) -> Iterator[str]:
        table = self.engine.table
        anchor = self.engine._anchor
        root = self.engine._root
        if root is not None:
            if not table.contains(root):
                yield f"root {root} is not in the memo table"
            if root.callers.get(anchor, 0) != 1:
                yield "root is not anchored exactly once"
            if anchor.calls.count(root) != 1:
                yield "anchor call edge out of sync with root's callers"
        edge_counts: dict[tuple[int, int], int] = {}
        for node in table:
            for callee in node.calls:
                if not table.contains(callee):
                    yield f"{node} calls pruned node {callee}"
                pair = (id(node), id(callee))
                edge_counts[pair] = edge_counts.get(pair, 0) + 1
        for node in table:
            for caller, count in node.callers.items():
                if caller is anchor:
                    continue
                if not table.contains(caller):
                    yield f"{node} has pruned caller {caller}"
                    continue
                recorded = edge_counts.get((id(caller), id(node)), 0)
                if recorded != count:
                    yield (
                        f"edge {caller} -> {node}: callers map says "
                        f"{count}, calls lists say {recorded}"
                    )
            if node is not root and node.caller_count() == 0:
                yield f"{node} is unreachable (no callers) yet not pruned"

    def _audit_node_state(self) -> Iterator[str]:
        for node in self.engine.table:
            if node.dirty:
                yield f"{node} left dirty after the run"
            if node.failed:
                yield f"{node} left in failed state after the run"
            if node.in_progress:
                yield f"{node} left marked in-progress"
            if not node.has_result:
                yield f"{node} has no cached result"

    def _audit_order(self) -> Iterator[str]:
        order = self.engine.order
        yield from order.audit()
        records = 0
        for node in self.engine.table:
            rec = node.order_rec
            if rec is None:
                yield f"{node} has no order-maintenance record"
                continue
            records += 1
            if rec.owner is not order:
                yield (
                    f"{node}'s order record is dead or belongs to "
                    f"another list"
                )
        if records == len(self.engine.table) and len(order) != records:
            yield (
                f"order list holds {len(order)} records for "
                f"{records} graph nodes"
            )

    def _audit_scheduling(self) -> Iterator[str]:
        anchor = self.engine._anchor
        for node in self.engine.table:
            for caller in node.callers:
                if caller is anchor:
                    continue
                if caller.last_exec_tick <= node.value_tick:
                    yield (
                        f"{caller} last executed at tick "
                        f"{caller.last_exec_tick} but callee {node}'s value "
                        f"changed at tick {node.value_tick}; the caller is "
                        f"reading a stale return value"
                    )

    def _audit_refcounts(self) -> Iterator[str]:
        expected: dict[int, int] = {}
        containers: dict[int, object] = {}
        for node in self.engine.table:
            for location in node.implicits:
                container = location.container
                key = id(container)
                containers[key] = container
                expected[key] = expected.get(key, 0) + 1
        for key, minimum in expected.items():
            container = containers[key]
            actual = getattr(container, "_ditto_refcount", None)
            if actual is None:
                continue  # not a refcounted container
            if actual < minimum:
                yield (
                    f"{type(container).__name__} refcount {actual} is below "
                    f"this engine's {minimum} implicit reference(s); write "
                    f"barriers may be skipped for live locations"
                )
