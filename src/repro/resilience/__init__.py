"""Resilience layer: graph self-auditing, fault injection, degradation.

Three cooperating pieces keep a production engine trustworthy:

* :class:`GraphAuditor` (``engine.audit()`` / the engine's ``paranoia``
  mode) re-derives the computation graph's representation invariants and
  reports violations instead of serving answers from a corrupt graph;
* :class:`FaultPlan` / :func:`inject_faults` deliberately break the
  machinery — dropped write barriers, corrupted cached returns, exceptions
  mid-repair — so tests *prove* detection and recovery;
* :class:`DegradationPolicy` tells the engine how to recover when trust is
  lost: transactionally discard the graph, answer from scratch, record the
  episode in :class:`~repro.core.stats.EngineStats`, and optionally back
  off to scratch mode for a cooldown before retrying incremental;
* :class:`CircuitBreaker` / :class:`KeyedBreakers` generalize the same
  failure-streak/backoff idea across *callers*: the serving layer
  (:mod:`repro.serving`) keeps one breaker per tenant so a persistently
  failing check is shed — with an explicit ``breaker_open`` answer and a
  half-open recovery probe — instead of burning pool capacity.
"""

from .auditor import AuditFinding, AuditReport, GraphAuditor
from .degradation import (
    BreakerOpenError,
    BreakerPolicy,
    CircuitBreaker,
    DegradationPolicy,
    KeyedBreakers,
)
from .faults import FaultInjector, FaultPlan, InjectedFault, inject_faults

__all__ = [
    "AuditFinding",
    "AuditReport",
    "BreakerOpenError",
    "BreakerPolicy",
    "CircuitBreaker",
    "DegradationPolicy",
    "FaultInjector",
    "FaultPlan",
    "GraphAuditor",
    "InjectedFault",
    "KeyedBreakers",
    "inject_faults",
]
