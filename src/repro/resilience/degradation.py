"""Graceful degradation: when to distrust the graph and how to come back.

A wrong-but-fast incremental checker is worse than no checker, so the
engine pairs every trust-losing event (step-limit blowup, exception
escaping the repair machinery, audit failure, paranoia verify mismatch)
with a *transactional* recovery: discard the computation graph, produce
the answer a from-scratch run would produce, and record the episode in
:class:`~repro.core.stats.EngineStats`.

The :class:`DegradationPolicy` configures that recovery:

* which event classes trigger it (exceptions can be opted out, in which
  case they are forwarded to the main program exactly as before);
* whether to *rebuild* the graph immediately (``cooldown_runs == 0``,
  incremental mode stays on) or to serve scratch answers for a cooldown
  window first, with exponential backoff on consecutive failures — the
  right choice when the fault is environmental and likely to recur.

A policy object is pure configuration and may be shared between engines;
all mutable state (cooldown counters, consecutive-failure count) lives on
the engine.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DegradationPolicy:
    """Configuration for :class:`~repro.core.engine.DittoEngine` recovery.

    With all defaults, a policy-carrying engine recovers from every
    detectable fault class by rebuilding its graph in place and never
    leaves incremental mode.  Set ``cooldown_runs`` to also back off to
    scratch mode after a fallback.
    """

    #: Recover from unexpected exceptions escaping incremental repair
    #: (after §3.5 misprediction retries are exhausted).  When False such
    #: exceptions are forwarded to the main program, as without a policy.
    fallback_on_exception: bool = True
    #: Recover when a paranoia-mode graph audit reports findings.
    fallback_on_audit_failure: bool = True
    #: Recover when a paranoia-mode cross-check against the uninstrumented
    #: check disagrees with the incremental result.
    fallback_on_verify_mismatch: bool = True
    #: Number of runs served by the uninstrumented check after a fallback
    #: before incremental mode is retried.  0 = rebuild immediately.
    cooldown_runs: int = 0
    #: Cooldown multiplier applied per *consecutive* fallback (a clean
    #: incremental run resets the streak).
    backoff_factor: float = 2.0
    #: Upper bound on any single cooldown window.
    max_cooldown_runs: int = 256
    #: After this many consecutive fallbacks the engine stays in scratch
    #: mode permanently (None = always retry incremental eventually).
    give_up_after: int | None = None

    def __post_init__(self) -> None:
        if self.cooldown_runs < 0:
            raise ValueError("cooldown_runs must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.max_cooldown_runs < 1:
            raise ValueError("max_cooldown_runs must be >= 1")
        if self.give_up_after is not None and self.give_up_after < 1:
            raise ValueError("give_up_after must be >= 1 or None")

    def cooldown_for(self, consecutive_fallbacks: int) -> float:
        """Length of the scratch-mode window after the N-th consecutive
        fallback; ``inf`` once ``give_up_after`` is exceeded."""
        if (
            self.give_up_after is not None
            and consecutive_fallbacks >= self.give_up_after
        ):
            return float("inf")
        if self.cooldown_runs == 0:
            return 0
        window = self.cooldown_runs * (
            self.backoff_factor ** max(0, consecutive_fallbacks - 1)
        )
        return min(window, float(self.max_cooldown_runs))
