"""Graceful degradation: when to distrust the graph and how to come back.

A wrong-but-fast incremental checker is worse than no checker, so the
engine pairs every trust-losing event (step-limit blowup, exception
escaping the repair machinery, audit failure, paranoia verify mismatch)
with a *transactional* recovery: discard the computation graph, produce
the answer a from-scratch run would produce, and record the episode in
:class:`~repro.core.stats.EngineStats`.

The :class:`DegradationPolicy` configures that recovery:

* which event classes trigger it (exceptions can be opted out, in which
  case they are forwarded to the main program exactly as before);
* whether to *rebuild* the graph immediately (``cooldown_runs == 0``,
  incremental mode stays on) or to serve scratch answers for a cooldown
  window first, with exponential backoff on consecutive failures — the
  right choice when the fault is environmental and likely to recur.

A policy object is pure configuration and may be shared between engines;
all mutable state (cooldown counters, consecutive-failure count) lives on
the engine.

The second half of this module generalizes the same trip/back-off/retry
shape into a *keyed circuit breaker* for the serving layer
(:mod:`repro.serving`): where a :class:`DegradationPolicy` degrades one
engine's *answers*, a :class:`CircuitBreaker` stops *admitting calls* to a
persistently-failing tenant altogether, probing it again (half-open) after
an exponentially-backed-off recovery window.  Breaker state is shared by
every worker thread of the pool, so unlike the engine-resident counters it
is lock-protected and exception-safe: a probe that raises — or is torn
down by ``KeyboardInterrupt`` — always restores the breaker to a
consistent state instead of leaking its half-open slot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional

from ..core.errors import DittoError


@dataclass(frozen=True)
class DegradationPolicy:
    """Configuration for :class:`~repro.core.engine.DittoEngine` recovery.

    With all defaults, a policy-carrying engine recovers from every
    detectable fault class by rebuilding its graph in place and never
    leaves incremental mode.  Set ``cooldown_runs`` to also back off to
    scratch mode after a fallback.
    """

    #: Recover from unexpected exceptions escaping incremental repair
    #: (after §3.5 misprediction retries are exhausted).  When False such
    #: exceptions are forwarded to the main program, as without a policy.
    fallback_on_exception: bool = True
    #: Recover when a paranoia-mode graph audit reports findings.
    fallback_on_audit_failure: bool = True
    #: Recover when a paranoia-mode cross-check against the uninstrumented
    #: check disagrees with the incremental result.
    fallback_on_verify_mismatch: bool = True
    #: Number of runs served by the uninstrumented check after a fallback
    #: before incremental mode is retried.  0 = rebuild immediately.
    cooldown_runs: int = 0
    #: Cooldown multiplier applied per *consecutive* fallback (a clean
    #: incremental run resets the streak).
    backoff_factor: float = 2.0
    #: Upper bound on any single cooldown window.
    max_cooldown_runs: int = 256
    #: After this many consecutive fallbacks the engine stays in scratch
    #: mode permanently (None = always retry incremental eventually).
    give_up_after: int | None = None

    def __post_init__(self) -> None:
        if self.cooldown_runs < 0:
            raise ValueError("cooldown_runs must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.max_cooldown_runs < 1:
            raise ValueError("max_cooldown_runs must be >= 1")
        if self.give_up_after is not None and self.give_up_after < 1:
            raise ValueError("give_up_after must be >= 1 or None")

    def cooldown_for(self, consecutive_fallbacks: int) -> float:
        """Length of the scratch-mode window after the N-th consecutive
        fallback; ``inf`` once ``give_up_after`` is exceeded."""
        if (
            self.give_up_after is not None
            and consecutive_fallbacks >= self.give_up_after
        ):
            return float("inf")
        if self.cooldown_runs == 0:
            return 0
        window = self.cooldown_runs * (
            self.backoff_factor ** max(0, consecutive_fallbacks - 1)
        )
        return min(window, float(self.max_cooldown_runs))


# Keyed circuit breakers (serving layer). ------------------------------------

#: Control-flow exceptions that must pass through the breaker untouched:
#: they are neither successes nor service failures, so the probe slot is
#: released without moving the failure streak.
_NEVER_COUNTED = (KeyboardInterrupt, SystemExit, GeneratorExit)


class BreakerOpenError(DittoError):
    """A call was rejected because the target's circuit breaker is open.

    ``retry_after`` is the number of seconds until the breaker will next
    admit a half-open probe (0 when a probe is already admissible)."""

    def __init__(self, key: object, retry_after: float):
        self.key = key
        self.retry_after = retry_after
        super().__init__(
            f"circuit breaker for {key!r} is open; next probe admitted in "
            f"{retry_after:.3f}s"
        )


@dataclass(frozen=True)
class BreakerPolicy:
    """Pure configuration for a :class:`CircuitBreaker` (shareable across
    breakers exactly as :class:`DegradationPolicy` is across engines)."""

    #: Consecutive failures that trip the breaker open.
    failure_threshold: int = 5
    #: Seconds the breaker stays open before admitting a half-open probe.
    recovery_time: float = 30.0
    #: Recovery-window multiplier per consecutive re-trip (a successful
    #: close resets the streak).
    backoff_factor: float = 2.0
    #: Upper bound on any single recovery window.
    max_recovery_time: float = 300.0
    #: Consecutive half-open probe successes required to close again.
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_time <= 0:
            raise ValueError("recovery_time must be > 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.max_recovery_time < self.recovery_time:
            raise ValueError("max_recovery_time must be >= recovery_time")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")

    def recovery_for(self, trips: int) -> float:
        """Length of the open window after the N-th consecutive trip."""
        window = self.recovery_time * (
            self.backoff_factor ** max(0, trips - 1)
        )
        return min(window, self.max_recovery_time)


class CircuitBreaker:
    """One closed → open → half-open circuit breaker.

    Thread-safe: every transition happens under an internal lock, so any
    number of pool workers may share one instance.  The clock is
    injectable so tests (and the chaos harness) can drive recovery windows
    deterministically without sleeping.

    Two usage styles, freely mixable:

    * ``call(fn, *args)`` — gate, execute, and record in one step with
      exception safety built in;
    * ``allow()`` + ``record_success()`` / ``record_failure()`` /
      ``release()`` — manual gating for callers (like
      :class:`~repro.serving.pool.EnginePool`) that must classify the
      outcome themselves.  Every ``allow() == True`` **must** be paired
      with exactly one of the three recorders, even when the guarded call
      raises; otherwise a half-open probe slot leaks and the breaker can
      wedge half-open forever.
    """

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trip_streak = 0  # consecutive trips without a clean close
        self._probes_in_flight = 0
        self._probe_successes = 0
        #: Lifetime counters (monotonic; surfaced by pool stats).
        self.trips = 0
        self.rejections = 0

    # Introspection. ---------------------------------------------------------

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (open flips to
        half-open lazily, at the next :meth:`allow` after the window)."""
        with self._lock:
            return self._state

    def retry_after(self) -> float:
        """Seconds until a probe becomes admissible (0 when one already is)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            window = self.policy.recovery_for(self._trip_streak)
            return max(0.0, self._opened_at + window - self._clock())

    # Gating. ----------------------------------------------------------------

    def allow(self) -> bool:
        """Admit one call; False means the caller must shed it.  May
        transition open → half-open when the recovery window has elapsed."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                window = self.policy.recovery_for(self._trip_streak)
                if self._clock() - self._opened_at < window:
                    self.rejections += 1
                    return False
                self._state = "half_open"
                self._probes_in_flight = 0
                self._probe_successes = 0
            # Half-open: admit at most the configured number of probes.
            if self._probes_in_flight >= self.policy.half_open_probes:
                self.rejections += 1
                return False
            self._probes_in_flight += 1
            return True

    # Outcome recording. -----------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            if self._state == "half_open":
                self._probes_in_flight -= 1
                self._probe_successes += 1
                if self._probe_successes >= self.policy.half_open_probes:
                    self._state = "closed"
                    self._trip_streak = 0
                    self._consecutive_failures = 0
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == "half_open":
                # A failed probe re-opens immediately with a longer window.
                self._probes_in_flight -= 1
                self._trip(self._clock())
                return
            self._consecutive_failures += 1
            if (
                self._state == "closed"
                and self._consecutive_failures
                >= self.policy.failure_threshold
            ):
                self._trip(self._clock())

    def release(self) -> None:
        """Withdraw an admitted call without recording an outcome (the
        guarded call never ran, or was torn down by control flow).  This is
        the exception-safety escape hatch: state is restored exactly as if
        :meth:`allow` had never been called."""
        with self._lock:
            if self._state == "half_open" and self._probes_in_flight > 0:
                self._probes_in_flight -= 1

    def _trip(self, now: float) -> None:
        # Lock held by caller.
        self._state = "open"
        self._opened_at = now
        self._trip_streak += 1
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.trips += 1

    # One-step wrapper. ------------------------------------------------------

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Gate ``fn`` behind the breaker: raise :class:`BreakerOpenError`
        when open, otherwise execute and record the outcome.  Exceptions
        from ``fn`` count as failures and propagate; interpreter control
        flow (``KeyboardInterrupt`` &c.) releases the slot uncounted."""
        if not self.allow():
            raise BreakerOpenError("<breaker>", self.retry_after())
        try:
            result = fn(*args, **kwargs)
        except _NEVER_COUNTED:
            self.release()
            raise
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result


class KeyedBreakers:
    """A family of :class:`CircuitBreaker` instances, one per key (the
    serving layer keys them by tenant).  Creation is on-demand and
    thread-safe; all breakers share one policy and clock."""

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[object, CircuitBreaker] = {}

    def get(self, key: object) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(self.policy, self._clock)
                self._breakers[key] = breaker
            return breaker

    def remove(self, key: object) -> None:
        with self._lock:
            self._breakers.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._breakers)

    def __iter__(self) -> Iterator[tuple[object, CircuitBreaker]]:
        with self._lock:
            items = list(self._breakers.items())
        return iter(items)

    def stats(self) -> dict[str, int]:
        """Aggregate lifetime counters across every key."""
        trips = rejections = open_now = 0
        for _key, breaker in self:
            trips += breaker.trips
            rejections += breaker.rejections
            if breaker.state != "closed":
                open_now += 1
        return {
            "breakers": len(self),
            "breaker_trips": trips,
            "breaker_rejections": rejections,
            "breakers_open": open_now,
        }
