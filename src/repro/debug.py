"""Computation-graph introspection: text and DOT renderings.

Debug aids for understanding what DITTO memoized — handy when designing a
new invariant (is the graph sharing what you expect? how big is it? what
does one mutation dirty?), plus the pending-write dump the guard layer
emits when a guarded block dies mid-mutation.
"""

from __future__ import annotations

from typing import Callable, Optional

from .core.engine import DittoEngine
from .core.node import ComputationNode


def _default_label(node: ComputationNode) -> str:
    args = ", ".join(_short(a) for a in node.explicit_args)
    return f"{node.func.name}({args})"


def _short(value: object) -> str:
    text = repr(value)
    return text if len(text) <= 24 else text[:21] + "..."


def graph_text(
    engine: DittoEngine,
    label: Optional[Callable[[ComputationNode], str]] = None,
    max_nodes: int = 200,
) -> str:
    """Render the engine's computation graph as an indented call tree
    rooted at the current entry invocation.  Shared nodes (multiple
    callers) are expanded once and referenced afterwards."""
    label = label or _default_label
    root = engine._root
    if root is None:
        return "<empty graph>"
    lines: list[str] = []
    seen: set[int] = set()
    budget = [max_nodes]

    def walk(node: ComputationNode, depth: int) -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        indent = "  " * depth
        value = f" = {node.return_val!r}" if node.has_result else ""
        flags = ""
        if node.dirty:
            flags += " [dirty]"
        if node.failed:
            flags += " [failed]"
        if id(node) in seen:
            # Shared references carry the same flags as the expansion —
            # a shared dirty node must not print as clean.
            lines.append(f"{indent}{label(node)}{value}{flags} (shared)")
            return
        seen.add(id(node))
        lines.append(f"{indent}{label(node)}{value}{flags}")
        for child in node.calls:
            walk(child, depth + 1)

    walk(root, 0)
    if budget[0] <= 0:
        lines.append(f"... (truncated at {max_nodes} nodes)")
    return "\n".join(lines)


def graph_dot(
    engine: DittoEngine,
    label: Optional[Callable[[ComputationNode], str]] = None,
) -> str:
    """Render the whole memo table as a Graphviz digraph."""
    label = label or _default_label
    lines = ["digraph ditto {", "  rankdir=TB;", "  node [shape=box];"]
    ids: dict[int, str] = {}
    for index, node in enumerate(engine.table):
        ids[id(node)] = f"n{index}"
        value = repr(node.return_val) if node.has_result else "?"
        color = ' color="red"' if node.dirty else ""
        text = f"{label(node)}\\n= {value}"
        lines.append(f'  n{index} [label="{text}"{color}];')
    for node in engine.table:
        src = ids[id(node)]
        for child in node.calls:
            dst = ids.get(id(child))
            if dst is not None:
                lines.append(f"  {src} -> {dst};")
    lines.append("}")
    return "\n".join(lines)


def pending_writes_text(engine: DittoEngine, max_entries: int = 25) -> str:
    """The mutations ``engine`` has *not yet* consumed, one per line.

    This is the evidence that would have driven the engine's next
    incremental run.  :meth:`repro.guard.InvariantGuard.guarding` dumps it
    when the guarded body raises, so a violation introduced just before
    the crash is preserved in the diagnostics instead of being lost with
    the skipped exit check."""
    pending = engine.tracking.write_log.peek(engine._log_cid)
    if not pending:
        return "<no pending writes>"
    lines = [
        f"{len(pending)} pending write(s) for check "
        f"{engine.entry.name!r}:"
    ]
    for location in pending[:max_entries]:
        lines.append(f"  - {location}")
    if len(pending) > max_entries:
        lines.append(f"  ... and {len(pending) - max_entries} more")
    return "\n".join(lines)


def graph_stats(engine: DittoEngine) -> dict[str, float]:
    """Summary statistics of the computation graph."""
    nodes = list(engine.table)
    if not nodes:
        return {"nodes": 0, "edges": 0, "implicits": 0, "max_depth": 0,
                "sharing": 0.0}
    edges = sum(len(n.calls) for n in nodes)
    implicits = sum(len(n.implicits) for n in nodes)
    shared = sum(1 for n in nodes if n.caller_count() > 1)
    return {
        "nodes": len(nodes),
        "edges": edges,
        "implicits": implicits,
        "max_depth": max(n.depth for n in nodes),
        "sharing": shared / len(nodes),
    }
