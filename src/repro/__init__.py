"""repro — a Python reproduction of DITTO (Shankar & Bodík, PLDI 2007).

DITTO automatically incrementalizes dynamic, side-effect-free data structure
invariant checks: it rewrites a recursive check so that each invocation only
re-examines the parts of the structure modified since the last check,
reusing cached results (optimistically) for everything else.

Public API in three layers:

* ``repro.check`` / ``repro.DittoEngine`` — mark check functions and build
  an incrementalizer for an entry point.
* ``repro.TrackedObject`` / ``repro.TrackedArray`` / ``repro.TrackedList``
  — write-barrier base classes for the data structures under check.
* ``repro.structures`` / ``repro.apps`` — ready-made structures, invariants,
  and the paper's two sample applications (Netcols, JSO).
* ``repro.obs`` — observability: trace sinks (``trace_sink=`` engine
  option), a Prometheus-exportable metrics registry, and the
  repair-provenance explainer (``enable_provenance`` /
  ``explain_last_run``).
* ``repro.lint`` — whole-program soundness analysis: interprocedural
  check admissibility and write-barrier bypass detection
  (``python -m repro.lint``, ``engine.lint()``, ``lint_paths``).
* ``repro.serving`` — a hardened multi-tenant front end: an
  ``EnginePool`` hosting many isolated engines (one private
  ``TrackingState`` each) behind striped locks, with bounded admission,
  per-tenant circuit breakers, and cooperative soft deadlines.  Imported
  on demand (``from repro.serving import EnginePool``), not re-exported
  here.

Quickstart::

    from repro import DittoEngine, TrackedObject, check

    class Elem(TrackedObject):
        def __init__(self, value, next=None):
            self.value = value
            self.next = next

    @check
    def is_ordered(e):
        if e is None or e.next is None:
            return True
        if e.value > e.next.value:
            return False
        return is_ordered(e.next)

    engine = DittoEngine(is_ordered)
    head = Elem(1, Elem(5))
    assert engine.run(head) is True      # full run, graph built
    head.next = Elem(3, head.next)       # barrier logs the mutation
    assert engine.run(head) is True      # incremental: O(1) re-execution
"""

from .core import (
    ArgsKey,
    CheckDeadlineExceeded,
    CheckRestrictionError,
    ComputationNode,
    CyclicCheckError,
    DittoEngine,
    DittoError,
    EngineBusyError,
    EngineStateError,
    EngineStats,
    FallbackEvent,
    GraphAuditError,
    InstrumentationError,
    OptimisticMispredictionError,
    ResultTypeError,
    RunReport,
    StepLimitExceeded,
    TenantIsolationError,
    TrackedArray,
    TrackedList,
    TrackedObject,
    TrackingError,
    TrackingState,
    UnknownCheckError,
    VerificationError,
    is_tracked,
    reset_tracking,
    tracking_state,
)
from .instrument import (
    CheckFunction,
    check,
    instrumented_source,
    recursify,
    register_pure_helper,
    register_pure_method,
)
from .guard import InvariantGuard, InvariantViolation, guarded
from .resilience import (
    AuditFinding,
    AuditReport,
    BreakerOpenError,
    BreakerPolicy,
    CircuitBreaker,
    DegradationPolicy,
    FaultPlan,
    GraphAuditor,
    InjectedFault,
    KeyedBreakers,
    inject_faults,
)
from .lint import Diagnostic, LintReport, lint_paths
from .obs import (
    ChromeTraceSink,
    EngineMetrics,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    RingBufferSink,
    TraceSink,
    enable_provenance,
    explain_last_run,
)

__version__ = "1.1.0"

__all__ = [
    "ArgsKey",
    "AuditFinding",
    "AuditReport",
    "BreakerOpenError",
    "BreakerPolicy",
    "check",
    "CheckDeadlineExceeded",
    "CheckFunction",
    "CheckRestrictionError",
    "ChromeTraceSink",
    "CircuitBreaker",
    "ComputationNode",
    "CyclicCheckError",
    "DegradationPolicy",
    "Diagnostic",
    "DittoEngine",
    "DittoError",
    "enable_provenance",
    "EngineBusyError",
    "EngineMetrics",
    "EngineStateError",
    "EngineStats",
    "explain_last_run",
    "FallbackEvent",
    "FaultPlan",
    "GraphAuditError",
    "GraphAuditor",
    "InjectedFault",
    "inject_faults",
    "InstrumentationError",
    "instrumented_source",
    "InvariantGuard",
    "InvariantViolation",
    "guarded",
    "is_tracked",
    "JsonlSink",
    "KeyedBreakers",
    "lint_paths",
    "LintReport",
    "MetricsRegistry",
    "NullSink",
    "OptimisticMispredictionError",
    "recursify",
    "RingBufferSink",
    "register_pure_helper",
    "register_pure_method",
    "reset_tracking",
    "ResultTypeError",
    "RunReport",
    "StepLimitExceeded",
    "TenantIsolationError",
    "TraceSink",
    "TrackedArray",
    "TrackedList",
    "TrackedObject",
    "TrackingError",
    "TrackingState",
    "tracking_state",
    "UnknownCheckError",
    "VerificationError",
    "__version__",
]
