"""Fold classifier: which checks admit synthesized O(1) maintenance.

DITTO repairs every invariant through the memo graph; Liu's discrete
incrementalization line argues that folds over a container — sums, counts,
min/max, all-elements predicates, adjacent-pair orderings — should instead
be *maintained* under each mutation.  This module is the admissibility
judgment: a whole-program static pass over registered check bodies that
either proves a check is a commutative-monoid fold whose per-slot
contribution can be recomputed independently, or rejects it with a
machine-readable why-not (surfaced as the DIT2xx lint family).

Accepted shape (the *linear fold grammar*)::

    def f(P..., i):            # positional params, one of them the index
        [name = AFFINE|ALIAS]* # straight-line prelude (e.g. arr = h.items)
        if i >= len(C) + k:    # base-case guard over the fold container
            return B           # identity constant of the monoid
        [name = EXPR]*         # slot reads, term preparation
        rest = f(P..., i + 1)  # exactly one self-call, step +1, args else
        [tail]                 # passthrough guards + one combine return
        return COMBINE(term, rest)

with COMBINE one of ``term + rest`` (sum, B == 0), ``term and rest``
(conjunction, B is True), or ``term if term < rest else rest`` (min; ``>``
for max; B any int, acting as an idempotent clamp).  ``return rest`` is a
passthrough (identity contribution) and ``return False`` an absorbing
contribution for conjunctions.  Everything the body reads must be the
container's slots at indices affine in ``i``, ``len(C)``, the parameters,
or constants.

Soundness is structural, not semantic: the grammar guarantees the original
recursion equals the monoid fold of the per-index terms.  The two rules
that carry that guarantee:

* **No pruning** — between the base guard and the self-call only plain
  assignments may appear.  A conditional that returns before recursing
  (``check_heap_order``'s ``if x is None`` branch) would prune the
  traversal, making the original answer depend on *which* slots were
  visited; the pointwise conjunction of terms would diverge.
* **One linear self-call, step i+1** — tree recursion (``2*i + 1``) and
  non-unit steps change the visited index set; only the linear step makes
  "dirty coordinate → dirty contribution" an O(1) inverse map.

The classifier is pure AST analysis so the same judgment serves the live
path (engine construction, via :func:`classify_entry`) and the file-mode
linter (:func:`fold_diagnostics` over parsed module tables).  Rejections
carry the DIT2xx code as a plain string; the lint layer owns Diagnostic
construction so this module never imports :mod:`repro.lint`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Rejection taxonomy (kept in sync with ``repro.lint.rules``).
ADMISSIBLE = "DIT201"
INADMISSIBLE = "DIT202"
OPAQUE_CALL = "DIT203"
FLOAT_SUM = "DIT204"

MONOIDS = ("sum", "and", "min", "max")


@dataclass(frozen=True)
class Rejection:
    """Why a self-recursive check is not an admissible fold."""

    code: str          # DIT202 / DIT203 / DIT204
    message: str
    function: str = ""
    line: int = 0


@dataclass
class FoldInfo:
    """A proven-admissible linear fold."""

    name: str
    params: tuple[str, ...]
    index_pos: int
    #: ("param", pos) or ("field", pos, attr) — the fold container.
    container: tuple
    monoid: str
    base_const: Any
    #: Domain is [start, len(container) + domain_offset).
    domain_offset: int
    #: Affine slot reads (a, b): term(i) reads container[a*i + b].
    stencil: tuple[tuple[int, int], ...]
    float_risk: bool
    node: ast.FunctionDef = field(repr=False, default=None)

    def describe(self) -> str:
        cont = (
            self.params[self.container[1]]
            if self.container[0] == "param"
            else f"{self.params[self.container[1]]}.{self.container[2]}"
        )
        reads = ", ".join(
            f"{cont}[{a}*{self.params[self.index_pos]}{b:+d}]"
            if a != 1 or b != 0
            else (f"{cont}[{self.params[self.index_pos]}+{b}]" if b else
                  f"{cont}[{self.params[self.index_pos]}]")
            for a, b in self.stencil
        ) or "(no slots)"
        return (
            f"{self.monoid} fold over {cont} with identity "
            f"{self.base_const!r}, term reads {reads}"
        )


@dataclass
class FoldSite:
    """One statically-verified call of a fold from a combiner entry."""

    callee_name: str       # name as called in the entry body
    fold: FoldInfo
    #: For each fold param position: ("param", entry_pos) or ("const", v).
    arg_plan: tuple[tuple, ...]
    start: int             # the constant start index at this site


@dataclass
class EntryClassification:
    """Derived-strategy verdict for one check entry point."""

    entry_name: str
    #: "fold" (entry is itself a fold), "combiner", or "rejected".
    kind: str
    folds: dict[str, FoldInfo] = field(default_factory=dict)
    scalar_names: tuple[str, ...] = ()
    sites: tuple[FoldSite, ...] = ()
    rejections: tuple[Rejection, ...] = ()
    #: Per-function fold verdicts for diagnostics: name -> FoldInfo | Rejection.
    verdicts: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.kind in ("fold", "combiner")

    def why_not(self) -> str:
        if self.ok:
            return ""
        return "; ".join(
            f"{r.function or self.entry_name}: {r.message}"
            for r in self.rejections
        ) or "no maintainable fold found"


# Affine mini-interpretation. -------------------------------------------------
#
# Values: ("aff", var, a, b) meaning a*var + b (var None => constant b);
#         ("cont", key) a container reference; ("opaque",).

_OPAQUE = ("opaque",)


def _const(value: int) -> tuple:
    return ("aff", None, 0, value)


def _eval_affine(node: ast.AST, env: dict) -> tuple:
    if isinstance(node, ast.Constant):
        if type(node.value) is int:
            return _const(node.value)
        return _OPAQUE
    if isinstance(node, ast.Name):
        return env.get(node.id, _OPAQUE)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        val = _eval_affine(node.operand, env)
        if val[0] == "aff":
            return ("aff", val[1], -val[2], -val[3])
        return _OPAQUE
    if isinstance(node, ast.BinOp):
        left = _eval_affine(node.left, env)
        right = _eval_affine(node.right, env)
        if left[0] != "aff" or right[0] != "aff":
            return _OPAQUE
        _, lv, la, lb = left
        _, rv, ra, rb = right
        if isinstance(node.op, ast.Add):
            if lv is None or rv is None or lv == rv:
                return ("aff", lv if lv is not None else rv, la + ra, lb + rb)
        elif isinstance(node.op, ast.Sub):
            if lv is None or rv is None or lv == rv:
                var = lv if lv is not None else rv
                return ("aff", var, la - ra, lb - rb)
        elif isinstance(node.op, ast.Mult):
            if lv is None:
                return ("aff", rv, lb * ra, lb * rb)
            if rv is None:
                return ("aff", lv, la * rb, lb * rb)
        return _OPAQUE
    return _OPAQUE


def _normalize(val: tuple) -> tuple:
    """Collapse a*var+b with a == 0 to a constant."""
    if val[0] == "aff" and val[1] is not None and val[2] == 0:
        return _const(val[3])
    return val


def _container_of(node: ast.AST, env: dict, params: list[str]) -> Optional[tuple]:
    """Resolve an expression to a container key, if it names one."""
    if isinstance(node, ast.Name):
        val = env.get(node.id)
        if val is not None and val[0] == "cont":
            return val[1]
        if node.id in params:
            return ("param", params.index(node.id))
        return None
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.ctx, ast.Load)
        and isinstance(node.value, ast.Name)
        and node.value.id in params
    ):
        return ("field", params.index(node.value.id), node.attr)
    return None


def _len_affine(node: ast.AST, env: dict, params: list[str]):
    """Parse ``len(C) ± const`` -> (container_key, offset), else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
        and len(node.args) == 1
        and not node.keywords
    ):
        key = _container_of(node.args[0], env, params)
        if key is None:
            return None
        return (key, 0)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        inner = _len_affine(node.left, env, params)
        if inner is None or not isinstance(node.right, ast.Constant):
            return None
        k = node.right.value
        if type(k) is not int:
            return None
        key, off = inner
        return (key, off + k if isinstance(node.op, ast.Add) else off - k)
    return None


# The linear-fold grammar. ----------------------------------------------------


def _self_calls(fd: ast.FunctionDef) -> list[ast.Call]:
    calls = []
    for stmt in fd.body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == fd.name
            ):
                calls.append(node)
    return calls


def _contains(node: ast.AST, target: ast.AST) -> bool:
    return any(child is target for child in ast.walk(node))


_ALLOWED_EXPR = (
    ast.BinOp, ast.BoolOp, ast.Compare, ast.IfExp, ast.Call, ast.Name,
    ast.Constant, ast.Attribute, ast.Subscript, ast.UnaryOp,
    ast.Load, ast.And, ast.Or, ast.Not, ast.USub, ast.UAdd,
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Is, ast.IsNot,
)


def classify_fold(fd: ast.FunctionDef):
    """Judge one self-recursive function against the linear-fold grammar.

    Returns ``FoldInfo`` on success, a ``Rejection`` when the function is
    self-recursive but inadmissible, and ``None`` when it is not a fold
    candidate at all (no self-call).
    """
    name = fd.name

    def reject(code: str, message: str, node: ast.AST = None) -> Rejection:
        return Rejection(
            code, message, function=name,
            line=getattr(node, "lineno", fd.lineno),
        )

    calls = _self_calls(fd)
    if not calls:
        return None

    args = fd.args
    if (
        args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs
        or args.defaults or args.kw_defaults
    ):
        return reject(
            INADMISSIBLE,
            "fold checks must take plain positional parameters",
        )
    params = [a.arg for a in args.args]

    if len(calls) != 1:
        return reject(
            INADMISSIBLE,
            f"{len(calls)} recursive calls (tree recursion) — only a "
            "single linear self-call with step i+1 can be maintained",
            calls[1],
        )
    rec_call = calls[0]

    body = list(fd.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]  # docstring

    env: dict[str, tuple] = {p: ("aff", p, 1, 0) for p in params}
    assigned: set[str] = set(params)

    def process_assign(stmt: ast.Assign) -> Optional[Rejection]:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return reject(
                INADMISSIBLE, "only single-name assignments are supported",
                stmt,
            )
        target = stmt.targets[0].id
        assigned.add(target)
        cont = _container_of(stmt.value, env, params)
        if cont is not None and isinstance(stmt.value, ast.Attribute):
            env[target] = ("cont", cont)
        else:
            env[target] = _normalize(_eval_affine(stmt.value, env))
        return None

    # Prelude: straight-line assigns, then the base-case guard.
    i = 0
    while i < len(body) and isinstance(body[i], ast.Assign):
        if _contains(body[i], rec_call):
            break
        err = process_assign(body[i])
        if err:
            return err
        i += 1

    if i >= len(body) or not isinstance(body[i], ast.If):
        return reject(
            INADMISSIBLE,
            "missing base-case guard: expected `if i >= len(c): return B` "
            "after the prelude assignments",
            body[i] if i < len(body) else fd,
        )
    guard = body[i]
    i += 1
    if guard.orelse or len(guard.body) != 1 or not isinstance(
        guard.body[0], ast.Return
    ):
        return reject(
            INADMISSIBLE,
            "base-case guard must be `if <test>: return <const>` with no "
            "else branch",
            guard,
        )
    base_ret = guard.body[0].value
    if not isinstance(base_ret, ast.Constant) or type(base_ret.value) not in (
        int, bool, float
    ):
        return reject(
            INADMISSIBLE,
            "base case must return a primitive constant (the monoid "
            "identity)",
            guard,
        )
    base_const = base_ret.value

    test = guard.test
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and len(test.comparators) == 1
    ):
        return reject(
            INADMISSIBLE,
            "base-case test must compare the index against len(container)",
            guard,
        )
    op = test.ops[0]
    if isinstance(op, ast.GtE):
        idx_node, len_node = test.left, test.comparators[0]
    elif isinstance(op, ast.LtE):
        len_node, idx_node = test.left, test.comparators[0]
    else:
        return reject(
            INADMISSIBLE,
            "base-case test must use >= (or a flipped <=) so the domain is "
            "the half-open prefix [start, len)",
            guard,
        )
    if not (isinstance(idx_node, ast.Name) and idx_node.id in params):
        return reject(
            INADMISSIBLE,
            "base-case test must compare a bare index parameter",
            guard,
        )
    index_param = idx_node.id
    index_pos = params.index(index_param)
    parsed = _len_affine(len_node, env, params)
    if parsed is None:
        return reject(
            INADMISSIBLE,
            "base-case bound must be len(container) plus/minus a constant",
            guard,
        )
    container, domain_offset = parsed

    # Between the guard and the self-call: plain assignments only.  Any
    # other statement could return before recursing — a pruned traversal
    # whose answer depends on which slots were visited.
    rec_marker: Optional[str] = None
    rec_stmt_index = None
    while i < len(body):
        stmt = body[i]
        if isinstance(stmt, ast.Assign) and _contains(stmt, rec_call):
            if stmt.value is not rec_call:
                return reject(
                    INADMISSIBLE,
                    "recursive call must be a plain `rest = f(...)` "
                    "assignment, not nested inside an expression",
                    stmt,
                )
            if len(stmt.targets) != 1 or not isinstance(
                stmt.targets[0], ast.Name
            ):
                return reject(
                    INADMISSIBLE,
                    "recursive result must bind a single name", stmt,
                )
            rec_marker = stmt.targets[0].id
            assigned.add(rec_marker)
            rec_stmt_index = i
            i += 1
            break
        if isinstance(stmt, ast.Return) and _contains(stmt, rec_call):
            # Inline form: `return term + f(...)` as the final statement.
            rec_stmt_index = i
            break
        if not isinstance(stmt, ast.Assign):
            return reject(
                INADMISSIBLE,
                "a conditional (or other statement) precedes the recursive "
                "call: a path may return without recursing, pruning the "
                "traversal so the answer is not a pointwise fold",
                stmt,
            )
        err = process_assign(stmt)
        if err:
            return err
        i += 1

    if rec_stmt_index is None:
        return reject(
            INADMISSIBLE,
            "recursive call is nested under a conditional — a path may "
            "skip it, pruning the traversal",
            rec_call,
        )

    # The self-call: every non-index argument passes its parameter through
    # unchanged; the index argument advances by exactly one.
    if len(rec_call.args) != len(params) or rec_call.keywords:
        return reject(
            INADMISSIBLE,
            "recursive call must pass exactly the original parameters",
            rec_call,
        )
    for pos, arg in enumerate(rec_call.args):
        val = _normalize(_eval_affine(arg, env))
        if pos == index_pos:
            if val != ("aff", index_param, 1, 1):
                return reject(
                    INADMISSIBLE,
                    "recursion step must advance the index by exactly one "
                    "(`i + 1`)",
                    rec_call,
                )
        else:
            if not (isinstance(arg, ast.Name) and arg.id == params[pos]):
                return reject(
                    INADMISSIBLE,
                    f"recursive call must pass parameter "
                    f"{params[pos]!r} through unchanged",
                    rec_call,
                )

    # Tail: assignments (marker-free), passthrough guards, returns.
    def uses_marker(node: ast.AST) -> bool:
        if rec_marker is None:
            return _contains(node, rec_call)
        return any(
            isinstance(n, ast.Name) and n.id == rec_marker
            for n in ast.walk(node)
        )

    def is_marker(node: ast.AST) -> bool:
        if rec_marker is None:
            return node is rec_call
        return isinstance(node, ast.Name) and node.id == rec_marker

    returns: list[ast.expr] = []
    tail = body[i:] if rec_marker is not None else [body[rec_stmt_index]]
    for stmt in tail:
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return reject(
                    INADMISSIBLE, "fold checks must return a value", stmt,
                )
            returns.append(stmt.value)
        elif isinstance(stmt, ast.Assign):
            if uses_marker(stmt.value):
                return reject(
                    INADMISSIBLE,
                    "recursive result may only be combined in a return "
                    "expression, not stored through locals",
                    stmt,
                )
            err = process_assign(stmt)
            if err:
                return err
        elif isinstance(stmt, ast.If):
            if (
                stmt.orelse
                or len(stmt.body) != 1
                or not isinstance(stmt.body[0], ast.Return)
                or uses_marker(stmt.test)
            ):
                return reject(
                    INADMISSIBLE,
                    "tail conditionals must be `if <cond>: return <...>` "
                    "guards with a marker-free condition",
                    stmt,
                )
            ret = stmt.body[0]
            if ret.value is None:
                return reject(
                    INADMISSIBLE, "fold checks must return a value", ret,
                )
            returns.append(ret.value)
        else:
            return reject(
                INADMISSIBLE,
                f"unsupported statement {type(stmt).__name__} after the "
                "recursive call",
                stmt,
            )
    if not tail or not isinstance(tail[-1], ast.Return):
        return reject(
            INADMISSIBLE, "fold body must end in a return", fd,
        )

    monoid = None
    saw_combine = False
    for expr in returns:
        shape = _classify_combine(expr, is_marker, uses_marker)
        if shape is None:
            return reject(
                INADMISSIBLE,
                "combine step is not a recognized commutative-monoid "
                "operator (term + rest, term and rest, or an if/else "
                "min/max); order-dependent combines cannot be maintained "
                "out of mutation order",
                expr,
            )
        if shape == "passthrough":
            continue
        if shape == "absorber_false":
            if monoid not in (None, "and"):
                return reject(
                    INADMISSIBLE,
                    "constant `return False` only folds into a conjunction",
                    expr,
                )
            monoid = monoid or "and"
            continue
        saw_combine = True
        if monoid is None or monoid == shape:
            monoid = shape
        else:
            return reject(
                INADMISSIBLE,
                f"return paths disagree on the combine operator "
                f"({monoid} vs {shape})",
                expr,
            )
    if monoid is None or not saw_combine:
        return reject(
            INADMISSIBLE,
            "the recursive result is never combined with a per-slot term",
            fd,
        )

    # Identity-constant agreement with the monoid.
    if monoid == "sum":
        if not (type(base_const) in (int, float) and base_const == 0):
            return reject(
                INADMISSIBLE,
                f"sum fold must bottom out at 0, got {base_const!r}", guard,
            )
    elif monoid == "and":
        if base_const is not True:
            return reject(
                INADMISSIBLE,
                f"conjunction fold must bottom out at True, got "
                f"{base_const!r}",
                guard,
            )
    else:  # min/max: any int constant is an idempotent clamp
        if type(base_const) is not int:
            return reject(
                INADMISSIBLE,
                f"{monoid} fold must bottom out at an integer sentinel, "
                f"got {base_const!r}",
                guard,
            )

    # Whole-body safety scan: every read must be attributable to a slot.
    stencil: list[tuple[int, int]] = []
    float_risk = type(base_const) is float
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(
                node, _ALLOWED_EXPR + (
                    ast.stmt, ast.expr_context, ast.operator, ast.cmpop,
                    ast.boolop, ast.unaryop, ast.keyword, ast.arguments,
                    ast.arg,
                )
            ):
                return reject(
                    INADMISSIBLE,
                    f"unsupported construct {type(node).__name__} in a "
                    "fold body",
                    node if isinstance(node, ast.AST) else stmt,
                )
            if isinstance(node, ast.Constant) and type(node.value) is float:
                float_risk = True
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                float_risk = True
            if isinstance(node, ast.Call):
                if node is rec_call:
                    continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "len"
                    and len(node.args) == 1
                    and not node.keywords
                ):
                    if _container_of(node.args[0], env, params) != container:
                        return reject(
                            INADMISSIBLE,
                            "len() of something other than the fold "
                            "container",
                            node,
                        )
                    continue
                callee = (
                    node.func.id
                    if isinstance(node.func, ast.Name)
                    else ast.unparse(node.func)
                )
                return reject(
                    OPAQUE_CALL,
                    f"term calls {callee!r}, whose reads cannot be "
                    "attributed to container slots; inline it or keep the "
                    "check on the memo path",
                    node,
                )
            if isinstance(node, ast.Subscript):
                base_key = _container_of(node.value, env, params)
                if base_key != container:
                    return reject(
                        OPAQUE_CALL,
                        "subscript of something other than the fold "
                        "container",
                        node,
                    )
                idx = _normalize(_eval_affine(node.slice, env))
                if idx[0] != "aff" or idx[1] != index_param or idx[2] < 1:
                    return reject(
                        INADMISSIBLE,
                        "slot index is not affine in the recursion index "
                        "(a*i + b with a >= 1): a dirty slot could not be "
                        "mapped back to its contribution",
                        node,
                    )
                stencil.append((idx[2], idx[3]))
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                key = _container_of(node, env, params)
                if key != container:
                    return reject(
                        OPAQUE_CALL,
                        f"reads attribute {node.attr!r} outside the fold "
                        "container binding (pointer chase); the maintainer "
                        "cannot re-locate it per slot",
                        node,
                    )
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in assigned and node.id not in (
                    "len", fd.name
                ):
                    return reject(
                        OPAQUE_CALL,
                        f"reads name {node.id!r} from an enclosing scope; "
                        "only parameters, locals and len() are admissible",
                        node,
                    )

    if float_risk and monoid == "sum":
        return reject(
            FLOAT_SUM,
            "sum fold over floating-point terms: float addition is not "
            "associative, so a maintained sum would drift from the "
            "recursive one bit-for-bit; kept on the memo path",
            fd,
        )

    dedup = tuple(dict.fromkeys(stencil))
    return FoldInfo(
        name=name,
        params=tuple(params),
        index_pos=index_pos,
        container=container,
        monoid=monoid,
        base_const=base_const,
        domain_offset=domain_offset,
        stencil=dedup,
        float_risk=float_risk,
        node=fd,
    )


def _classify_combine(expr, is_marker, uses_marker):
    """Classify one return expression; None means unrecognized."""
    if is_marker(expr):
        return "passthrough"
    if not uses_marker(expr):
        if isinstance(expr, ast.Constant) and expr.value is False:
            return "absorber_false"
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        if is_marker(expr.left) and not uses_marker(expr.right):
            return "sum"
        if is_marker(expr.right) and not uses_marker(expr.left):
            return "sum"
        return None
    if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
        markers = [v for v in expr.values if is_marker(v)]
        others = [v for v in expr.values if not is_marker(v)]
        if len(markers) == 1 and not any(uses_marker(v) for v in others):
            return "and"
        return None
    if isinstance(expr, ast.IfExp):
        test, body, orelse = expr.test, expr.body, expr.orelse
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and len(test.comparators) == 1
        ):
            return None
        if is_marker(body) and not uses_marker(orelse):
            marker_branch, term_branch = body, orelse
        elif is_marker(orelse) and not uses_marker(body):
            marker_branch, term_branch = orelse, body
        else:
            return None
        left, right = test.left, test.comparators[0]
        term_dump = ast.dump(term_branch)

        def side_kind(node):
            if is_marker(node):
                return "marker"
            if ast.dump(node) == term_dump and not uses_marker(node):
                return "term"
            return None

        lk, rk = side_kind(left), side_kind(right)
        if {lk, rk} != {"marker", "term"}:
            return None
        op = test.ops[0]
        if isinstance(op, (ast.Lt, ast.LtE)):
            smaller = lk  # left is the smaller side when test is true
        elif isinstance(op, (ast.Gt, ast.GtE)):
            smaller = rk
        else:
            return None
        chosen = "marker" if is_marker(body) else "term"
        # When the test holds, `body` is returned; the fold is a min when
        # the returned side is the smaller one.
        return "min" if chosen == smaller else "max"
    return None


# Entry-level classification (live mode). -------------------------------------

_ENTRY_CACHE: dict[int, EntryClassification] = {}


def classify_entry(entry) -> EntryClassification:
    """Classify a registered check entry point for the derived strategy.

    An entry qualifies when it is itself an admissible fold, or when it is
    a non-recursive *combiner*: straight-line code whose only check calls
    are (a) admissible folds invoked once each with passthrough arguments
    and a constant start index and (b) O(1) scalar checks, combined
    arbitrarily.  Everything else is rejected (the memo graph remains the
    strategy for it), with per-function why-nots preserved for lint.
    """
    cached = _ENTRY_CACHE.get(entry.uid)
    if cached is not None:
        return cached
    result = _classify_entry_uncached(entry)
    _ENTRY_CACHE[entry.uid] = result
    return result


def _classify_entry_uncached(entry) -> EntryClassification:
    from ..instrument.registry import closure_of

    name = entry.name
    rejections: list[Rejection] = []
    verdicts: dict[str, Any] = {}

    try:
        funcs = closure_of(entry)
    except Exception as exc:  # unparseable closure: not derivable
        rej = Rejection(
            INADMISSIBLE, f"cannot analyze check closure: {exc}", name,
        )
        return EntryClassification(
            name, "rejected", rejections=(rej,), verdicts={name: rej},
        )

    folds: dict[str, FoldInfo] = {}
    scalars: set[str] = set()
    for fn in funcs.values():
        try:
            verdict = classify_fold(fn.tree())
        except Exception as exc:
            verdict = Rejection(
                INADMISSIBLE, f"classification failed: {exc}", fn.name,
            )
        if verdict is not None:
            verdicts[fn.name] = verdict
        if isinstance(verdict, FoldInfo):
            folds[fn.name] = verdict
        elif isinstance(verdict, Rejection):
            rejections.append(verdict)

    entry_verdict = verdicts.get(name)
    if isinstance(entry_verdict, FoldInfo):
        result = EntryClassification(
            name, "fold", folds={name: entry_verdict},
            rejections=tuple(rejections), verdicts=verdicts,
        )
        return result
    if isinstance(entry_verdict, Rejection):
        return EntryClassification(
            name, "rejected", rejections=tuple(rejections),
            verdicts=verdicts,
        )

    # Non-recursive entry: try the combiner shape.
    verdict = _classify_combiner(entry, funcs, folds, verdicts, rejections)
    return verdict


def _classify_combiner(entry, funcs, folds, verdicts, rejections):
    name = entry.name

    def rejected(code, message, node=None):
        rej = Rejection(
            code, message, function=name,
            line=getattr(node, "lineno", 0),
        )
        return EntryClassification(
            name, "rejected", rejections=tuple(rejections) + (rej,),
            verdicts=verdicts,
        )

    if entry.original.__code__.co_freevars:
        return rejected(
            INADMISSIBLE,
            "entry resolves callees through closure cells; derived "
            "evaluation rebinds globals and needs a module-level entry",
        )
    try:
        tree = entry.tree()
        callees = entry.resolve_callees()
    except Exception as exc:
        return rejected(INADMISSIBLE, f"cannot analyze entry: {exc}")

    params = [a.arg for a in tree.args.args]
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.While)):
            return rejected(
                INADMISSIBLE,
                "loops in the entry cannot be combined in O(1)", node,
            )

    sites: list[FoldSite] = []
    seen_fold_callees: set[str] = set()
    scalar_names: set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        callee_name = node.func.id
        callee = callees.get(callee_name)
        if callee is None:
            continue  # helper/builtin: the scalar path executes it as-is
        info = verdicts.get(callee.name)
        if isinstance(info, FoldInfo):
            if callee_name in seen_fold_callees:
                return rejected(
                    INADMISSIBLE,
                    f"fold {callee_name!r} is called more than once; one "
                    "maintained aggregate cannot serve two sites",
                    node,
                )
            seen_fold_callees.add(callee_name)
            site = _verify_fold_site(node, info, params)
            if isinstance(site, str):
                return rejected(INADMISSIBLE, site, node)
            sites.append(
                FoldSite(callee_name, info, site,
                         start=site[info.index_pos][1])
            )
        elif isinstance(info, Rejection):
            return rejected(
                info.code,
                f"calls {callee_name!r}, which is not maintainable "
                f"({info.message})",
                node,
            )
        else:
            scalar = _is_scalar_check(callee)
            if scalar is not True:
                return rejected(
                    INADMISSIBLE,
                    f"calls {callee_name!r}, which is neither a fold nor "
                    f"an O(1) scalar check ({scalar})",
                    node,
                )
            scalar_names.add(callee_name)

    if not sites:
        return rejected(
            INADMISSIBLE,
            "no maintainable fold reached from the entry",
        )
    result = EntryClassification(
        name, "combiner",
        folds={s.callee_name: s.fold for s in sites},
        scalar_names=tuple(sorted(scalar_names)),
        sites=tuple(sites),
        rejections=tuple(rejections),
        verdicts=verdicts,
    )
    return result


def _verify_fold_site(call: ast.Call, info: FoldInfo, entry_params):
    """Check a combiner's call of a fold: passthrough args + constant
    start.  Returns the arg plan tuple, or an error string."""
    if len(call.args) != len(info.params) or call.keywords:
        return (
            f"call of fold {info.name!r} must pass its "
            f"{len(info.params)} positional parameters"
        )
    plan = []
    for pos, arg in enumerate(call.args):
        if pos == info.index_pos:
            if not (
                isinstance(arg, ast.Constant) and type(arg.value) is int
            ):
                return (
                    f"fold {info.name!r} must be started at a constant "
                    "index"
                )
            plan.append(("const", arg.value))
        else:
            if not (isinstance(arg, ast.Name) and arg.id in entry_params):
                return (
                    f"fold {info.name!r} must receive entry parameters "
                    "unchanged"
                )
            plan.append(("param", entry_params.index(arg.id)))
    return tuple(plan)


def _is_scalar_check(fn) -> "bool | str":
    """True when ``fn`` is an O(1) non-recursive check: loop-free,
    call-free, straight-line.  Such checks are re-executed on every derived
    run (they are constant work), preserving their natural exceptions."""
    try:
        tree = fn.tree()
    except Exception as exc:
        return f"unparseable: {exc}"
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.While)):
            return "contains a loop"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "len", "abs", "min", "max",
            ):
                continue
            return "calls other functions"
    return True


def entry_diagnostics(entry) -> list[tuple]:
    """DIT2xx raw diagnostics for one live entry: a list of
    ``(code, message, function, line)`` tuples — one per self-recursive
    function in the closure (admissible or not).  The lint layer wraps
    them into Diagnostics."""
    cls = classify_entry(entry)
    out = []
    for fname, verdict in sorted(cls.verdicts.items()):
        if isinstance(verdict, FoldInfo):
            out.append((
                ADMISSIBLE,
                f"admissible {verdict.describe()}; eligible for O(1) "
                "derived maintenance",
                fname,
                getattr(verdict.node, "lineno", 0),
            ))
        elif isinstance(verdict, Rejection):
            out.append((verdict.code, verdict.message, fname, verdict.line))
    return out


def clear_cache() -> None:
    """Drop the entry-classification cache (test isolation)."""
    _ENTRY_CACHE.clear()
