"""Runtime maintainers: O(1) derived maintenance of classified folds.

Where the memo graph re-executes stale computation nodes, a
:class:`FoldMaintainer` keeps, per fold, a *shadow* of per-slot
contributions plus a monoid aggregate, and repairs both from the same
write-barrier stream the memo engines drain — each dirty coordinate maps
through the fold's inverse stencil to the contributions it invalidates,
each of which is one ``term()`` call and one O(1) aggregate adjustment.

Exactness discipline (the QA oracle diffs verdicts *and* exceptions
type-strictly against a from-scratch run):

* A **full fold** — first bind, container-field rebinding (``_grow`` /
  ``_rehash``), a range barrier covering at least half the domain
  (``fill``), or any exception on the delta path — computes its result by
  calling the *original* recursive check, which reproduces the exact
  value, type, association order and exception behaviour of the scratch
  run; the shadow is then rebuilt from terms as a separate step.
* The **delta path** is guarded: every new term must be of the monoid's
  exact term type (``int`` for sum/min/max, ``bool`` for conjunctions).
  A term outside it *demotes* the maintainer to recompute mode — the
  original check runs every time (still correct, no longer O(1)) until
  the binding is invalidated or re-established.
* Maintainers take coarse references (``_ditto_incref``) on their bound
  containers, which both keeps every monitored barrier logging (the
  coarse count disables the per-location refinement) and pins the
  containers into this engine's isolation domain via ``adopt_container``
  — cross-domain bindings fail loudly, exactly as memo tables do.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..core.errors import TrackingError
from ..core.locations import (
    FieldLocation,
    IndexLocation,
    LengthLocation,
    RangeLocation,
)
from ..core.tracked import TrackedArray, TrackedObject, adopt_container
from .catalogue import MONOID_CATALOGUE
from .classifier import EntryClassification, FoldInfo
from .synthesis import build_combiner, compile_term

#: A range barrier covering at least this fraction of the domain triggers
#: a transactional full fold instead of per-slot deltas.
_FULL_FOLD_FRACTION = 2  # denominator: >= domain // 2 dirty slots

#: Lazy-deletion heap rebuild bound: rebuild when the heap holds more
#: than twice the live contributions plus slack.
_HEAP_SLACK = 64


class _LazyHeap:
    """Min-heap with tombstoned deletions and bounded rebuild."""

    __slots__ = ("_heap", "_dead", "_tombstones", "_live")

    def __init__(self) -> None:
        self._heap: list[int] = []
        self._dead: dict[int, int] = {}
        self._tombstones = 0
        self._live = 0

    def rebuild(self, values: list[int]) -> None:
        self._heap = list(values)
        heapq.heapify(self._heap)
        self._dead = {}
        self._tombstones = 0
        self._live = len(values)

    def push(self, value: int) -> None:
        heapq.heappush(self._heap, value)
        self._live += 1

    def discard(self, value: int) -> None:
        self._dead[value] = self._dead.get(value, 0) + 1
        self._tombstones += 1
        self._live -= 1

    def compact_if_needed(self, live_values: Callable[[], list[int]]) -> None:
        if self._tombstones > self._live + _HEAP_SLACK:
            self.rebuild(live_values())

    def min(self) -> int:
        heap, dead = self._heap, self._dead
        while heap:
            top = heap[0]
            count = dead.get(top, 0)
            if count:
                heapq.heappop(heap)
                if count == 1:
                    del dead[top]
                else:
                    dead[top] = count - 1
                self._tombstones -= 1
            else:
                return top
        raise IndexError("min of empty heap")


class FoldMaintainer:
    """Maintained aggregate for one classified fold."""

    def __init__(self, info: FoldInfo, check, tracking, stats):
        self.info = info
        self.check = check          # CheckFunction (exact recompute path)
        self.tracking = tracking
        self.stats = stats
        self.term = compile_term(info)
        self.monoid = MONOID_CATALOGUE[info.monoid]
        self.bound = False
        self.mode = "delta"
        self.fold_args: tuple = ()
        self.start = 0
        self.container: Any = None
        self.root: Any = None       # field-bound container's owner
        self._contribs: list[Any] = []
        self._agg = 0               # sum aggregate / conjunction violations
        self._heap: Optional[_LazyHeap] = None
        self._retained: list[Any] = []

    # Binding lifecycle. -----------------------------------------------------

    def bind(self, fold_args: tuple) -> Any:
        """(Re)bind to concrete arguments and full-fold.  Returns the
        fold's current value."""
        self.release()
        self.fold_args = tuple(fold_args)
        self.start = self.fold_args[self.info.index_pos]
        if type(self.start) is not int:
            raise TrackingError(
                f"derived fold {self.info.name!r} needs an integer start "
                f"index, got {type(self.start).__name__}"
            )
        self._resolve_container()
        self.bound = True
        self.mode = "delta"
        return self._full_fold()

    def _resolve_container(self) -> None:
        kind = self.info.container[0]
        pos = self.info.container[1]
        obj = self.fold_args[pos]
        if kind == "field":
            field = self.info.container[2]
            if not isinstance(obj, TrackedObject):
                raise TrackingError(
                    f"derived fold {self.info.name!r} binds container "
                    f"field {field!r} of an untracked "
                    f"{type(obj).__name__}; derive it from TrackedObject"
                )
            self.root = obj
            self._retain(obj)
            container = getattr(obj, field)
        else:
            self.root = None
            container = obj
        if not isinstance(container, TrackedArray):
            raise TrackingError(
                f"derived fold {self.info.name!r} needs a tracked "
                f"container, got {type(container).__name__}"
            )
        self.container = container
        self._retain(container)

    def _retain(self, obj: Any) -> None:
        adopt_container(obj, self.tracking)
        obj._ditto_incref()
        self._retained.append(obj)

    def rebind_field_container(self) -> None:
        """Re-resolve a field-bound container after the field was
        reassigned (``_grow``/``_rehash``) and retarget the barriers."""
        old = self.container
        if old is not None and old in self._retained:
            self._retained.remove(old)
            old._ditto_decref()
        container = getattr(self.root, self.info.container[2])
        if not isinstance(container, TrackedArray):
            raise TrackingError(
                f"derived fold {self.info.name!r} rebound to untracked "
                f"{type(container).__name__}"
            )
        self.container = container
        self._retain(container)

    def release(self) -> None:
        """Drop references and shadow state; next use must rebind."""
        for obj in self._retained:
            obj._ditto_decref()
        self._retained = []
        self.bound = False
        self.container = None
        self.root = None
        self._contribs = []
        self._agg = 0
        self._heap = None

    # Folding. ---------------------------------------------------------------

    def _domain(self) -> int:
        end = len(self.container) + self.info.domain_offset
        return max(0, end - self.start)

    def _term_at(self, i: int) -> Any:
        args = list(self.fold_args)
        args[self.info.index_pos] = i
        return self.term(*args)

    def _recompute_original(self) -> Any:
        return self.check.original(*self.fold_args)

    def _full_fold(self) -> Any:
        """Authoritative recompute: run the original recursion for the
        result, then rebuild the shadow from terms (or demote)."""
        self.stats.derived_full_folds += 1
        result = self._recompute_original()
        try:
            self._rebuild_shadow()
        except Exception:
            self.mode = "recompute"
        return result

    def _rebuild_shadow(self) -> None:
        term_ok = self.monoid.term_ok
        domain = self._domain()
        contribs = []
        for k in range(domain):
            value = self._term_at(self.start + k)
            if not term_ok(value):
                self.mode = "recompute"
                self._contribs = []
                return
            contribs.append(value)
        self._contribs = contribs
        self.mode = "delta"
        name = self.info.monoid
        if name == "sum":
            self._agg = sum(contribs)
        elif name == "and":
            self._agg = sum(1 for value in contribs if not value)
        else:
            heap = _LazyHeap()
            if name == "max":
                heap.rebuild([-value for value in contribs])
            else:
                heap.rebuild(list(contribs))
            self._heap = heap

    # Delta application. -----------------------------------------------------

    def dirty_from_index(self, coord: int) -> list[int]:
        """Map a dirty slot coordinate through the inverse stencil."""
        out = []
        start, domain = self.start, len(self._contribs)
        for a, b in self.info.stencil:
            offset = coord - b
            if offset % a == 0:
                i = offset // a
                if start <= i < start + domain:
                    out.append(i)
        return out

    def apply(self, dirty: set, length_dirty: bool, force_full: bool) -> Any:
        """Repair the aggregate for one engine run; returns the value."""
        if self.mode == "recompute":
            return self._recompute_original()
        if force_full:
            return self._full_fold()
        try:
            self._sync_domain(dirty)
            domain = len(self._contribs)
            if len(dirty) * _FULL_FOLD_FRACTION >= max(domain, 2):
                return self._full_fold()
            for i in sorted(dirty):
                k = i - self.start
                if 0 <= k < domain:
                    self._update_contrib(k)
        except _Demoted:
            return self._full_fold()
        except Exception:
            # A raising term means the slot's value is one the check body
            # itself cannot process; the original recursion is the
            # authority on which exception escapes.
            self.stats.derived_invalidations += 1
            self._contribs = []
            self.mode = "recompute"
            try:
                return self._recompute_original()
            finally:
                # Invalidate fully: rebind on the next run re-folds.
                self.bound = False
        return self.value()

    def _sync_domain(self, dirty: set) -> int:
        """Grow/shrink the shadow to the container's current domain.  New
        slots join ``dirty``; removed slots retract their contribution."""
        old = len(self._contribs)
        new = self._domain()
        if new > old:
            name = self.info.monoid
            # Pad with the identity contribution (it will be recomputed
            # through ``dirty`` before the aggregate is read).
            pad = True if name == "and" else self.info.base_const
            for k in range(old, new):
                self._contribs.append(pad)
                if name == "min":
                    self._heap.push(pad)
                elif name == "max":
                    self._heap.push(-pad)
                dirty.add(self.start + k)
        elif new < old:
            name = self.info.monoid
            for k in range(old - 1, new - 1, -1):
                value = self._contribs.pop()
                self._retract(value)
                dirty.discard(self.start + k)
        return new - old

    def _retract(self, value: Any) -> None:
        name = self.info.monoid
        if name == "sum":
            self._agg -= value
        elif name == "and":
            if not value:
                self._agg -= 1
        elif name == "min":
            self._heap.discard(value)
        else:
            self._heap.discard(-value)

    def _update_contrib(self, k: int) -> None:
        new = self._term_at(self.start + k)
        if not self.monoid.term_ok(new):
            raise _Demoted()
        old = self._contribs[k]
        if new == old and type(new) is type(old):
            return
        self._contribs[k] = new
        name = self.info.monoid
        if name == "sum":
            self._agg += new - old
        elif name == "and":
            self._agg += (0 if new else 1) - (0 if old else 1)
        elif name == "min":
            self._heap.discard(old)
            self._heap.push(new)
        else:
            self._heap.discard(-old)
            self._heap.push(-new)

    def value(self) -> Any:
        """The fold's current value from the maintained aggregate."""
        if self.mode == "recompute":
            return self._recompute_original()
        name = self.info.monoid
        if name == "sum":
            return self._agg
        if name == "and":
            return self._agg == 0
        if not self._contribs:
            return self.info.base_const
        self._heap.compact_if_needed(self._live_values)
        top = self._heap.min()
        return top if name == "min" else -top

    def _live_values(self) -> list[int]:
        if self.info.monoid == "max":
            return [-value for value in self._contribs]
        return list(self._contribs)


class _Demoted(Exception):
    """Internal: a delta-path term fell outside the monoid's term type."""


class DerivedState:
    """Per-engine facade: bind maintainers, drain barriers, evaluate.

    Owned by a ``DittoEngine`` whose strategy resolved to derived; the
    engine hands it the pending write-log locations it consumed through
    its own cursor, and this object routes them to the fold maintainers
    and evaluates the entry (fold value directly, or the rebound combiner
    over maintained values plus re-executed scalar checks).
    """

    def __init__(self, entry, classification: EntryClassification,
                 tracking, stats):
        self.entry = entry
        self.classification = classification
        self.tracking = tracking
        self.stats = stats
        self.maintainers: dict[str, FoldMaintainer] = {}
        registry = {
            fn.name: fn
            for fn in _closure_checks(entry)
        }
        for called_name, info in classification.folds.items():
            check = registry.get(info.name, entry)
            self.maintainers[called_name] = FoldMaintainer(
                info, check, tracking, stats,
            )
        if classification.kind == "combiner":
            self._combiner = build_combiner(
                entry, classification,
                {
                    name: self.maintainers[name].value
                    for name in self.maintainers
                },
            )
        else:
            self._combiner = None
        self._bound_args: Optional[tuple] = None

    # Engine API. ------------------------------------------------------------

    def run(self, args: tuple, pending: list) -> Any:
        """One derived check run: repair the aggregates, evaluate."""
        stats = self.stats
        stats.derived_runs += 1
        if not self._is_bound(args):
            stats.full_runs += 1
            self._bind(args)
            return self._evaluate(args)
        stats.incremental_runs += 1
        full_before = stats.derived_full_folds
        try:
            self._apply(pending)
        except BaseException:
            self.invalidate()
            raise
        if stats.derived_full_folds == full_before:
            stats.derived_hits += 1
        return self._evaluate(args)

    def invalidate(self) -> None:
        """Transactionally discard derived state; the next run rebinds
        and full-folds (the invalidate-to-full-fold path).  Idempotent:
        invalidating unbound state is a no-op, so ``engine.close()`` (which
        invalidates first) never counts a spurious invalidation."""
        if self._bound_args is None:
            return
        self.stats.derived_invalidations += 1
        for maintainer in self.maintainers.values():
            maintainer.release()
        self._bound_args = None

    def release(self) -> None:
        for maintainer in self.maintainers.values():
            maintainer.release()
        self._bound_args = None

    @property
    def is_bound(self) -> bool:
        """Whether derived state is live (the next matching run repairs
        incrementally rather than full-folding)."""
        return self._bound_args is not None

    # Internals. -------------------------------------------------------------

    def _is_bound(self, args: tuple) -> bool:
        bound = self._bound_args
        if bound is None or len(bound) != len(args):
            return False
        return all(x is y for x, y in zip(bound, args))

    def _bind(self, args: tuple) -> None:
        for maintainer in self.maintainers.values():
            maintainer.release()
        cls = self.classification
        if cls.kind == "fold":
            self.maintainers[cls.entry_name].bind(args)
        else:
            for site in cls.sites:
                fold_args = tuple(
                    args[spec[1]] if spec[0] == "param" else spec[1]
                    for spec in site.arg_plan
                )
                self.maintainers[site.callee_name].bind(fold_args)
        self._bound_args = tuple(args)

    def _apply(self, pending: list) -> None:
        maintainers = list(self.maintainers.values())
        by_container: dict[int, list[FoldMaintainer]] = {}
        by_root: dict[int, list[FoldMaintainer]] = {}
        for m in maintainers:
            by_container.setdefault(id(m.container), []).append(m)
            if m.root is not None:
                by_root.setdefault(id(m.root), []).append(m)

        dirty: dict[int, set] = {id(m): set() for m in maintainers}
        length_dirty: dict[int, bool] = {id(m): False for m in maintainers}
        force_full: dict[int, bool] = {id(m): False for m in maintainers}

        rebind: dict[int, bool] = {}
        for loc in pending:
            container_id = id(loc.container)
            if isinstance(loc, FieldLocation):
                for m in by_root.get(container_id, ()):
                    if loc.field == m.info.container[2]:
                        # The container field was reassigned (_grow /
                        # _rehash): rebind to the new container object.
                        force_full[id(m)] = True
                        rebind[id(m)] = True
                continue
            targets = by_container.get(container_id)
            if not targets:
                continue
            if isinstance(loc, LengthLocation):
                for m in targets:
                    length_dirty[id(m)] = True
            elif isinstance(loc, IndexLocation):
                for m in targets:
                    for i in m.dirty_from_index(loc.index):
                        dirty[id(m)].add(i)
            elif isinstance(loc, RangeLocation):
                for m in targets:
                    domain = max(len(m._contribs), 1)
                    if (len(loc) * _FULL_FOLD_FRACTION) >= domain:
                        force_full[id(m)] = True
                    else:
                        length_dirty[id(m)] = True
                        for coord in range(loc.start, loc.stop):
                            for i in m.dirty_from_index(coord):
                                dirty[id(m)].add(i)

        for m in maintainers:
            key = id(m)
            if rebind.get(key):
                m.rebind_field_container()
            m.apply(dirty[key], length_dirty[key], force_full[key])

    def _evaluate(self, args: tuple) -> Any:
        if self._combiner is not None:
            return self._combiner(*args)
        return self.maintainers[self.classification.entry_name].value()


def _closure_checks(entry):
    from ..instrument.registry import closure_of

    return closure_of(entry).values()
