"""Synthesis: turn a classified fold into executable maintenance pieces.

Two compilations happen here, both ordinary CPython codegen (no third
parties):

* **Term extraction** — the per-slot contribution function ``term(...,
  i)`` is the fold body with its single self-call replaced by the base
  constant ``B``.  Because the classifier proved the combine operator is
  a commutative monoid with identity ``B`` (or, for min/max, an
  idempotent clamp), the original recursion equals the monoid fold of
  ``term`` over the index domain — the term is everything the maintainer
  ever needs to run.
* **Combiner rebinding** — a combiner entry (non-recursive, calls folds
  and scalar checks) is re-materialized as a new function object sharing
  the entry's *code* but with the fold callee names rebound, in a copied
  globals dict, to O(1) wrappers over the live maintainers.  Scalar
  callees stay untouched and re-execute on every run, preserving their
  natural exceptions (``vector_tail`` raising IndexError on an empty
  vector must raise identically under every strategy).
"""

from __future__ import annotations

import ast
import copy
import types
from typing import Any, Callable

from .classifier import EntryClassification, FoldInfo


class _SelfCallRewriter(ast.NodeTransformer):
    """Replace ``f(...)`` self-calls with the base constant."""

    def __init__(self, name: str, base_const: Any):
        self.name = name
        self.base_const = base_const

    def visit_Call(self, node: ast.Call) -> ast.AST:
        self.generic_visit(node)
        if isinstance(node.func, ast.Name) and node.func.id == self.name:
            return ast.Constant(value=self.base_const)
        return node


def compile_term(info: FoldInfo) -> Callable:
    """Compile the per-slot contribution function of a classified fold.

    Same signature as the fold itself; calling ``term(*args)`` with the
    index parameter set to ``i`` evaluates slot ``i``'s contribution.
    """
    node = copy.deepcopy(info.node)
    node.name = f"__derived_term_{info.name}"
    _SelfCallRewriter(info.name, info.base_const).visit(node)
    ast.fix_missing_locations(node)
    module = ast.Module(body=[node], type_ignores=[])
    code = compile(module, filename=f"<derived-term:{info.name}>", mode="exec")
    namespace: dict[str, Any] = {}
    exec(code, namespace)
    return namespace[node.name]


def build_combiner(entry, classification: EntryClassification,
                   fold_values: dict[str, Callable]) -> Callable:
    """Rebind a combiner entry's fold callees to maintainer lookups.

    ``fold_values`` maps each fold callee *name* (as called in the entry
    body) to a zero-cost value thunk; the returned function has the
    entry's exact code object, so everything else — scalar check calls,
    arithmetic, argument handling, exceptions — behaves identically to
    the un-incrementalized entry.
    """
    func = entry.original
    namespace = dict(func.__globals__)
    for site in classification.sites:
        thunk = fold_values[site.callee_name]
        namespace[site.callee_name] = _ignore_args(thunk)
    return types.FunctionType(
        func.__code__, namespace, func.__name__, func.__defaults__, None,
    )


def _ignore_args(thunk: Callable) -> Callable:
    def fold_value(*_args: Any) -> Any:
        return thunk()

    return fold_value
