"""Catalogue of maintainable monoids and their synthesized delta rules.

One entry per combine operator the classifier recognizes.  The catalogue
is the single place that records, for each monoid, (a) the identity the
base case must return for the maintained aggregate to equal the recursive
fold bit-for-bit, (b) the *term type* the runtime guard demands before a
delta is applied (outside it the maintainer demotes to exact recompute —
e.g. float sums are rejected statically, bool-typed "ints" would break
``type``-strict QA parity), and (c) the per-mutator delta rule the runtime
maintainer implements.

The delta rules, in write-barrier vocabulary:

* ``__setitem__`` on slot ``c`` → for every stencil entry ``(a, b)`` with
  ``(c - b) % a == 0``, contribution ``i = (c - b) // a`` is recomputed
  and the aggregate adjusted: sum subtracts the old term and adds the new;
  conjunction adjusts a violation count; min/max tombstones the old value
  in a lazy-deletion heap and pushes the new.
* ``insert``/``pop`` (shifting) → the coalesced range barrier marks every
  shifted slot plus the length; the maintainer recomputes exactly those
  contributions and grows/shrinks the domain by one.
* ``fill`` / any range covering at least half the domain → transactional
  invalidation: the shadow is rebuilt by a full fold (the memo graph's
  from-scratch analog, but still O(n) with no graph to rebuild).
* container-field reassignment (``_grow``/``_rehash``) → the field
  barrier fires, the maintainer re-resolves the binding and full-folds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


def _is_int(value: Any) -> bool:
    return type(value) is int


def _is_bool(value: Any) -> bool:
    return type(value) is bool


@dataclass(frozen=True)
class Monoid:
    """One maintainable combine operator."""

    name: str
    #: Human description of the identity constraint on the base constant.
    identity: str
    #: Runtime term-type guard; a term outside it demotes the maintainer.
    term_ok: Callable[[Any], bool]
    #: One-line synthesized delta rule, for diagnostics and docs.
    delta_rule: str


MONOID_CATALOGUE: dict[str, Monoid] = {
    "sum": Monoid(
        "sum",
        "base case must return 0",
        _is_int,
        "agg += term_new - term_old; O(1) per dirty slot",
    ),
    "and": Monoid(
        "and",
        "base case must return True",
        _is_bool,
        "violations += (not term_new) - (not term_old); verdict is "
        "violations == 0",
    ),
    "min": Monoid(
        "min",
        "base case must return an integer sentinel (idempotent clamp)",
        _is_int,
        "lazy-deletion heap: tombstone term_old, push term_new; bounded "
        "rebuild when tombstones exceed live entries",
    ),
    "max": Monoid(
        "max",
        "base case must return an integer sentinel (idempotent clamp)",
        _is_int,
        "negated lazy-deletion heap (same rule as min)",
    ),
}
