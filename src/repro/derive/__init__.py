"""Derived maintenance: fold classification and synthesized O(1) repair.

The package behind the engine's ``strategy="derived"/"hybrid"`` axis:

* :mod:`repro.derive.classifier` — the admissibility judgment (linear
  commutative-monoid folds over one tracked container) and the DIT2xx
  why-not taxonomy.
* :mod:`repro.derive.catalogue` — the monoid catalogue: identity
  constraints, term-type guards, delta rules.
* :mod:`repro.derive.synthesis` — term extraction and combiner rebinding.
* :mod:`repro.derive.maintain` — the runtime maintainers and the
  per-engine :class:`~repro.derive.maintain.DerivedState` facade.
"""

from .catalogue import MONOID_CATALOGUE, Monoid
from .classifier import (
    ADMISSIBLE,
    FLOAT_SUM,
    INADMISSIBLE,
    OPAQUE_CALL,
    EntryClassification,
    FoldInfo,
    Rejection,
    classify_entry,
    classify_fold,
    clear_cache,
    entry_diagnostics,
)
from .maintain import DerivedState, FoldMaintainer
from .synthesis import build_combiner, compile_term

__all__ = [
    "ADMISSIBLE",
    "INADMISSIBLE",
    "OPAQUE_CALL",
    "FLOAT_SUM",
    "MONOID_CATALOGUE",
    "Monoid",
    "EntryClassification",
    "FoldInfo",
    "Rejection",
    "classify_entry",
    "classify_fold",
    "clear_cache",
    "entry_diagnostics",
    "DerivedState",
    "FoldMaintainer",
    "build_combiner",
    "compile_term",
]
