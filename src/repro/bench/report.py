"""Paper-style text rendering of benchmark results."""

from __future__ import annotations

from typing import Sequence

from .runner import CrossoverResult, SweepRow


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    def line(row: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(row))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_series(title: str, rows: Sequence[SweepRow]) -> str:
    """Figure 11-style output: one line per size, three curves + speedup."""
    table = format_table(
        ["size", "no-invariants (s)", "full check (s)", "DITTO (s)",
         "speedup"],
        [
            (
                row.size,
                f"{row.none_s:.3f}",
                f"{row.full_s:.3f}",
                f"{row.ditto_s:.3f}",
                f"{row.speedup:.2f}x",
            )
            for row in rows
        ],
    )
    return f"{title}\n{table}"


def ascii_chart(
    title: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
) -> str:
    """Plot named series against shared x positions as a text chart —
    the terminal rendering of the paper's figures.

    Each series is marked with the first letter of its name; overlapping
    points print ``*``.  X positions are spread evenly (the paper's size
    axes are roughly geometric, so even spacing reads like a log axis).
    """
    if not xs or not series:
        return f"{title}\n<no data>"
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length != len(xs)")
    all_values = [y for ys in series.values() for y in ys]
    lo = min(all_values)
    hi = max(all_values)
    span = (hi - lo) or 1.0
    plot_width = max(width, 2 * len(xs))
    columns = [
        round(i * (plot_width - 1) / max(1, len(xs) - 1))
        for i in range(len(xs))
    ]
    grid = [[" "] * plot_width for _ in range(height)]
    for name, ys in series.items():
        mark = name[0].upper()
        for i, y in enumerate(ys):
            row = height - 1 - round((y - lo) / span * (height - 1))
            col = columns[i]
            grid[row][col] = "*" if grid[row][col] not in (" ",) else mark
    y_hi = f"{hi:.3g}"
    y_lo = f"{lo:.3g}"
    label_width = max(len(y_hi), len(y_lo))
    lines = [title]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_hi.rjust(label_width)
        elif row_index == height - 1:
            label = y_lo.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * plot_width}")
    x_axis = [" "] * plot_width
    for i, x in enumerate(xs):
        text = f"{x:g}"
        start = min(columns[i], plot_width - len(text))
        for j, ch in enumerate(text):
            x_axis[start + j] = ch
    lines.append(f"{' ' * label_width}  {''.join(x_axis)}")
    legend = "   ".join(f"{name[0].upper()} = {name}" for name in series)
    lines.append(f"{' ' * label_width}  [{legend}]")
    return "\n".join(lines)


def figure11_chart(title: str, rows: Sequence[SweepRow]) -> str:
    """Render a Figure 11 panel (three curves over the size axis)."""
    xs = [row.size for row in rows]
    return ascii_chart(
        title,
        xs,
        {
            "none (no checks)": [row.none_s for row in rows],
            "full checks": [row.full_s for row in rows],
            "ditto (incremental)": [row.ditto_s for row in rows],
        },
    )


def format_phase_breakdown(
    phase_times: dict[str, float], total: float | None = None
) -> str:
    """Render "where did repair time go" as a table: one row per engine
    phase with seconds and share of the phase total.

    ``total``, when given (e.g. the soak's wall-clock time), adds an
    "unattributed" row for time spent outside the engine's phase timers —
    mutations, write barriers, and harness overhead."""
    phase_total = sum(phase_times.values())
    denominator = total if total and total > 0 else phase_total
    rows = []
    for phase, seconds in sorted(
        phase_times.items(), key=lambda item: -item[1]
    ):
        share = (100.0 * seconds / denominator) if denominator else 0.0
        rows.append((phase, f"{seconds:.4f}", f"{share:.1f}%"))
    if total is not None and total > phase_total:
        rest = total - phase_total
        share = 100.0 * rest / denominator if denominator else 0.0
        rows.append(("(unattributed)", f"{rest:.4f}", f"{share:.1f}%"))
    return format_table(["phase", "seconds", "share"], rows)


def format_crossover(results: Sequence[CrossoverResult]) -> str:
    """§5.1.1-style crossover table."""
    return format_table(
        ["workload", "crossover size"],
        [
            (
                r.workload,
                "n/a (never wins in range)"
                if r.crossover_size is None
                else r.crossover_size,
            )
            for r in results
        ],
    )
