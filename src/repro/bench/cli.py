"""Command-line harness regenerating every table and figure in the paper.

Usage::

    python -m repro.bench all            # everything (slow)
    python -m repro.bench fig11          # Figure 11, all three structures
    python -m repro.bench fig11 --workload red_black_tree
    python -m repro.bench crossover      # §5.1.1 crossover-size table
    python -m repro.bench speedup        # abstract's speedup-scaling claim
    python -m repro.bench fig14          # Figure 14, JSO size sweep
    python -m repro.bench netcols        # §5.2 per-frame event-loop times
    python -m repro.bench ablation       # naive-vs-optimistic + impl toggles
    python -m repro.bench soak           # one engine, per-phase breakdown

``--quick`` shrinks sizes/mod counts by ~4x for a fast sanity pass.

``--trace out.json`` attaches a Chrome trace-event sink
(:class:`repro.obs.ChromeTraceSink`) to every engine the experiment
constructs and writes the combined trace on exit — load it in Perfetto
(https://ui.perfetto.dev) to see the per-phase spans.  Tracing adds
per-event overhead, so don't compare traced timings against untraced ones.

``--profile PREFIX`` attaches one shared repair-cost attribution profiler
(:class:`repro.obs.RepairProfiler`) to every engine, prints the top
mutation sites by induced re-execution on exit, and writes
``PREFIX.folded.txt`` (flamegraph.pl / speedscope folded stacks) and
``PREFIX.speedscope.json``.  Same caveat as ``--trace``: profiled
timings are not comparable to unprofiled ones.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Any, Optional, Sequence

from ..core.engine import DittoEngine
from ..obs.profiler import RepairProfiler
from ..obs.sinks import ChromeTraceSink
from .runner import find_crossover, measure_modes, measure_soak, sweep
from .report import (
    figure11_chart,
    format_crossover,
    format_phase_breakdown,
    format_series,
    format_table,
)
from .workloads import get_workload


def _engine_options(args: argparse.Namespace) -> dict[str, Any]:
    """Engine kwargs shared by every experiment: the ``--trace`` sink and
    the ``--profile`` attribution profiler."""
    options: dict[str, Any] = {}
    sink = getattr(args, "trace_sink", None)
    if sink is not None:
        options["trace_sink"] = sink
    profiler = getattr(args, "profiler", None)
    if profiler is not None:
        options["profiler"] = profiler
    return options

#: Figure 11 structures and their paper-reported crossovers.
FIG11_WORKLOADS = ("ordered_list", "hash_table", "red_black_tree")
PAPER_CROSSOVERS = {
    "ordered_list": 250,
    "hash_table": 100,
    "red_black_tree": 200,
}

FULL_SIZES = (50, 100, 200, 400, 800, 1600, 3200)
QUICK_SIZES = (50, 200, 800)


def cmd_fig11(args: argparse.Namespace) -> dict[str, Any]:
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    mods = args.mods or (100 if args.quick else 400)
    workloads = [args.workload] if args.workload else list(FIG11_WORKLOADS)
    payload: dict[str, Any] = {"mods": mods, "workloads": {}}
    for name in workloads:
        rows = sweep(
            name, sizes, mods, seed=args.seed,
            engine_options=_engine_options(args),
        )
        print(
            format_series(
                f"\n[fig11-{name}] {mods} modifications per size "
                f"(paper: Figure 11, {name.replace('_', ' ')})",
                rows,
            )
        )
        print()
        print(figure11_chart(f"time (s) vs size — {name}", rows))
        payload["workloads"][name] = [
            {
                "size": row.size,
                "none_s": row.none_s,
                "full_s": row.full_s,
                "ditto_s": row.ditto_s,
                "speedup": row.speedup,
            }
            for row in rows
        ]
    return payload


def cmd_crossover(args: argparse.Namespace) -> dict[str, Any]:
    mods = args.mods or (60 if args.quick else 200)
    results = []
    for name in FIG11_WORKLOADS:
        result = find_crossover(
            name,
            mods=mods,
            lo=5,
            hi=600 if args.quick else 2000,
            seed=args.seed,
            repeats=2 if args.quick else 3,
        )
        results.append(result)
    print("\n[tab-crossover] smallest size where DITTO beats the full check")
    print(format_crossover(results))
    print(
        format_table(
            ["workload", "paper crossover"],
            [(k, v) for k, v in PAPER_CROSSOVERS.items()],
        )
    )
    return {
        "measured": {
            r.workload: r.crossover_size for r in results
        },
        "paper": dict(PAPER_CROSSOVERS),
    }


def cmd_speedup(args: argparse.Namespace) -> dict[str, Any]:
    sizes = (200, 800, 3200) if args.quick else (200, 800, 3200, 5000)
    # Enough modifications that the one-time graph build amortizes away,
    # approximating the paper's 10,000-modification protocol.
    mods = args.mods or (150 if args.quick else 400)
    print(
        "\n[claim-speedup] paper: ~5x at 5,000 elements, growing linearly;"
        " 7.5x average at 3,200"
    )
    rows = []
    for name in FIG11_WORKLOADS:
        series = sweep(name, sizes, mods, seed=args.seed)
        for row in series:
            rows.append((name, row.size, f"{row.speedup:.2f}x"))
    print(format_table(["workload", "size", "speedup (full/DITTO)"], rows))
    at_3200 = [
        float(r[2][:-1]) for r in rows if r[1] == 3200
    ]
    if at_3200:
        print(
            f"average speedup at 3200 elements: "
            f"{sum(at_3200) / len(at_3200):.2f}x (paper: 7.5x)"
        )
    return {
        "series": [
            {"workload": w, "size": s, "speedup": float(sp[:-1])}
            for w, s, sp in rows
        ],
        "avg_at_3200": (sum(at_3200) / len(at_3200)) if at_3200 else None,
    }


def cmd_fig14(args: argparse.Namespace) -> dict[str, Any]:
    sizes = (50, 100, 200) if args.quick else (50, 100, 200, 400, 800)
    print("\n[fig14-jso] end-to-end obfuscation time vs input size")
    rows = []
    payload = []
    for size in sizes:
        measured = measure_modes(
            "jso", size, mods=size, modes=("none", "full", "ditto"),
            seed=args.seed,
        )
        full_s = measured["full"].seconds
        ditto_s = measured["ditto"].seconds
        rows.append(
            (
                size,
                f"{measured['none'].seconds:.3f}",
                f"{full_s:.3f}",
                f"{ditto_s:.3f}",
                f"{full_s / ditto_s:.2f}x",
            )
        )
        payload.append(
            {
                "functions": size,
                "none_s": measured["none"].seconds,
                "full_s": full_s,
                "ditto_s": ditto_s,
            }
        )
    print(
        format_table(
            ["functions", "no check (s)", "full check (s)", "DITTO (s)",
             "speedup"],
            rows,
        )
    )
    return {"series": payload}


def cmd_netcols(args: argparse.Namespace) -> dict[str, Any]:
    frames = args.mods or (100 if args.quick else 400)
    width = 24 if args.quick else 48
    print(
        f"\n[claim-netcols] average event-loop frame time, {width}x20 grid "
        f"(paper: 80ms full -> 15ms DITTO on its grid/machine)"
    )
    rows = []
    payload: dict[str, Any] = {"grid_width": width, "frames": frames,
                               "ms_per_frame": {}}
    for mode in ("none", "full", "ditto"):
        measured = measure_modes(
            "netcols", width, frames, (mode,), seed=args.seed
        )[mode]
        per_frame = 1000.0 * measured.seconds / frames
        payload["ms_per_frame"][mode] = per_frame
        rows.append((mode, f"{per_frame:.3f} ms/frame"))
    print(format_table(["mode", "frame time"], rows))
    return payload


def cmd_ablation(args: argparse.Namespace) -> dict[str, Any]:
    size = 200 if args.quick else 800
    mods = args.mods or (60 if args.quick else 200)
    print(f"\n[abl-optimistic] naive (Fig. 6) vs optimistic (Fig. 7), "
          f"size {size}, {mods} mods")
    rows = []
    payload: dict[str, Any] = {"size": size, "mods": mods,
                               "optimistic_vs_naive": {}, "variants": {},
                               "phase_times": {}}
    for name in FIG11_WORKLOADS:
        measured = measure_modes(
            name, size, mods, ("full", "naive", "ditto"), seed=args.seed,
            engine_options=_engine_options(args),
        )
        payload["optimistic_vs_naive"][name] = {
            mode: measured[mode].seconds
            for mode in ("full", "naive", "ditto")
        }
        payload["phase_times"][name] = {
            mode: measured[mode].phase_times
            for mode in ("naive", "ditto")
        }
        rows.append(
            (
                name,
                f"{measured['full'].seconds:.3f}",
                f"{measured['naive'].seconds:.3f}",
                f"{measured['ditto'].seconds:.3f}",
            )
        )
    print(format_table(
        ["workload", "full (s)", "naive (s)", "optimistic (s)"], rows
    ))

    print(f"\n[abl-impl] implementation-choice toggles, ordered_list "
          f"size {size}")
    variants = [
        ("default", {}),
        ("no leaf-call optimization", {"leaf_optimization": False}),
        ("step-limit fallback (tight)", {"step_limit": 50_000}),
    ]
    rows = []
    for label, options in variants:
        measured = measure_modes(
            "ordered_list", size, mods, ("ditto",), seed=args.seed,
            engine_options={**_engine_options(args), **options},
        )["ditto"]
        payload["variants"][label] = measured.seconds
        rows.append((label, f"{measured.seconds:.3f}"))
    print(format_table(["engine variant", "DITTO (s)"], rows))
    return payload


def cmd_overhead(args: argparse.Namespace) -> dict[str, Any]:
    """Space overhead of the incrementalization data structures (§5.1.1
    mentions "some baseline overhead due to write barriers and the
    incrementalization data structures that have to be maintained")."""
    from ..core.engine import DittoEngine
    from ..debug import graph_stats
    from .runner import run_with_big_stack
    from .workloads import get_workload

    sizes = (100, 400) if args.quick else (100, 400, 1600)
    workloads = (
        [args.workload] if args.workload else list(FIG11_WORKLOADS)
    )
    print("\n[ext-overhead] computation-graph size per structure size")
    rows = []
    payload: dict[str, Any] = {}

    def measure(name: str, size: int) -> dict[str, float]:
        workload = get_workload(name, size, seed=args.seed)
        engine = DittoEngine(workload.entry, **_engine_options(args))
        try:
            engine.run(*workload.check_args())
            stats = graph_stats(engine)
            stats["reverse_map"] = engine.table.reverse_map_size()
            return stats
        finally:
            engine.close()

    for name in workloads:
        payload[name] = {}
        for size in sizes:
            stats = run_with_big_stack(lambda: measure(name, size))
            payload[name][size] = stats
            rows.append(
                (
                    name,
                    size,
                    int(stats["nodes"]),
                    int(stats["edges"]),
                    int(stats["implicits"]),
                    int(stats["reverse_map"]),
                    f"{stats['nodes'] / size:.2f}",
                )
            )
    print(
        format_table(
            ["workload", "size", "graph nodes", "edges", "implicit args",
             "reverse-map keys", "nodes/element"],
            rows,
        )
    )
    return payload


def cmd_soak(args: argparse.Namespace) -> dict[str, Any]:
    """Per-phase breakdown of one long mutate+check soak: where does
    repair time go?  (The paper's overhead discussion, made concrete.)"""
    size = 200 if args.quick else 1000
    mods = args.mods or (100 if args.quick else 500)
    workload = args.workload or "ordered_list"
    print(f"\n[obs-soak] {workload} size {size}, {mods} mutate+check "
          f"events, mode ditto")
    result = measure_soak(
        workload, size, mods, mode="ditto", seed=args.seed,
        engine_options=_engine_options(args),
    )
    print(format_phase_breakdown(result.phase_times, total=result.seconds))
    durations = sorted(result.run_durations)
    if durations:
        mid = durations[len(durations) // 2]
        p95 = durations[min(len(durations) - 1,
                            int(0.95 * len(durations)))]
        print(
            f"\nper-run latency: median {mid * 1e3:.3f} ms, "
            f"p95 {p95 * 1e3:.3f} ms, max {durations[-1] * 1e3:.3f} ms"
        )
    print(f"graph size after soak: {result.graph_size} nodes")
    return {
        "workload": result.workload,
        "size": result.size,
        "mods": result.mods,
        "mode": result.mode,
        "seconds": result.seconds,
        "phase_times": result.phase_times,
        "run_durations": result.run_durations,
        "counters": result.counters,
        "graph_size": result.graph_size,
    }


COMMANDS = {
    "fig11": cmd_fig11,
    "crossover": cmd_crossover,
    "speedup": cmd_speedup,
    "fig14": cmd_fig14,
    "netcols": cmd_netcols,
    "ablation": cmd_ablation,
    "overhead": cmd_overhead,
    "soak": cmd_soak,
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment", choices=sorted(COMMANDS) + ["all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument("--workload", help="restrict fig11 to one workload")
    parser.add_argument("--mods", type=int, help="modifications per run")
    parser.add_argument("--seed", type=int, default=0xD1770)
    parser.add_argument(
        "--quick", action="store_true", help="smaller sizes, faster run"
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="also write the measured data as JSON (for CI/regression "
             "tracking)",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a Chrome trace-event file of every engine's phase "
             "spans (open in Perfetto)",
    )
    parser.add_argument(
        "--profile", metavar="PREFIX",
        help="attach the repair-cost attribution profiler; writes "
             "PREFIX.folded.txt and PREFIX.speedscope.json and prints "
             "the top mutation sites by induced re-execution",
    )
    args = parser.parse_args(argv)

    sink: Optional[ChromeTraceSink] = None
    if args.trace:
        sink = ChromeTraceSink(args.trace)
    args.trace_sink = sink
    args.profiler = RepairProfiler() if args.profile else None

    start = time.perf_counter()
    payload: dict[str, Any] = {}
    try:
        if args.experiment == "all":
            for name in ("fig11", "crossover", "speedup", "fig14",
                         "netcols", "ablation", "overhead", "soak"):
                payload[name] = COMMANDS[name](args)
        else:
            payload[args.experiment] = COMMANDS[args.experiment](args)
    finally:
        if sink is not None:
            sink.close()
            print(f"\n(Chrome trace written to {args.trace} — "
                  f"{sink.events_emitted} events; open in Perfetto)")
        if args.profiler is not None:
            print()
            print(args.profiler.report(top=10))
            folded_path = f"{args.profile}.folded.txt"
            speedscope_path = f"{args.profile}.speedscope.json"
            args.profiler.write_folded(folded_path)
            args.profiler.write_speedscope(speedscope_path)
            print(f"\n(profile written to {folded_path} and "
                  f"{speedscope_path} — load the latter in "
                  f"https://www.speedscope.app)")
            args.profiler.detach_all()
    elapsed = time.perf_counter() - start
    if args.json:
        payload["meta"] = {"quick": args.quick, "seed": args.seed,
                           "seconds": elapsed}
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\n(JSON written to {args.json})")
    print(f"\n(total bench time: {elapsed:.1f}s)")
    return 0
