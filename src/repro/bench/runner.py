"""Timed experiment runner: mode comparisons, size sweeps, crossover search.

Reproduces the paper's measurement protocol (§5.1): "Each data structure is
instantiated at several sizes and then modified N times.  … In each case,
wall-clock time, including GC and all other VM and incrementalization
overheads, is measured."  A measurement interleaves one mutation with one
invariant check, under one of three modes:

* ``"none"``   — mutations only (Figure 11's "no invariant checks" curve);
* ``"full"``   — the original recursive check after every mutation
  (Figure 11's "invariants" curve);
* ``"ditto"``  — the optimistic incrementalized check (Figure 11's
  "incrementalized invariants" curve);
* ``"naive"``  — the Figure 6 incrementalizer, for the ablation benches.

All DITTO overheads are inside the timed region: engine construction
(instrumentation, static analysis), write barriers during mutations, and
graph maintenance — matching the paper's "all overheads considered"
crossover definition.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.engine import DittoEngine
from .workloads import Workload, get_workload

MODES = ("none", "full", "ditto", "naive")

#: Recursive checks on large structures exceed CPython's default limit.
_RECURSION_LIMIT = 1_000_000
#: Worker-thread C stack: deep recursive checks (a 5,000-element list is
#: ~30k interpreter frames) overflow the default thread stack.
_STACK_BYTES = 512 * 1024 * 1024


def _ensure_recursion_room() -> None:
    if sys.getrecursionlimit() < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)


def run_with_big_stack(fn: Callable[[], object]) -> object:
    """Run ``fn`` on a thread with a large C stack, so deeply recursive
    checks (list-shaped structures at Figure 11 sizes) cannot overflow."""
    _ensure_recursion_room()
    result: list[object] = []
    error: list[BaseException] = []

    def target() -> None:
        try:
            result.append(fn())
        except BaseException as exc:  # propagate to the caller
            error.append(exc)

    old_size = threading.stack_size(_STACK_BYTES)
    try:
        worker = threading.Thread(target=target, name="ditto-bench")
        worker.start()
        worker.join()
    finally:
        threading.stack_size(old_size)
    if error:
        raise error[0]
    return result[0]


@dataclass
class ModeResult:
    """One timed measurement."""

    workload: str
    size: int
    mods: int
    mode: str
    seconds: float
    checks: int = 0
    #: Engine-phase wall-clock totals over the measurement (empty for the
    #: ``none``/``full`` modes, which run no engine).
    phase_times: dict[str, float] = field(default_factory=dict)


@dataclass
class SoakResult:
    """One long mutate+check soak of a single engine: where repair time
    went, per phase, plus the per-run latency distribution."""

    workload: str
    size: int
    mods: int
    mode: str
    seconds: float
    #: Sum of per-run phase durations across the whole soak.
    phase_times: dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds of each incremental run, in order.
    run_durations: list[float] = field(default_factory=list)
    #: Lifetime engine-counter deltas over the soak (dirty_execs, ...).
    counters: dict[str, int] = field(default_factory=dict)
    graph_size: int = 0


@dataclass
class SweepRow:
    """Figure 11 row: one size, all modes."""

    size: int
    none_s: float
    full_s: float
    ditto_s: float
    speedup: float  # full / ditto


@dataclass
class CrossoverResult:
    """§5.1.1 crossover: the smallest size where the incrementalized check
    beats the original, all overheads considered."""

    workload: str
    crossover_size: Optional[int]
    probes: list[tuple[int, float, float]] = field(default_factory=list)


def run_cycle(
    workload: Workload,
    mods: int,
    mode: str,
    engine: Optional[DittoEngine] = None,
) -> int:
    """Run ``mods`` mutation+check events; returns number of checks run.
    The check is executed after every mutation, as at the method
    entry/exits in the paper's Figure 1 usage."""
    checks = 0
    if mode == "none":
        for _ in range(mods):
            workload.mutate()
        return 0
    if mode == "full":
        for _ in range(mods):
            workload.mutate()
            result = workload.run_full_check()
            checks += 1
            if result is False:
                raise AssertionError("invariant unexpectedly violated")
        return checks
    assert engine is not None
    for _ in range(mods):
        workload.mutate()
        result = engine.run(*workload.check_args())
        checks += 1
        if result is False:
            raise AssertionError("invariant unexpectedly violated")
    return checks


def measure_modes(
    workload_name: str,
    size: int,
    mods: int,
    modes: Sequence[str] = ("none", "full", "ditto"),
    seed: int = 0xD1770,
    engine_options: Optional[dict] = None,
) -> dict[str, ModeResult]:
    """Time each mode on a fresh, identically-seeded workload instance.

    Runs on a large-stack worker thread (see :func:`run_with_big_stack`)."""
    return run_with_big_stack(
        lambda: _measure_modes_inner(
            workload_name, size, mods, modes, seed, engine_options
        )
    )


def _measure_modes_inner(
    workload_name: str,
    size: int,
    mods: int,
    modes: Sequence[str],
    seed: int,
    engine_options: Optional[dict],
) -> dict[str, ModeResult]:
    results: dict[str, ModeResult] = {}
    for mode in modes:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}")
        workload = get_workload(workload_name, size, seed=seed)
        engine = None
        if mode in ("ditto", "naive"):
            # Engine construction is the paper's *offline* transformation
            # ("very small offline overhead"); it happens once per program,
            # outside the timed region.  Everything at runtime — the
            # initial graph-building check, write barriers, graph
            # maintenance — is timed.
            engine = DittoEngine(
                workload.entry, mode=mode, **(engine_options or {})
            )
        start = time.perf_counter()
        if engine is not None:
            engine.run(*workload.check_args())  # initial graph build
        elif mode == "full":
            workload.run_full_check()
        checks = run_cycle(workload, mods, mode, engine)
        elapsed = time.perf_counter() - start
        phase_times: dict[str, float] = {}
        if engine is not None:
            phase_times = {
                phase: seconds
                for phase, seconds in engine.stats.timers().items()
                if seconds > 0.0
            }
            engine.close()
        results[mode] = ModeResult(
            workload=workload_name,
            size=size,
            mods=mods,
            mode=mode,
            seconds=elapsed,
            checks=checks,
            phase_times=phase_times,
        )
    return results


def measure_soak(
    workload_name: str,
    size: int,
    mods: int,
    mode: str = "ditto",
    seed: int = 0xD1770,
    engine_options: Optional[dict] = None,
) -> SoakResult:
    """One engine, ``mods`` mutate+check events, per-run reporting: the
    phase breakdown the paper's overhead discussion calls for.

    Unlike :func:`measure_modes` (opaque wall clock, minimal overhead)
    this uses ``run_with_report`` per event to capture each run's phase
    times and latency; use it for the breakdown, not for crossovers."""
    return run_with_big_stack(
        lambda: _measure_soak_inner(
            workload_name, size, mods, mode, seed, engine_options
        )
    )


def _measure_soak_inner(
    workload_name: str,
    size: int,
    mods: int,
    mode: str,
    seed: int,
    engine_options: Optional[dict],
) -> SoakResult:
    workload = get_workload(workload_name, size, seed=seed)
    engine = DittoEngine(workload.entry, mode=mode, **(engine_options or {}))
    try:
        start = time.perf_counter()
        engine.run(*workload.check_args())  # initial graph build
        before = engine.stats.snapshot()
        phase_times: dict[str, float] = {}
        durations: list[float] = []
        for _ in range(mods):
            workload.mutate()
            report = engine.run_with_report(*workload.check_args())
            if report.result is False:
                raise AssertionError("invariant unexpectedly violated")
            durations.append(report.duration)
            for phase, seconds in report.phase_times.items():
                phase_times[phase] = phase_times.get(phase, 0.0) + seconds
        elapsed = time.perf_counter() - start
        return SoakResult(
            workload=workload_name,
            size=size,
            mods=mods,
            mode=mode,
            seconds=elapsed,
            phase_times=phase_times,
            run_durations=durations,
            counters=engine.stats.delta(before),
            graph_size=engine.graph_size,
        )
    finally:
        engine.close()


def sweep(
    workload_name: str,
    sizes: Sequence[int],
    mods: int,
    seed: int = 0xD1770,
    engine_options: Optional[dict] = None,
) -> list[SweepRow]:
    """Figure 11: one row per size with all three curves."""
    rows = []
    for size in sizes:
        measured = measure_modes(
            workload_name, size, mods, ("none", "full", "ditto"), seed,
            engine_options=engine_options,
        )
        full_s = measured["full"].seconds
        ditto_s = measured["ditto"].seconds
        rows.append(
            SweepRow(
                size=size,
                none_s=measured["none"].seconds,
                full_s=full_s,
                ditto_s=ditto_s,
                speedup=(full_s / ditto_s) if ditto_s > 0 else float("inf"),
            )
        )
    return rows


def speedup_series(
    workload_name: str,
    sizes: Sequence[int],
    mods: int,
    seed: int = 0xD1770,
) -> list[tuple[int, float]]:
    """(size, full/ditto speedup) pairs — the abstract's scaling claim."""
    return [
        (row.size, row.speedup)
        for row in sweep(workload_name, sizes, mods, seed)
    ]


def find_crossover(
    workload_name: str,
    mods: int = 200,
    lo: int = 10,
    hi: int = 2000,
    seed: int = 0xD1770,
    repeats: int = 3,
    engine_options: Optional[dict] = None,
) -> CrossoverResult:
    """Binary-search the smallest size at which the DITTO check beats the
    full check, all overheads considered (§5.1.1).

    Each probe times both modes ``repeats`` times and keeps the minimum, to
    damp scheduler noise.  Returns ``crossover_size=None`` if DITTO never
    wins below ``hi``.  ``engine_options`` are forwarded to the DITTO
    engine (e.g. ``{"specialize": "off"}`` for per-tier crossovers).
    """
    probes: list[tuple[int, float, float]] = []

    def ditto_wins(size: int) -> tuple[bool, float, float]:
        best_full = min(
            measure_modes(workload_name, size, mods, ("full",), seed)[
                "full"
            ].seconds
            for _ in range(repeats)
        )
        best_ditto = min(
            measure_modes(
                workload_name, size, mods, ("ditto",), seed,
                engine_options=engine_options,
            )["ditto"].seconds
            for _ in range(repeats)
        )
        probes.append((size, best_full, best_ditto))
        return best_ditto < best_full, best_full, best_ditto

    wins_hi, _, _ = ditto_wins(hi)
    if not wins_hi:
        return CrossoverResult(workload_name, None, probes)
    wins_lo, _, _ = ditto_wins(lo)
    if wins_lo:
        return CrossoverResult(workload_name, lo, probes)
    while hi - lo > max(1, lo // 8):
        mid = (lo + hi) // 2
        wins, _, _ = ditto_wins(mid)
        if wins:
            hi = mid
        else:
            lo = mid
    return CrossoverResult(workload_name, hi, probes)
