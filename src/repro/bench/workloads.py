"""The paper's benchmark workloads (§5.1 / §5.2).

Each workload knows how to build a structure at a given size and how to
apply one mutation drawn from the paper's operation mix:

* **Ordered list** — 50 % insertion of a random element, 25 % deletion of a
  random element, 25 % deletion of the first element (queue-style).
* **Hash table** — 50 % random insertions, 50 % random deletions.
* **Red-black tree** — 50 % random insertions, 50 % random deletions.
* **Netcols** — one bot frame per mutation (a piece drop with cascade
  resolution).
* **JSO** — one synthetic function declaration fed to the obfuscator per
  mutation.

Deletions pick "a random element … from the set of elements guaranteed to
fulfill the operation", i.e. an element actually present.  Workloads are
deterministic in their seed.  Extension workloads cover the non-paper
structures (AVL, heap, skip list, doubly-linked list) with the 50/50 mix.
"""

from __future__ import annotations

import random
from typing import Any

from ..apps.jso import JsObfuscator, generate_program, jso_invariant
from ..apps.netcols import NetcolsBot, NetcolsGame, netcols_invariant
from ..instrument.registry import CheckFunction
from ..structures.avl_tree import AVLTree, avl_invariant
from ..structures.binary_heap import BinaryHeap, heap_invariant
from ..structures.btree import BTree, btree_invariant
from ..structures.doubly_linked_list import DoublyLinkedList, dll_invariant
from ..structures.hash_table import HashTable, hash_table_invariant
from ..structures.ordered_list import OrderedIntList, is_ordered
from ..structures.red_black_tree import RedBlackTree, rbt_invariant
from ..structures.rope import Rope, rope_invariant
from ..structures.skip_list import SkipList, skip_list_invariant

_VALUE_SPACE = 1 << 30


class Workload:
    """One benchmark workload: a structure factory plus a mutation mix.

    Subclasses set :attr:`entry` (the invariant check's entry point) and
    implement :meth:`_build` and :meth:`mutate`; :meth:`check_args` maps the
    structure to the entry point's argument tuple.
    """

    name: str = "workload"
    entry: CheckFunction

    def __init__(self, size: int, seed: int = 0xD1770):
        self.size = size
        self.rng = random.Random(seed)
        self.structure = self._build(size)

    def _build(self, size: int) -> Any:
        raise NotImplementedError

    def mutate(self) -> None:
        """Apply one mutation from the paper's operation mix."""
        raise NotImplementedError

    def check_args(self) -> tuple:
        """Arguments for the invariant's entry-point function."""
        return (self.structure,)

    def run_full_check(self) -> Any:
        """Run the original (un-incrementalized) check once."""
        return self.entry(*self.check_args())


class OrderedListWorkload(Workload):
    """§5.1 ordered list: 50 % insert / 25 % delete / 25 % delete-first."""

    name = "ordered_list"
    entry = is_ordered

    def _build(self, size: int) -> OrderedIntList:
        lst = OrderedIntList()
        self._values: list[int] = []
        for _ in range(size):
            value = self.rng.randrange(_VALUE_SPACE)
            lst.insert(value)
            self._values.append(value)
        self._values.sort()
        return lst

    def check_args(self) -> tuple:
        return (self.structure.head,)

    def mutate(self) -> None:
        roll = self.rng.random()
        if roll < 0.5 or not self._values:
            value = self.rng.randrange(_VALUE_SPACE)
            self.structure.insert(value)
            # Keep the mirror sorted with a binary insert.
            lo, hi = 0, len(self._values)
            while lo < hi:
                mid = (lo + hi) // 2
                if self._values[mid] < value:
                    lo = mid + 1
                else:
                    hi = mid
            self._values.insert(lo, value)
        elif roll < 0.75:
            index = self.rng.randrange(len(self._values))
            self.structure.delete(self._values.pop(index))
        else:
            self.structure.delete_first()
            self._values.pop(0)


class HashTableWorkload(Workload):
    """§5.1 hash table: 50 % random insertions, 50 % random deletions."""

    name = "hash_table"
    entry = hash_table_invariant

    def _build(self, size: int) -> HashTable:
        table = HashTable(capacity=max(16, 2 * size))
        self._keys: list[int] = []
        present: set[int] = set()
        while len(present) < size:
            key = self.rng.randrange(_VALUE_SPACE)
            if key not in present:
                present.add(key)
                table.put(key, key)
                self._keys.append(key)
        return table

    def mutate(self) -> None:
        if (self.rng.random() < 0.5 or not self._keys):
            key = self.rng.randrange(_VALUE_SPACE)
            if key not in self.structure:
                self._keys.append(key)
            self.structure.put(key, key)
        else:
            index = self.rng.randrange(len(self._keys))
            self.structure.remove(self._keys.pop(index))


class RedBlackTreeWorkload(Workload):
    """§5.1 red-black tree: 50 % random insertions, 50 % random deletions."""

    name = "red_black_tree"
    entry = rbt_invariant

    def _build(self, size: int) -> RedBlackTree:
        tree = RedBlackTree()
        self._keys: list[int] = []
        present: set[int] = set()
        while len(present) < size:
            key = self.rng.randrange(_VALUE_SPACE)
            if key not in present:
                present.add(key)
                tree.insert(key, key)
                self._keys.append(key)
        return tree

    def mutate(self) -> None:
        if self.rng.random() < 0.5 or not self._keys:
            key = self.rng.randrange(_VALUE_SPACE)
            if key not in self.structure:
                self._keys.append(key)
            self.structure.insert(key, key)
        else:
            index = self.rng.randrange(len(self._keys))
            self.structure.delete(self._keys.pop(index))


class AVLTreeWorkload(Workload):
    """Extension: AVL tree, 50/50 insert/delete."""

    name = "avl_tree"
    entry = avl_invariant

    def _build(self, size: int) -> AVLTree:
        tree = AVLTree()
        self._keys: list[int] = []
        present: set[int] = set()
        while len(present) < size:
            key = self.rng.randrange(_VALUE_SPACE)
            if key not in present:
                present.add(key)
                tree.insert(key)
                self._keys.append(key)
        return tree

    def mutate(self) -> None:
        if self.rng.random() < 0.5 or not self._keys:
            key = self.rng.randrange(_VALUE_SPACE)
            if key not in self.structure:
                self._keys.append(key)
            self.structure.insert(key)
        else:
            index = self.rng.randrange(len(self._keys))
            self.structure.delete(self._keys.pop(index))


class BinaryHeapWorkload(Workload):
    """Extension: binary heap, 60 % push / 40 % pop."""

    name = "binary_heap"
    entry = heap_invariant

    def _build(self, size: int) -> BinaryHeap:
        heap = BinaryHeap(capacity=max(16, 4 * size))
        for _ in range(size):
            heap.push(self.rng.randrange(_VALUE_SPACE))
        return heap

    def mutate(self) -> None:
        if self.rng.random() < 0.6 or len(self.structure) == 0:
            self.structure.push(self.rng.randrange(_VALUE_SPACE))
        else:
            self.structure.pop()


class BTreeWorkload(Workload):
    """Extension: B-tree (t=3), 50/50 insert/delete."""

    name = "btree"
    entry = btree_invariant

    def _build(self, size: int) -> BTree:
        tree = BTree(t=3)
        self._keys: list[int] = []
        present: set[int] = set()
        while len(present) < size:
            key = self.rng.randrange(_VALUE_SPACE)
            if key not in present:
                present.add(key)
                tree.insert(key)
                self._keys.append(key)
        return tree

    def mutate(self) -> None:
        if self.rng.random() < 0.5 or not self._keys:
            key = self.rng.randrange(_VALUE_SPACE)
            if self.structure.insert(key):
                self._keys.append(key)
        else:
            index = self.rng.randrange(len(self._keys))
            self.structure.delete(self._keys.pop(index))


class SkipListWorkload(Workload):
    """Extension: skip list, 50/50 insert/delete."""

    name = "skip_list"
    entry = skip_list_invariant

    def _build(self, size: int) -> SkipList:
        lst = SkipList(seed=self.rng.randrange(1 << 30))
        self._values: list[int] = []
        present: set[int] = set()
        while len(present) < size:
            value = self.rng.randrange(_VALUE_SPACE)
            if value not in present:
                present.add(value)
                lst.insert(value)
                self._values.append(value)
        return lst

    def mutate(self) -> None:
        if self.rng.random() < 0.5 or not self._values:
            value = self.rng.randrange(_VALUE_SPACE)
            if self.structure.insert(value):
                self._values.append(value)
        else:
            index = self.rng.randrange(len(self._values))
            self.structure.delete(self._values.pop(index))


class DoublyLinkedListWorkload(Workload):
    """Extension: deque usage, pushes and pops at both ends."""

    name = "doubly_linked_list"
    entry = dll_invariant

    def _build(self, size: int) -> DoublyLinkedList:
        lst = DoublyLinkedList()
        for i in range(size):
            lst.push_back(i)
        return lst

    def mutate(self) -> None:
        roll = self.rng.random()
        if roll < 0.3 or len(self.structure) == 0:
            self.structure.push_back(self.rng.randrange(_VALUE_SPACE))
        elif roll < 0.6:
            self.structure.push_front(self.rng.randrange(_VALUE_SPACE))
        elif roll < 0.8:
            self.structure.pop_front()
        else:
            self.structure.pop_back()


class RopeWorkload(Workload):
    """Extension: text-buffer edits — 60 % insert / 40 % delete at random
    positions.  ``size`` is the initial character count."""

    name = "rope"
    entry = rope_invariant

    def _build(self, size: int) -> Rope:
        alphabet = "abcdefghijklmnopqrstuvwxyz "
        text = "".join(
            alphabet[self.rng.randrange(len(alphabet))] for _ in range(size)
        )
        return Rope(text)

    def mutate(self) -> None:
        rope = self.structure
        n = len(rope)
        if self.rng.random() < 0.6 or n < 8:
            index = self.rng.randrange(n + 1)
            rope.insert(index, "word"[: 1 + self.rng.randrange(4)])
        else:
            start = self.rng.randrange(n - 4)
            rope.delete(start, start + 1 + self.rng.randrange(3))


class NetcolsWorkload(Workload):
    """§5.2 Netcols: one bot frame per mutation.  ``size`` selects the grid
    width (height fixed at 20), scaling the invariant's work."""

    name = "netcols"
    entry = netcols_invariant

    def _build(self, size: int) -> NetcolsGame:
        width = max(4, size)
        game = NetcolsGame(width=width, height=20)
        self._bot = NetcolsBot(game, seed=self.rng.randrange(1 << 30))
        # Warm the board so checks see realistic stacks.
        for _ in range(2 * width):
            self._bot.step()
        return game

    def mutate(self) -> None:
        self._bot.step()


class JsoWorkload(Workload):
    """§5.2 JSO: ``size`` is the number of synthetic function declarations;
    each mutation feeds one declaration chunk to the obfuscator."""

    name = "jso"
    entry = jso_invariant

    def _build(self, size: int) -> JsObfuscator:
        jso = JsObfuscator()
        self._chunks = list(
            generate_program(size, seed=self.rng.randrange(1 << 30))
        )
        self._cursor = 0
        self.output: list[str] = []
        return jso

    def exhausted(self) -> bool:
        return self._cursor >= len(self._chunks)

    def mutate(self) -> None:
        if self._cursor < len(self._chunks):
            self.output.append(
                self.structure.feed(self._chunks[self._cursor])
            )
            self._cursor += 1
        else:
            # Churn: retract and re-add an early mapping.
            node = self.structure.names
            if node is not None:
                name = node.value
                self.structure.drop_name(name)
                self.structure.feed(f"function {name}(x) {{ return x; }}\n")


#: Registry of workloads by name.
WORKLOADS: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (
        OrderedListWorkload,
        HashTableWorkload,
        RedBlackTreeWorkload,
        AVLTreeWorkload,
        BinaryHeapWorkload,
        BTreeWorkload,
        RopeWorkload,
        SkipListWorkload,
        DoublyLinkedListWorkload,
        NetcolsWorkload,
        JsoWorkload,
    )
}


def get_workload(
    name: str, size: int, seed: int = 0xD1770
) -> Workload:
    """Instantiate a registered workload."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return cls(size, seed=seed)
