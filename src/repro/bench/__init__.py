"""Benchmark harness reproducing every table and figure in the paper.

* :mod:`repro.bench.workloads` — the paper's data-structure mutation mixes.
* :mod:`repro.bench.runner` — timed sweeps, speedups, crossover search.
* :mod:`repro.bench.report` — paper-style text tables.
* ``python -m repro.bench`` — regenerate any experiment from the command
  line (see EXPERIMENTS.md for the experiment ids).
"""

from .workloads import (
    WORKLOADS,
    HashTableWorkload,
    JsoWorkload,
    NetcolsWorkload,
    OrderedListWorkload,
    RedBlackTreeWorkload,
    Workload,
    get_workload,
)
from .runner import (
    CrossoverResult,
    SoakResult,
    SweepRow,
    find_crossover,
    measure_modes,
    measure_soak,
    run_with_big_stack,
    speedup_series,
    sweep,
)
from .report import (
    ascii_chart,
    figure11_chart,
    format_phase_breakdown,
    format_series,
    format_table,
)

__all__ = [
    "ascii_chart",
    "CrossoverResult",
    "figure11_chart",
    "find_crossover",
    "run_with_big_stack",
    "format_phase_breakdown",
    "format_series",
    "format_table",
    "get_workload",
    "HashTableWorkload",
    "JsoWorkload",
    "measure_modes",
    "measure_soak",
    "NetcolsWorkload",
    "OrderedListWorkload",
    "RedBlackTreeWorkload",
    "SoakResult",
    "speedup_series",
    "sweep",
    "SweepRow",
    "Workload",
    "WORKLOADS",
]
