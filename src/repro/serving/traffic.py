"""Open-loop traffic generator for the serving benchmark.

Drives an :class:`~repro.serving.pool.EnginePool` the way a deployment
would: ≥1000 registered tenants, a mixed mutate/check stream arriving in
bursts that do **not** wait for completions (open loop — arrival rate is
independent of service rate, so overload manifests as shed load rather
than as a conveniently slowed-down producer), a small set of pathological
tenants (poisoned checks that raise, slow checks that crawl) to exercise
breakers and deadlines under load.

The output dict is the ``BENCH_serving.json`` record: p50/p99 check
latency, shed rate, breaker trips, and the status histogram.  The CI gate
(``benchmarks/bench_serving.py --check``) fails on >20% p99 regression
against the committed baseline.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional

from ..qa.models import get_model
from ..resilience.degradation import BreakerPolicy
from .pool import EnginePool, PoolConfig
from .results import OK


@dataclass(frozen=True)
class TrafficConfig:
    """Seeded configuration for one open-loop traffic run."""

    tenants: int = 1000
    structure: str = "ordered_list"
    #: Total check submissions (mutations ride along per check).
    checks: int = 4000
    mutates_per_check: int = 2
    #: Checks submitted per burst before collecting completions.
    burst: int = 64
    seed: int = 0
    shards: int = 8
    workers: int = 8
    #: Kept below ``burst`` so overload actually sheds.
    max_queue: int = 32
    deadline: float = 0.1
    #: Fraction of tenants whose checks raise (drives breaker trips).
    poison_fraction: float = 0.005
    #: Fraction of tenants whose checks crawl (drives queue pressure).
    slow_fraction: float = 0.005
    slow_tick: float = 0.03

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


def _percentile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def run_traffic(config: Optional[TrafficConfig] = None) -> dict:
    """Run one open-loop campaign and return the benchmark record."""
    config = config if config is not None else TrafficConfig()
    rng = random.Random(config.seed)
    model = get_model(config.structure)

    pool = EnginePool(PoolConfig(
        shards=config.shards,
        workers=config.workers,
        max_queue=config.max_queue,
        deadline=config.deadline,
        on_deadline="degrade",
        breaker=BreakerPolicy(
            failure_threshold=3,
            recovery_time=0.05,
            max_recovery_time=0.5,
        ),
        step_hook_interval=2,
    ))
    wall_start = time.perf_counter()
    try:
        keys = [f"tenant-{i}" for i in range(config.tenants)]
        structures = {}
        setup_start = time.perf_counter()
        for key in keys:
            pool.register(key, model.entry)
            structures[key] = model.fresh()
        setup_seconds = time.perf_counter() - setup_start

        poison_count = max(1, int(config.tenants * config.poison_fraction))
        slow_count = max(1, int(config.tenants * config.slow_fraction))
        pathological = rng.sample(keys, poison_count + slow_count)
        poisoned, slow = (
            pathological[:poison_count], pathological[poison_count:]
        )
        slow_set = set(slow)

        def _poison() -> None:
            raise RuntimeError("traffic: poisoned tenant check")

        for key in poisoned:
            pool.set_step_probe(key, _poison)
        for key in slow:
            pool.set_step_probe(
                key, lambda: time.sleep(config.slow_tick)
            )

        tenant_rngs = {
            key: random.Random(config.seed * 1_000_003 + i)
            for i, key in enumerate(keys)
        }

        durations: list = []
        queue_times: list = []
        statuses: dict = {}
        submitted = 0
        pending: list = []
        serve_start = time.perf_counter()
        while submitted < config.checks:
            burst = min(config.burst, config.checks - submitted)
            for _ in range(burst):
                key = rng.choice(keys)
                trng = tenant_rngs[key]
                for _m in range(config.mutates_per_check):
                    for op in model.random_ops(trng):
                        if op.name.startswith("@"):
                            continue
                        pool.mutate(key, model.apply, structures[key], op)
                if key in slow_set:
                    # Worst case for a crawling tenant: a full rebuild
                    # under its deadline (this is what the deadline
                    # machinery exists to contain).
                    pool.mutate(key, pool.engine(key).invalidate)
                args = pool.mutate(key, model.check_args, structures[key])
                pending.append(pool.submit(key, *args))
                submitted += 1
            # Open loop: collect the burst's completions only after the
            # whole burst has arrived (arrivals never wait on service).
            for future in pending:
                res = future.result()
                statuses[res.status] = statuses.get(res.status, 0) + 1
                if res.status == OK:
                    durations.append(res.duration)
                    queue_times.append(res.queue_time)
            pending.clear()
        serve_seconds = time.perf_counter() - serve_start
        stats = pool.stats()
    finally:
        pool.close()

    durations.sort()
    queue_times.sort()
    completed = sum(statuses.values())
    shed = statuses.get("rejected", 0)
    return {
        "benchmark": "serving",
        "config": {
            "tenants": config.tenants,
            "structure": config.structure,
            "checks": config.checks,
            "burst": config.burst,
            "max_queue": config.max_queue,
            "workers": config.workers,
            "shards": config.shards,
            "seed": config.seed,
        },
        "tenants": config.tenants,
        "checks_submitted": submitted,
        "checks_completed": completed,
        "statuses": dict(sorted(statuses.items())),
        "p50_ms": _percentile(durations, 0.50) * 1000,
        "p99_ms": _percentile(durations, 0.99) * 1000,
        "queue_p99_ms": _percentile(queue_times, 0.99) * 1000,
        "shed_rate": (shed / completed) if completed else 0.0,
        "breaker_trips": stats.get("breaker_trips", 0),
        "breaker_rejections": stats.get("breaker_rejections", 0),
        "deadline_hits": stats.get("deadline_hits", 0),
        "setup_seconds": setup_seconds,
        "serve_seconds": serve_seconds,
        "wall_seconds": time.perf_counter() - wall_start,
    }
