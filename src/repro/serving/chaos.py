"""Chaos harness: prove tenant isolation under injected faults.

The pool's central robustness claim is *blast-radius containment*: a
fault striking tenant A — dropped write barriers, corrupted cached
returns, exceptions mid-repair or mid-drain, poisoned hook code, deadline
blowouts — must be completely unobservable by tenant B.  This harness
proves it by construction:

* a fixed subset of tenants is designated **victims** up front (from the
  seed); every round injects at least one fault into a victim;
* the remaining **clean** tenants are never faulted, and after every
  round each clean tenant's check outcome (value *or* exception type) is
  compared against a solo oracle: a private replica structure receiving
  the identical mutation stream, checked by the *uninstrumented* entry
  point.  Any difference is a divergence — an isolation breach;
* deadline faults additionally assert the 2x-budget contract: the
  wall-clock cost of a deadlined call, degrade retry included, is
  recorded as a ratio of its budget and the maximum must stay <= 2.

Everything is synchronous and seeded, so a failure replays exactly;
:class:`ChaosResult.to_json` is the CI divergence artifact.  (Thread-level
interleaving is exercised separately by the soak test — mixing it in here
would make the byte-identical comparison nondeterministic.)
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..instrument.registry import check as as_check
from ..qa.models import get_model
from ..qa.trace import CHECK
from ..resilience.degradation import BreakerPolicy
from ..resilience.faults import FaultPlan, inject_faults
from .pool import EnginePool, PoolConfig
from .results import ERROR, OK

#: Fault kinds the harness can inject (per round: one kind, one victim).
FAULT_KINDS = (
    "drop_writes",      # FaultPlan: write barriers silently dropped
    "corrupt_returns",  # FaultPlan: cached return values corrupted
    "raise_calls",      # FaultPlan: exceptions thrown mid-repair
    "poison_hook",      # step hook raises inside instrumented execution
    "mid_drain",        # write-log consume() raises mid-drain
    "deadline",         # slow check blows its soft deadline
)


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded configuration for one chaos campaign."""

    structure: str = "ordered_list"
    tenants: int = 8
    rounds: int = 200
    seed: int = 0
    #: Fraction of tenants designated as fault victims (at least one).
    victim_fraction: float = 0.35
    #: Soft deadline used by ``deadline`` faults, in seconds.  Must dwarf
    #: ``probe_sleep`` so hook-granularity slop cannot push a degraded
    #: call past 2x this budget.
    deadline: float = 0.05
    #: Per-hook-tick sleep the ``deadline`` fault injects to simulate a
    #: slow check.
    probe_sleep: float = 0.002
    fault_kinds: tuple = FAULT_KINDS
    #: Pool sizing (admission is kept ample: shedding is load behaviour,
    #: exercised by :mod:`repro.serving.traffic`, not an isolation fault).
    shards: int = 4
    max_queue: int = 64
    #: When set, every tenant gets a black-box flight recorder dumping
    #: into this directory — deadline aborts, scratch fallbacks, and
    #: breaker trips produce artifacts, and any divergence triggers a
    #: ``qa_divergence`` dump from the diverging tenant's recorder.
    flight_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.tenants < 2:
            raise ValueError("chaos needs >= 2 tenants (1 victim + 1 clean)")
        if not 0.0 < self.victim_fraction < 1.0:
            raise ValueError("victim_fraction must be in (0, 1)")
        unknown = set(self.fault_kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")


@dataclass
class ChaosResult:
    """Outcome of :func:`run_chaos` — the CI artifact on failure."""

    config: ChaosConfig
    rounds: int = 0
    victims: list = field(default_factory=list)
    clean: list = field(default_factory=list)
    faults_injected: dict = field(default_factory=dict)
    status_counts: dict = field(default_factory=dict)
    #: Isolation breaches: clean-tenant outcomes differing from the solo
    #: oracle.  Must be empty.
    divergences: list = field(default_factory=list)
    #: max(duration / budget) over every deadline-faulted call.
    max_overrun_ratio: float = 0.0
    deadline_calls: int = 0
    #: Flight-recorder artifacts written during the campaign (populated
    #: when ``config.flight_dir`` is set).
    flight_dumps: list = field(default_factory=list)

    @property
    def total_faults(self) -> int:
        return sum(self.faults_injected.values())

    @property
    def ok(self) -> bool:
        return (
            self.rounds == self.config.rounds
            and not self.divergences
            and self.total_faults >= self.rounds
            and self.max_overrun_ratio <= 2.0
        )

    def summary(self) -> str:
        return (
            f"chaos[{self.config.structure} seed={self.config.seed}]: "
            f"{self.rounds} rounds, {self.total_faults} faults "
            f"({dict(sorted(self.faults_injected.items()))}), "
            f"{len(self.divergences)} divergence(s), "
            f"max overrun {self.max_overrun_ratio:.2f}x -> "
            f"{'OK' if self.ok else 'FAIL'}"
        )

    def to_json(self) -> dict:
        return {
            "structure": self.config.structure,
            "seed": self.config.seed,
            "tenants": self.config.tenants,
            "rounds": self.rounds,
            "victims": list(self.victims),
            "faults_injected": dict(self.faults_injected),
            "status_counts": dict(self.status_counts),
            "divergences": list(self.divergences),
            "max_overrun_ratio": self.max_overrun_ratio,
            "deadline_calls": self.deadline_calls,
            "flight_dumps": list(self.flight_dumps),
            "ok": self.ok,
        }


def _outcome_of_call(fn: Any, args: tuple) -> tuple:
    """Normalized outcome: ``("value", repr)`` or ``("raise", type)``."""
    try:
        return ("value", repr(fn(*args)))
    except Exception as exc:  # noqa: BLE001 - outcome capture by design
        return ("raise", type(exc).__name__)


def run_chaos(config: Optional[ChaosConfig] = None) -> ChaosResult:
    """Run one seeded chaos campaign; see the module docstring."""
    config = config if config is not None else ChaosConfig()
    rng = random.Random(config.seed)
    model = get_model(config.structure)
    original = as_check(model.entry).original
    result = ChaosResult(config=config)

    pool = EnginePool(PoolConfig(
        shards=config.shards,
        workers=config.shards,
        max_queue=config.max_queue,
        deadline=None,               # deadlines only on deadline faults
        on_deadline="degrade",
        deadline_extension=1.5,      # 0.5x budget of scheduling slack
        breaker=BreakerPolicy(
            failure_threshold=3,
            recovery_time=0.02,      # victims recover within the campaign
            max_recovery_time=0.25,
            half_open_probes=1,
        ),
        step_hook_interval=1,        # per-step ticks: tight cancellation
        flight_dir=config.flight_dir,
    ))
    try:
        keys = [f"tenant-{i}" for i in range(config.tenants)]
        victim_count = max(1, int(config.tenants * config.victim_fraction))
        victims = rng.sample(keys, victim_count)
        victim_set = set(victims)
        result.victims = victims
        result.clean = [k for k in keys if k not in victim_set]

        structures = {}
        replicas = {}
        tenant_rngs = {}
        for i, key in enumerate(keys):
            pool.register(key, model.entry)
            structures[key] = model.fresh()
            tenant_rngs[key] = random.Random(config.seed * 1_000_003 + i)
            if key not in victim_set:
                replicas[key] = model.fresh()

        for _round in range(config.rounds):
            # 1. Identical per-tenant mutation streams (clean tenants'
            # replicas receive byte-identical ops).
            for key in keys:
                ops = [
                    op
                    for op in model.random_ops(tenant_rngs[key])
                    if op.name != CHECK
                ]
                for op in ops:
                    pool.mutate(key, model.apply, structures[key], op)
                    if key not in victim_set:
                        model.apply(replicas[key], op)

            # 2. Fault one victim.
            victim = rng.choice(victims)
            kind = rng.choice(config.fault_kinds)
            _inject_and_check(pool, model, structures, victim, kind,
                              config, result)
            result.faults_injected[kind] = (
                result.faults_injected.get(kind, 0) + 1
            )

            # 3. Check every tenant; diff the clean ones vs the oracle.
            for key in keys:
                if key == victim:
                    continue  # already checked under its fault
                args = pool.mutate(key, model.check_args, structures[key])
                res = pool.check(key, *args)
                result.status_counts[res.status] = (
                    result.status_counts.get(res.status, 0) + 1
                )
                if key in victim_set:
                    continue  # tainted in an earlier round: not compared
                if res.status == OK:
                    actual = ("value", repr(res.value))
                elif res.status == ERROR:
                    actual = ("raise", type(res.error).__name__)
                else:
                    actual = ("status", res.status)
                expected = _outcome_of_call(
                    original, model.check_args(replicas[key])
                )
                if actual != expected:
                    divergence = {
                        "round": _round,
                        "tenant": key,
                        "fault": {"victim": victim, "kind": kind},
                        "expected": list(expected),
                        "actual": list(actual),
                    }
                    flight = pool.flight(key)
                    if flight is not None:
                        dump = flight.trigger(
                            "qa_divergence",
                            detail=(
                                f"round {_round}: expected {expected!r}, "
                                f"got {actual!r}"
                            ),
                        )
                        if dump is not None:
                            divergence["flight_dump"] = dump
                    result.divergences.append(divergence)
            result.rounds += 1
        if config.flight_dir is not None:
            for key in keys:
                flight = pool.flight(key)
                if flight is not None:
                    result.flight_dumps.extend(flight.dumps)
    finally:
        pool.close()
    return result


def _inject_and_check(
    pool: EnginePool,
    model: Any,
    structures: dict,
    victim: str,
    kind: str,
    config: ChaosConfig,
    result: ChaosResult,
) -> None:
    """Arm ``kind`` against ``victim`` and run its check under the fault.

    The victim's outcome is recorded but never compared — once faulted, a
    tenant's own results are undefined by design (stale graphs after
    dropped barriers are expected).  What matters is what the *other*
    tenants observe: nothing."""
    args = pool.mutate(victim, model.check_args, structures[victim])

    def _record(res: Any) -> None:
        result.status_counts[res.status] = (
            result.status_counts.get(res.status, 0) + 1
        )

    if kind in ("drop_writes", "corrupt_returns", "raise_calls"):
        plan = {
            "drop_writes": FaultPlan(drop_writes=4),
            "corrupt_returns": FaultPlan(corrupt_returns=2),
            "raise_calls": FaultPlan(raise_on_calls=frozenset({1, 3})),
        }[kind]
        engine = pool.engine(victim)
        if (kind == "drop_writes"
                and engine.tracking.write_log.fault_hook is not None):
            _record(pool.check(victim, *args))  # hook busy: plain check
            return
        with inject_faults(engine, plan):
            _record(pool.check(victim, *args))
        return

    if kind == "poison_hook":
        def _poison() -> None:
            raise RuntimeError("chaos: poisoned step hook")

        pool.set_step_probe(victim, _poison)
        try:
            _record(pool.check(victim, *args))
        finally:
            pool.set_step_probe(victim, None)
        return

    if kind == "mid_drain":
        log = pool.tracking(victim).write_log
        orig_consume = log.consume

        def _boom(cid: int) -> list:
            log.consume = orig_consume  # one-shot
            raise RuntimeError("chaos: exception mid-drain")

        log.consume = _boom
        try:
            _record(pool.check(victim, *args))
        finally:
            log.consume = orig_consume
        return

    if kind == "deadline":
        # Force a full rebuild (worst case) and make every step slow, so
        # the run genuinely cannot finish inside the budget.
        pool.engine(victim).invalidate()
        pool.set_step_probe(
            victim, lambda: time.sleep(config.probe_sleep)
        )
        try:
            res = pool.check(victim, *args, deadline=config.deadline)
        finally:
            pool.set_step_probe(victim, None)
        _record(res)
        result.deadline_calls += 1
        ratio = res.duration / config.deadline
        if ratio > result.max_overrun_ratio:
            result.max_overrun_ratio = ratio
        return

    raise ValueError(f"unknown fault kind {kind!r}")
