"""Result envelope for pool check calls.

Every admission decision the pool makes is visible in the result status —
a shed call yields an explicit ``rejected`` result, a breaker-gated call
an explicit ``breaker_open`` one.  Nothing is ever dropped silently: the
caller can always tell *why* it has no answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: The check ran and produced a value (which may be ``False`` — an
#: invariant violation is a successful *check*, not a serving failure).
OK = "ok"
#: The check (or the engine machinery) raised; ``error`` holds it.
ERROR = "error"
#: Shed at admission: the pool's bounded queue was full.
REJECTED = "rejected"
#: The run blew its soft deadline (including any degrade retry).
DEADLINE = "deadline"
#: Shed at admission: the tenant's circuit breaker is open.
BREAKER_OPEN = "breaker_open"

STATUSES = (OK, ERROR, REJECTED, DEADLINE, BREAKER_OPEN)


@dataclass
class CheckResult:
    """Outcome of one :meth:`~repro.serving.pool.EnginePool.check` call."""

    tenant: Any
    status: str
    #: The check's return value (``status == "ok"`` only).
    value: Any = None
    #: The exception that classified this result, when one exists
    #: (``error``/``deadline``/``breaker_open``).
    error: Optional[BaseException] = None
    #: True when the answer came from a deadline-degrade retry rather than
    #: the first attempt.
    degraded: bool = False
    #: Wall-clock seconds from admission to this result.
    duration: float = 0.0
    #: Seconds spent waiting for the tenant's shard lock (striping
    #: contention; 0 for shed/breaker results, which never queue).
    queue_time: float = 0.0
    #: Seconds until the tenant's breaker next admits a probe
    #: (``breaker_open`` only).
    retry_after: float = 0.0
    #: Path of the flight-recorder artifact written because of this call
    #: (a trigger fired during or right after the run), when the pool has
    #: flight recording enabled.  ``None`` otherwise.
    flight_dump: Optional[str] = None
    #: Free-form diagnostics (e.g. the deadline that was exceeded).
    detail: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == OK

    def unwrap(self) -> Any:
        """The check value, or raise whatever prevented one."""
        if self.status == OK:
            return self.value
        if self.error is not None:
            raise self.error
        raise RuntimeError(
            f"check for tenant {self.tenant!r} produced no value: "
            f"{self.status}"
        )

    def __repr__(self) -> str:  # compact: results are logged in bulk
        extra = ""
        if self.status == OK:
            extra = f" value={self.value!r}"
            if self.degraded:
                extra += " degraded"
        elif self.error is not None:
            extra = f" error={type(self.error).__name__}"
        return (
            f"<CheckResult {self.tenant!r} {self.status}{extra} "
            f"{self.duration * 1000:.2f}ms>"
        )
