"""Hardened multi-tenant serving layer: many engines, one process.

DITTO's promise is that invariant checks stay cheap enough to run
*continuously* — but continuously in a deployment means thousands of
independent structures checked concurrently under mixed mutate/check
traffic.  This package is the front end that makes one process survive
that: an :class:`EnginePool` hosting one isolated
:class:`~repro.core.engine.DittoEngine` per tenant behind a threaded
executor, with

* **isolation** — every tenant gets a private
  :class:`~repro.core.tracked.TrackingState`; a write barrier fired under
  tenant A is unobservable by tenant B (cross-domain structure sharing
  raises :class:`~repro.core.errors.TenantIsolationError` instead of
  silently cross-wiring logs);
* **lock striping** — tenants are pinned to shards by key hash; one
  shard's slow check never blocks the other shards;
* **soft deadlines** — a cooperative step hook cancels over-budget runs
  (:class:`~repro.core.errors.CheckDeadlineExceeded`), then the pool
  degrades the call to a fresh capped retry or rejects it; total cost
  never exceeds 2x the deadline;
* **per-tenant circuit breakers** —
  :class:`~repro.resilience.degradation.CircuitBreaker` per key, so a
  persistently-failing tenant is shed at admission instead of burning
  workers, with half-open probes to recover;
* **bounded admission** — a full pool sheds load with explicit
  ``rejected`` results, never silent drops;
* **observability** — ``pool.stats()`` plus
  :class:`~repro.obs.metrics.PoolMetrics`.

:mod:`repro.serving.chaos` proves the isolation claim by fault-injecting
random tenants across hundreds of rounds while diffing the untouched
tenants against a solo-engine oracle; :mod:`repro.serving.traffic` drives
an open-loop mixed load for the ``BENCH_serving.json`` record.
"""

from .chaos import ChaosConfig, ChaosResult, run_chaos
from .pool import EnginePool, PoolConfig
from .results import (
    BREAKER_OPEN,
    DEADLINE,
    ERROR,
    OK,
    REJECTED,
    CheckResult,
)
from .traffic import TrafficConfig, run_traffic

__all__ = [
    "BREAKER_OPEN",
    "ChaosConfig",
    "ChaosResult",
    "CheckResult",
    "DEADLINE",
    "ERROR",
    "EnginePool",
    "OK",
    "PoolConfig",
    "REJECTED",
    "TrafficConfig",
    "run_chaos",
    "run_traffic",
]
