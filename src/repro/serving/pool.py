"""The engine pool: many isolated engines behind striped locks.

One :class:`EnginePool` hosts one :class:`~repro.core.engine.DittoEngine`
per registered tenant.  Every tenant gets a **private**
:class:`~repro.core.tracked.TrackingState` — its own write log, monitored
field set, and barrier counters — so no barrier fired by one tenant's
mutations can reach another tenant's log (the memo table enforces this at
adoption time; see :class:`~repro.core.errors.TenantIsolationError`).

Concurrency model
-----------------

Tenants are pinned to **shards** by key hash, one lock per shard.  A
tenant's mutations and checks are serialized by its shard lock (the
engine is single-threaded by design — :class:`~repro.core.errors.
EngineBusyError` guards the invariant), while tenants on different
shards proceed in parallel.  The pool never holds a global lock around a
check, so one slow tenant stalls at most its shard.

Robustness envelope, applied at every :meth:`EnginePool.check` call in
admission order:

1. **bounded admission** — at most ``max_queue`` calls in flight; the
   next one is shed with an explicit ``rejected`` result;
2. **circuit breaker** — a tenant with too many consecutive failures is
   shed with ``breaker_open`` until its half-open probe succeeds;
3. **soft deadline** — a cooperative step hook aborts over-budget runs;
   the pool then retries once with the *total* budget capped at
   ``deadline_extension`` x the deadline (strictly below 2x so the
   documented "never more than twice the budget" contract survives
   scheduling noise), or rejects immediately (``on_deadline="reject"``).

Every outcome is an explicit :class:`~repro.serving.results.CheckResult`;
the pool never raises from ``check()`` and never drops a call silently.
"""

from __future__ import annotations

import re
import threading
import time
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..core.engine import DittoEngine
from ..core.errors import CheckDeadlineExceeded, EngineStateError
from ..core.tracked import TrackingState
from ..obs.flight import FlightRecorder
from ..resilience.degradation import BreakerPolicy, KeyedBreakers
from .results import (
    BREAKER_OPEN,
    DEADLINE,
    ERROR,
    OK,
    REJECTED,
    CheckResult,
)

#: Control flow that must pass through the pool untouched (and must not
#: count against the tenant's breaker).
_NEVER_CAUGHT = (KeyboardInterrupt, SystemExit, GeneratorExit)


@dataclass(frozen=True)
class PoolConfig:
    """Pure configuration for an :class:`EnginePool`."""

    #: Lock stripes; tenants are pinned by ``crc32(key) % shards``.
    shards: int = 8
    #: Worker threads behind :meth:`EnginePool.submit`.
    workers: int = 8
    #: Bounded admission: maximum checks in flight (queued + running)
    #: before the pool sheds with ``rejected``.
    max_queue: int = 64
    #: Default soft deadline per check in seconds (None = unbounded;
    #: per-call override via ``check(..., deadline=...)``).
    deadline: Optional[float] = None
    #: What to do when a run blows its deadline: ``"degrade"`` retries
    #: once from scratch under the remaining capped budget, ``"reject"``
    #: returns a ``deadline`` result immediately.
    on_deadline: str = "degrade"
    #: Total-budget cap for the degrade retry, as a multiple of the
    #: deadline.  Kept strictly below 2.0 so the pool's "a deadlined call
    #: never costs more than 2x its budget" contract holds even with
    #: hook-granularity and scheduler slop on top.
    deadline_extension: float = 1.75
    #: Per-tenant circuit breaker configuration (None disables breakers).
    breaker: Optional[BreakerPolicy] = field(default_factory=BreakerPolicy)
    #: Steps between cooperative-cancellation hook ticks (smaller =
    #: tighter deadline enforcement, more hook overhead).
    step_hook_interval: int = 128
    #: Directory for per-tenant black-box flight recorders
    #: (:class:`repro.obs.flight.FlightRecorder`).  ``None`` disables
    #: flight recording entirely (no ring, no tee, no tracing cost).
    flight_dir: Optional[str] = None
    #: Run summaries each tenant's recorder retains.
    flight_capacity: int = 32
    #: Trace events each tenant's recorder retains.
    flight_trace_capacity: int = 512
    #: Artifact cap per tenant (further triggers are suppressed).
    flight_max_dumps: int = 16

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be > 0 or None")
        if self.on_deadline not in ("degrade", "reject"):
            raise ValueError(
                f"on_deadline must be 'degrade' or 'reject', "
                f"got {self.on_deadline!r}"
            )
        if not 1.0 <= self.deadline_extension < 2.0:
            raise ValueError(
                "deadline_extension must be in [1.0, 2.0) — at 2.0 or "
                "above the 2x total-budget contract cannot be kept"
            )
        if self.step_hook_interval < 1:
            raise ValueError("step_hook_interval must be >= 1")
        if self.flight_capacity < 1:
            raise ValueError("flight_capacity must be >= 1")
        if self.flight_trace_capacity < 1:
            raise ValueError("flight_trace_capacity must be >= 1")
        if self.flight_max_dumps < 1:
            raise ValueError("flight_max_dumps must be >= 1")


class _TenantSlot:
    """One tenant: its isolation domain, engine, and shard pin."""

    __slots__ = (
        "key", "shard", "tracking", "engine", "deadline_at", "step_probe",
        "flight",
    )

    def __init__(
        self, key: Any, shard: int, tracking: TrackingState,
        engine: DittoEngine,
    ):
        self.key = key
        self.shard = shard
        self.tracking = tracking
        self.engine = engine
        #: Per-tenant black-box recorder (None when the pool's
        #: ``flight_dir`` is unset).  Touched only under the shard lock.
        self.flight: Optional[FlightRecorder] = None
        #: Absolute (pool-clock) time the current run must finish by;
        #: None outside runs / for unbounded runs.  Written only while
        #: the tenant's shard lock is held.
        self.deadline_at: Optional[float] = None
        #: Test/chaos instrumentation: called at every hook tick of this
        #: tenant's runs (before the deadline test).  Exceptions it
        #: raises propagate exactly like check exceptions.
        self.step_probe: Optional[Callable[[], None]] = None


class EnginePool:
    """A process-local pool of isolated per-tenant DITTO engines."""

    def __init__(
        self,
        config: Optional[PoolConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        regression: Optional[Any] = None,
    ):
        self.config = config if config is not None else PoolConfig()
        self._clock = clock
        #: Optional :class:`repro.obs.regression.RegressionDetector`; fed
        #: the *service* time (duration minus queue wait) of every OK
        #: check, keyed by check name.  Thread-safe by contract.
        self.regression = regression
        self._slots: Dict[Any, _TenantSlot] = {}
        self._registry_lock = threading.Lock()
        self._shard_locks = [
            threading.RLock() for _ in range(self.config.shards)
        ]
        self._admission = threading.Semaphore(self.config.max_queue)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self.breakers = (
            KeyedBreakers(self.config.breaker, clock)
            if self.config.breaker is not None
            else None
        )
        # Lifetime counters (stats() mirrors these; PoolMetrics exports
        # them).  One lock, touched once or twice per call.
        self._stats_lock = threading.Lock()
        self._in_flight = 0
        self._counts = {
            "checks": 0,
            "checks_ok": 0,
            "checks_error": 0,
            "checks_degraded": 0,
            "deadline_hits": 0,
            "shed": 0,
            "breaker_shed": 0,
            "mutations": 0,
        }

    # Registration. ----------------------------------------------------------

    def register(
        self,
        key: Any,
        entry: Any,
        mode: str = "ditto",
        **engine_kwargs: Any,
    ) -> DittoEngine:
        """Create ``key``'s isolated engine for check ``entry``.

        Extra keyword arguments go to the :class:`DittoEngine`
        constructor (``degradation=...``, ``paranoia=...``, &c.).
        Returns the engine (callers rarely need it; tests do).
        """
        if self._closed:
            raise EngineStateError("pool has been closed")
        shard = self._shard_of(key)
        tracking = TrackingState()
        slot_ref: list[_TenantSlot] = []

        def _hook(engine: DittoEngine) -> None:
            slot = slot_ref[0]
            probe = slot.step_probe
            if probe is not None:
                probe()
            deadline_at = slot.deadline_at
            if deadline_at is not None and self._clock() >= deadline_at:
                raise CheckDeadlineExceeded(
                    f"tenant {slot.key!r} exceeded its soft deadline"
                )

        engine = DittoEngine(
            entry,
            mode=mode,
            tracking=tracking,
            step_hook=_hook,
            step_hook_interval=self.config.step_hook_interval,
            **engine_kwargs,
        )
        slot = _TenantSlot(key, shard, tracking, engine)
        slot_ref.append(slot)
        if self.config.flight_dir is not None:
            safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", str(key)) or "tenant"
            slot.flight = FlightRecorder(
                self.config.flight_dir,
                name=safe,
                capacity=self.config.flight_capacity,
                trace_capacity=self.config.flight_trace_capacity,
                max_dumps=self.config.flight_max_dumps,
            ).attach(engine)
        with self._registry_lock:
            if key in self._slots:
                engine.close()
                raise ValueError(f"tenant {key!r} is already registered")
            self._slots[key] = slot
        return engine

    def unregister(self, key: Any) -> None:
        """Remove ``key`` and close its engine (releasing its reference
        counts, so its structures stop logging barriers)."""
        with self._registry_lock:
            slot = self._slots.pop(key, None)
        if slot is None:
            return
        with self._shard_locks[slot.shard]:
            if slot.flight is not None:
                slot.flight.detach()
            slot.engine.close()
        if self.breakers is not None:
            self.breakers.remove(key)

    def _slot(self, key: Any) -> _TenantSlot:
        with self._registry_lock:
            slot = self._slots.get(key)
        if slot is None:
            raise KeyError(f"unknown tenant {key!r}")
        return slot

    def _shard_of(self, key: Any) -> int:
        data = key if isinstance(key, bytes) else str(key).encode()
        return zlib.crc32(data) % self.config.shards

    def engine(self, key: Any) -> DittoEngine:
        return self._slot(key).engine

    def flight(self, key: Any) -> Optional[FlightRecorder]:
        """``key``'s black-box recorder (None unless the pool was built
        with ``flight_dir``)."""
        return self._slot(key).flight

    def tracking(self, key: Any) -> TrackingState:
        return self._slot(key).tracking

    def tenants(self) -> list:
        with self._registry_lock:
            return list(self._slots)

    def set_step_probe(
        self, key: Any, probe: Optional[Callable[[], None]]
    ) -> None:
        """Install (or clear) a per-tenant hook-tick probe — chaos and
        tests use this to simulate slow or poisoned checks."""
        self._slot(key).step_probe = probe

    # Mutation. --------------------------------------------------------------

    def mutate(self, key: Any, fn: Callable[..., Any], *args: Any,
               **kwargs: Any) -> Any:
        """Run a mutation against ``key``'s structures under its shard
        lock, serialized with the tenant's checks.  Barriers fired inside
        land in the tenant's private write log."""
        slot = self._slot(key)
        with self._shard_locks[slot.shard]:
            result = fn(*args, **kwargs)
        with self._stats_lock:
            self._counts["mutations"] += 1
        return result

    # Checking. --------------------------------------------------------------

    def check(
        self,
        key: Any,
        *args: Any,
        deadline: Optional[float] = None,
    ) -> CheckResult:
        """Run ``key``'s invariant check through the robustness envelope.

        Never raises (short of interpreter control flow): every outcome —
        including shed load, open breakers, deadline blowouts, and check
        exceptions — comes back as a :class:`CheckResult`.
        """
        t0 = self._clock()
        early = self._admit(key, t0)
        if early is not None:
            return early
        return self._check_admitted(key, args, deadline, t0)

    def _admit(self, key: Any, t0: float) -> Optional[CheckResult]:
        """Admission control, run in the *arrival* thread (so open-loop
        submitters shed at arrival, not when a worker gets around to the
        call).  Returns a terminal result to shed, or None on admission —
        in which case one admission slot is held and
        :meth:`_check_admitted` MUST run to release it."""
        if self._closed:
            with self._stats_lock:
                self._counts["checks"] += 1
                self._counts["checks_error"] += 1
            return CheckResult(
                key, ERROR, error=EngineStateError("pool has been closed"),
            )
        with self._registry_lock:
            known = key in self._slots
        if not known:
            with self._stats_lock:
                self._counts["checks"] += 1
                self._counts["checks_error"] += 1
            return CheckResult(
                key, ERROR, error=KeyError(f"unknown tenant {key!r}"),
            )
        # Bounded admission: full pool => explicit shed.
        if not self._admission.acquire(blocking=False):
            with self._stats_lock:
                self._counts["checks"] += 1
                self._counts["shed"] += 1
            return CheckResult(
                key, REJECTED, duration=self._clock() - t0,
                detail={"max_queue": self.config.max_queue},
            )
        with self._stats_lock:
            self._in_flight += 1
        return None

    def _check_admitted(
        self,
        key: Any,
        args: tuple,
        deadline: Optional[float],
        t0: float,
    ) -> CheckResult:
        # One admission slot is held (see _admit); always released here.
        breaker = None
        admitted_by_breaker = False
        try:
            try:
                slot = self._slot(key)
            except KeyError as exc:  # unregistered between admit and run
                with self._stats_lock:
                    self._counts["checks"] += 1
                    self._counts["checks_error"] += 1
                return CheckResult(key, ERROR, error=exc)
            if deadline is None:
                deadline = self.config.deadline
            # Circuit breaker: persistently-failing tenant => shed.
            if self.breakers is not None:
                breaker = self.breakers.get(key)
                if not breaker.allow():
                    with self._stats_lock:
                        self._counts["checks"] += 1
                        self._counts["breaker_shed"] += 1
                    return CheckResult(
                        key, BREAKER_OPEN,
                        duration=self._clock() - t0,
                        retry_after=breaker.retry_after(),
                    )
                admitted_by_breaker = True
            # Shard lock, then the run itself under its soft deadline.
            lock = self._shard_locks[slot.shard]
            with lock:
                queue_time = self._clock() - t0
                result = self._run_under_deadline(
                    slot, args, deadline, t0, queue_time
                )
            if breaker is not None:
                admitted_by_breaker = False
                if result.status == OK:
                    breaker.record_success()
                else:
                    trips_before = breaker.trips
                    breaker.record_failure()
                    if (
                        breaker.trips > trips_before
                        and slot.flight is not None
                    ):
                        # The failure that opened the breaker: capture
                        # the black box now, while the evidence is hot.
                        # Re-take the shard lock — flight recorders are
                        # only ever touched under it.
                        with lock:
                            try:
                                path = slot.flight.trigger(
                                    "breaker_trip",
                                    detail=f"status={result.status}",
                                )
                            except OSError:
                                path = None
                        if path is not None and result.flight_dump is None:
                            result.flight_dump = path
            with self._stats_lock:
                self._counts["checks"] += 1
                if result.status == OK:
                    self._counts["checks_ok"] += 1
                    if result.degraded:
                        self._counts["checks_degraded"] += 1
                elif result.status == DEADLINE:
                    self._counts["deadline_hits"] += 1
                else:
                    self._counts["checks_error"] += 1
            return result
        except _NEVER_CAUGHT:
            # Exception safety: the breaker slot is withdrawn, not
            # counted — teardown is not a tenant failure.
            if breaker is not None and admitted_by_breaker:
                breaker.release()
            raise
        finally:
            with self._stats_lock:
                self._in_flight -= 1
            self._admission.release()

    def _run_under_deadline(
        self,
        slot: _TenantSlot,
        args: tuple,
        deadline: Optional[float],
        t0: float,
        queue_time: float,
    ) -> CheckResult:
        # Shard lock held.  deadline_at is absolute pool-clock time; the
        # engine's step hook compares against it cooperatively.
        start = self._clock()
        slot.deadline_at = (
            start + deadline if deadline is not None else None
        )
        degraded = False
        # Every exit funnels through _finish: the flight recorder sees
        # the run (and fires any stats-delta trigger, attaching the dump
        # path to the result), and OK service time feeds the regression
        # detector.  Shard lock is held on all of these paths.
        try:
            try:
                value = slot.engine.run(*args)
            except CheckDeadlineExceeded as exc:
                if self.config.on_deadline == "reject" or deadline is None:
                    return self._finish(slot, CheckResult(
                        slot.key, DEADLINE, error=exc,
                        duration=self._clock() - t0, queue_time=queue_time,
                        detail={"deadline": deadline},
                    ))
                # Degrade: one retry — the engine invalidated its graph,
                # so this is a from-scratch (but still instrumented,
                # hence still cancellable) rebuild.  The *total* budget
                # is capped strictly below 2x the deadline.
                degraded = True
                slot.deadline_at = (
                    start + self.config.deadline_extension * deadline
                )
                try:
                    value = slot.engine.run(*args)
                except CheckDeadlineExceeded as exc2:
                    return self._finish(slot, CheckResult(
                        slot.key, DEADLINE, error=exc2, degraded=True,
                        duration=self._clock() - t0, queue_time=queue_time,
                        detail={"deadline": deadline, "retried": True},
                    ))
        except _NEVER_CAUGHT:
            raise
        except BaseException as exc:
            return self._finish(slot, CheckResult(
                slot.key, ERROR, error=exc, degraded=degraded,
                duration=self._clock() - t0, queue_time=queue_time,
            ))
        finally:
            slot.deadline_at = None
        return self._finish(slot, CheckResult(
            slot.key, OK, value=value, degraded=degraded,
            duration=self._clock() - t0, queue_time=queue_time,
        ))

    def _finish(
        self, slot: _TenantSlot, result: CheckResult
    ) -> CheckResult:
        # Shard lock held (flight recorders are single-threaded per
        # tenant by that contract).
        flight = slot.flight
        if flight is not None:
            try:
                path = flight.observe()
            except OSError:
                path = None  # a full disk must not fail the check call
            if path is not None and result.flight_dump is None:
                result.flight_dump = path
        regression = self.regression
        if regression is not None and result.status == OK:
            regression.observe(
                slot.engine.entry.name,
                max(0.0, result.duration - result.queue_time),
            )
        return result

    def submit(
        self, key: Any, *args: Any, deadline: Optional[float] = None
    ) -> "Future[CheckResult]":
        """Asynchronous :meth:`check` on the pool's worker threads.

        Admission control runs *here*, in the submitting thread: an
        open-loop producer outpacing the workers gets immediate
        ``rejected`` futures once ``max_queue`` calls are in flight,
        instead of buffering unboundedly inside the executor."""
        t0 = self._clock()
        early = self._admit(key, t0)
        if early is not None:
            future: "Future[CheckResult]" = Future()
            future.set_result(early)
            return future
        if self._executor is None:
            with self._registry_lock:
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.config.workers,
                        thread_name_prefix="repro-pool",
                    )
        try:
            return self._executor.submit(
                self._check_admitted, key, args, deadline, t0
            )
        except BaseException:
            # The admission slot must not leak if the executor refuses.
            with self._stats_lock:
                self._in_flight -= 1
            self._admission.release()
            raise

    # Health. ----------------------------------------------------------------

    def stats(self) -> dict:
        """Point-in-time pool health: lifetime counters plus occupancy
        gauges plus aggregate breaker state."""
        with self._stats_lock:
            out = dict(self._counts)
            out["queue_depth"] = self._in_flight
        with self._registry_lock:
            out["tenants"] = len(self._slots)
        out["shards"] = self.config.shards
        out["workers"] = self.config.workers
        if self.breakers is not None:
            out.update(self.breakers.stats())
        return out

    def close(self) -> None:
        """Close every engine and stop the workers.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        executor = self._executor
        if executor is not None:
            executor.shutdown(wait=True)
        with self._registry_lock:
            slots = list(self._slots.values())
            self._slots.clear()
        for slot in slots:
            with self._shard_locks[slot.shard]:
                if slot.flight is not None:
                    slot.flight.detach()
                slot.engine.close()

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
