"""CLI for the serving layer's robustness campaigns.

``python -m repro.serving chaos`` runs one seeded fault-injection
campaign (:func:`repro.serving.chaos.run_chaos`) and exits non-zero on
any isolation breach, missing fault coverage, or deadline-contract
violation; ``--artifact`` writes the :meth:`ChaosResult.to_json` record
(the CI chaos-matrix job uploads it on failure so a red run replays
locally from its seed).  ``python -m repro.serving traffic`` runs the
open-loop load campaign and prints/writes the ``BENCH_serving.json``
record (gating lives in ``benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .chaos import FAULT_KINDS, ChaosConfig, run_chaos
from .traffic import TrafficConfig, run_traffic


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving", description=__doc__.split("\n")[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection campaign (isolation proof)"
    )
    chaos.add_argument("--structure", default="ordered_list")
    chaos.add_argument("--tenants", type=int, default=8)
    chaos.add_argument("--rounds", type=int, default=200)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--deadline", type=float, default=0.05,
        help="soft budget (seconds) used by deadline faults",
    )
    chaos.add_argument(
        "--max-queue", type=int, default=64,
        help="pool admission bound (shed dimension of the CI matrix)",
    )
    chaos.add_argument(
        "--fault-kinds", default=None, metavar="K1,K2,...",
        help=f"subset of {','.join(FAULT_KINDS)} (default: all)",
    )
    chaos.add_argument(
        "--artifact", metavar="PATH",
        help="write the ChaosResult JSON record (divergence artifact)",
    )
    chaos.add_argument(
        "--flight-dir", metavar="DIR",
        help="enable per-tenant flight recorders dumping into DIR "
             "(deadline aborts, breaker trips, divergences)",
    )

    traffic = sub.add_parser(
        "traffic", help="open-loop load campaign (BENCH_serving record)"
    )
    traffic.add_argument("--tenants", type=int, default=1000)
    traffic.add_argument("--checks", type=int, default=4000)
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument("--json", metavar="PATH", dest="json_path")

    args = parser.parse_args(argv)

    if args.command == "chaos":
        kinds = (
            tuple(k for k in args.fault_kinds.split(",") if k)
            if args.fault_kinds
            else FAULT_KINDS
        )
        result = run_chaos(ChaosConfig(
            structure=args.structure,
            tenants=args.tenants,
            rounds=args.rounds,
            seed=args.seed,
            deadline=args.deadline,
            max_queue=args.max_queue,
            fault_kinds=kinds,
            flight_dir=args.flight_dir,
        ))
        print(result.summary())
        if args.flight_dir:
            print(
                f"flight recorder: {len(result.flight_dumps)} artifact(s) "
                f"in {args.flight_dir}"
            )
        for divergence in result.divergences[:10]:
            print(f"DIVERGENCE: {divergence}", file=sys.stderr)
        if args.artifact:
            with open(args.artifact, "w") as fh:
                json.dump(result.to_json(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.artifact}")
        return 0 if result.ok else 1

    result = run_traffic(TrafficConfig(
        tenants=args.tenants, checks=args.checks, seed=args.seed
    ))
    print(
        f"traffic: {result['tenants']} tenants, "
        f"{result['checks_completed']} checks — "
        f"p50 {result['p50_ms']:.2f}ms, p99 {result['p99_ms']:.2f}ms, "
        f"shed {result['shed_rate']:.1%}"
    )
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
