"""Differential fuzzing & property harness for the DITTO engines.

The correctness contract of the whole system is a single sentence: after
*any* sequence of heap mutations, an incremental run returns exactly what
from-scratch re-execution returns (paper §3.1).  This package turns that
sentence into an automated oracle:

* :mod:`repro.qa.models` — per-structure adapters exposing every
  registered structure's mutators (including direct-field-write
  ``corrupt*`` helpers) as primitive-argument ops;
* :mod:`repro.qa.generator` — seeded deterministic random traces;
* :mod:`repro.qa.oracle` — replay on ``scratch``/``ditto``/``naive``
  engines simultaneously, diff outcomes, audit graphs, and report
  :class:`~repro.qa.oracle.Divergence`\\ s;
* :mod:`repro.qa.shrinker` — delta-debugging minimization of divergent
  traces;
* :mod:`repro.qa.replay` — replay files + runnable reproducer snippets;
* :mod:`repro.qa.cli` — ``python -m repro.qa`` (seeded corpus runs,
  nightly time-budgeted sweeps, ``--replay`` artifact verification).
"""

from .generator import TraceGenerator
from .models import MODELS, StructureModel, get_model, model_names
from .oracle import (
    DEFAULT_MODES,
    Divergence,
    Oracle,
    OracleReport,
    replay_trace,
)
from .replay import (
    format_report,
    python_reproducer,
    write_reproducer,
)
from .shrinker import Shrinker, ShrinkResult, shrink_trace
from .trace import CHECK, CHECK_OP, FAULT, FAULT_KINDS, Op, Trace, fault_op

__all__ = [
    "CHECK",
    "CHECK_OP",
    "DEFAULT_MODES",
    "Divergence",
    "FAULT",
    "FAULT_KINDS",
    "MODELS",
    "Op",
    "Oracle",
    "OracleReport",
    "Shrinker",
    "ShrinkResult",
    "StructureModel",
    "Trace",
    "TraceGenerator",
    "fault_op",
    "format_report",
    "get_model",
    "model_names",
    "python_reproducer",
    "replay_trace",
    "shrink_trace",
    "write_reproducer",
]
