"""Trace minimization by delta debugging.

Given a divergent trace, ``Shrinker`` finds a (locally) minimal sub-trace
that still diverges: classic ddmin over the op list — try dropping ever
finer-grained chunks, restart at coarse granularity after any success —
followed by a greedy one-op-at-a-time sweep.  Every candidate is replayed
from scratch through a fresh :class:`~repro.qa.oracle.Oracle`, which is
why models must keep ``apply`` total: candidates are arbitrary subsets of
the original ops.

Divergences are matched by *kind* only (a ``return_mismatch`` must shrink
to a ``return_mismatch``, not to some unrelated ``apply_error`` the
smaller trace happens to trip), so the reproducer demonstrates the
original failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .oracle import Oracle
from .trace import Op, Trace


@dataclass
class ShrinkResult:
    """A minimized trace plus the bookkeeping tests want to assert on."""

    trace: Trace
    kind: str
    original_len: int
    replays: int

    def __len__(self) -> int:
        return len(self.trace)


class Shrinker:
    """ddmin over one divergent trace."""

    def __init__(
        self,
        trace: Trace,
        kind: Optional[str] = None,
        max_replays: int = 2000,
        **oracle_options: Any,
    ):
        self.trace = trace
        #: Divergence kind to preserve; None = discover from the first
        #: replay of the full trace.
        self.kind = kind
        self.max_replays = max_replays
        oracle_options.setdefault("stop_on_divergence", True)
        self._oracle = Oracle(trace.structure, **oracle_options)
        self.replays = 0

    def _diverges(self, ops: list[Op]) -> bool:
        if self.replays >= self.max_replays:
            return False  # budget exhausted: stop improving, keep current
        self.replays += 1
        report = self._oracle.run(self.trace.with_ops(ops))
        return any(d.kind == self.kind for d in report.divergences)

    def shrink(self) -> ShrinkResult:
        ops = list(self.trace.ops)
        if self.kind is None:
            self.replays += 1
            report = self._oracle.run(self.trace)
            if report.ok:
                raise ValueError("trace does not diverge; nothing to shrink")
            self.kind = report.divergences[0].kind
        elif not self._diverges(ops):
            raise ValueError(
                f"trace does not produce a {self.kind!r} divergence"
            )

        # ddmin: drop complements of ever-finer chunks.
        granularity = 2
        while len(ops) >= 2:
            chunk = max(1, len(ops) // granularity)
            reduced = False
            for start in range(0, len(ops), chunk):
                candidate = ops[:start] + ops[start + chunk:]
                if candidate and self._diverges(candidate):
                    ops = candidate
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if granularity >= len(ops):
                    break
                granularity = min(len(ops), granularity * 2)

        # Greedy sweep: ddmin stops at chunk boundaries; single ops often
        # still drop (later positions first, so indices stay valid).
        index = len(ops) - 1
        while index >= 0 and len(ops) > 1:
            candidate = ops[:index] + ops[index + 1:]
            if self._diverges(candidate):
                ops = candidate
            index -= 1

        return ShrinkResult(
            trace=self.trace.with_ops(ops),
            kind=self.kind,
            original_len=len(self.trace),
            replays=self.replays,
        )


def shrink_trace(trace: Trace, **options: Any) -> ShrinkResult:
    """Convenience wrapper: ``Shrinker(trace, **options).shrink()``."""
    return Shrinker(trace, **options).shrink()
