"""Trace representation for the differential-fuzzing harness.

A *trace* is a deterministic script of operations against one registered
structure: ordinary mutations (``insert``, ``delete``, ``corrupt`` …, with
primitive arguments only), interleaved invariant checks, and — for
resilience drills — armed faults.  Because every argument is a JSON
primitive, a trace round-trips losslessly through a replay file, which is
what makes shrunk reproducers shippable as CI artifacts.

Two operation names are reserved for the harness itself:

* ``@check`` — run the invariant on every engine and diff the outcomes;
* ``@fault`` — arm a :class:`~repro.resilience.faults.FaultPlan` against
  the optimistic engine (args: ``(kind, amount)`` with kind one of
  ``drop_writes``, ``corrupt_returns``, ``raise_calls``).

Everything else is dispatched to the structure's
:class:`~repro.qa.models.StructureModel` adapter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Union

#: Reserved op name: differential invariant check.
CHECK = "@check"
#: Reserved op name: arm a fault plan against the ditto engine.
FAULT = "@fault"

#: On-disk format tag (bumped on incompatible changes).
FORMAT = "repro.qa/1"

#: Fault kinds ``@fault`` accepts (mirrors FaultPlan's knobs).
FAULT_KINDS = ("drop_writes", "corrupt_returns", "raise_calls")


@dataclass(frozen=True)
class Op:
    """One trace step: an operation name and its primitive arguments."""

    name: str
    args: tuple = ()

    def __str__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


#: Convenience singleton for the differential-check step.
CHECK_OP = Op(CHECK)


@dataclass
class Trace:
    """A deterministic op script against one registered structure."""

    structure: str
    seed: int = 0
    ops: list[Op] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def with_ops(self, ops: Iterable[Op]) -> "Trace":
        """A copy of this trace with a different op list (shrinking)."""
        return Trace(self.structure, self.seed, list(ops))

    def counts(self) -> dict[str, int]:
        """Op-name histogram, for summaries and artifact metadata."""
        out: dict[str, int] = {}
        for op in self.ops:
            out[op.name] = out.get(op.name, 0) + 1
        return out

    # Serialization. ---------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "format": FORMAT,
            "structure": self.structure,
            "seed": self.seed,
            "ops": [[op.name, list(op.args)] for op in self.ops],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Trace":
        if data.get("format") != FORMAT:
            raise ValueError(
                f"not a {FORMAT} replay file (format={data.get('format')!r})"
            )
        ops = [
            Op(name, tuple(_dejson(a) for a in args))
            for name, args in data["ops"]
        ]
        return cls(data["structure"], int(data.get("seed", 0)), ops)

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_json(), f, indent=1)
            f.write("\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path) as f:
            return cls.from_json(json.load(f))


def _dejson(value: Any) -> Any:
    """JSON round-trips lists for tuples; traces only ever store scalars,
    so anything else is rejected loudly rather than silently replayed
    wrong."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise ValueError(f"non-primitive op argument in replay file: {value!r}")


def fault_op(kind: str, amount: int) -> Op:
    """Build a validated ``@fault`` op."""
    if kind not in FAULT_KINDS:
        raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {kind!r}")
    return Op(FAULT, (kind, int(amount)))
