"""The differential oracle: scratch re-execution is ground truth.

``Oracle.run(trace)`` replays one trace simultaneously against three
engines built on the same invariant entry point —

* ``scratch`` — the uninstrumented check, re-run in full (the ideal
  semantics every incrementalizer must match);
* ``ditto``   — the optimistic incrementalizer under test;
* ``naive``   — the replay-validating incrementalizer (a second,
  independently-wrong-able implementation, so a three-way diff also
  localizes *which* strategy diverged);

— all observing the *same* heap.  Every ``@check`` op runs the invariant
on each engine and diffs the outcomes (value or raised exception); after
the final check the computation graphs are audited with the
:class:`~repro.resilience.auditor.GraphAuditor`.  Any disagreement — or
an exception escaping a structure mutator, or a failed audit — is
recorded as a :class:`Divergence`, which the shrinker then minimizes.

``@fault`` ops arm a :class:`~repro.resilience.faults.FaultPlan` against
the optimistic engine mid-trace, so the fuzzer can prove the harness
*catches* seeded corruption, not merely that clean runs agree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.engine import DittoEngine
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceSink
from ..resilience.faults import FaultInjector, FaultPlan, inject_faults
from .models import StructureModel, get_model
from .trace import CHECK, FAULT, Op, Trace

#: Engine modes the oracle compares, truth source first.
DEFAULT_MODES = ("scratch", "ditto", "naive")

#: Tier qualifiers an incremental mode may carry (``ditto-specialized``
#: pins the compiled tier on, ``ditto-interpreted`` pins it off; a bare
#: mode inherits the engine default / ``DITTO_SPECIALIZE``).  The QA
#: cross-tier corpus runs ``ditto-specialized`` against
#: ``ditto-interpreted`` and demands bit-identical outcomes and counters.
_TIER_SUFFIXES = {"specialized": "on", "interpreted": "off"}

#: Strategy modes (:mod:`repro.derive`): ``derived`` pins the fold-
#: maintenance strategy on (construction fails unless the entry
#: classifies), ``hybrid`` lets the engine pick per entry.  Both run in
#: engine mode ``ditto``.  The plain ``ditto``/``naive`` modes pin
#: ``strategy="memo"`` so the differential stays memo-vs-derived even
#: when ``DITTO_STRATEGY`` is set in the environment.
_STRATEGY_MODES = {"derived": "derived", "hybrid": "hybrid"}


def _engine_config(mode: str) -> tuple[str, str, str]:
    """Split an oracle mode into ``(engine_mode, specialize, strategy)``."""
    base, _, tier = mode.partition("-")
    strategy = _STRATEGY_MODES.get(base, "memo")
    engine_mode = "ditto" if base in _STRATEGY_MODES else base
    if not tier:
        return engine_mode, "auto", strategy
    if base == "scratch" or tier not in _TIER_SUFFIXES:
        raise ValueError(
            f"invalid oracle mode {mode!r}: tier suffixes "
            f"{sorted(_TIER_SUFFIXES)} apply to incremental modes only"
        )
    return engine_mode, _TIER_SUFFIXES[tier], strategy


@dataclass
class Divergence:
    """One observed disagreement (or harness-detected failure)."""

    #: ``return_mismatch`` | ``exception_mismatch`` | ``audit_failure`` |
    #: ``apply_error``
    kind: str
    #: Index into the trace of the op that exposed it (``len(ops)`` for
    #: the implicit final check/audit).
    op_index: int
    op: Optional[Op]
    #: Per-mode outcome (or rule findings / mutator traceback text).
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        at = f"op[{self.op_index}]={self.op}" if self.op else "end of trace"
        parts = ", ".join(f"{k}={v!r}" for k, v in self.details.items())
        return f"{self.kind} at {at}: {parts}"


@dataclass
class OracleReport:
    """Everything one trace replay observed."""

    structure: str
    seed: int
    ops_applied: int = 0
    checks_run: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    #: Audit findings per audited mode (empty lists when clean).
    audit_findings: dict[str, list[str]] = field(default_factory=dict)
    faults_armed: int = 0
    duration: float = 0.0
    #: Final per-mode engine counters (int fields of ``EngineStats``),
    #: captured after the last check so cross-tier replays can assert the
    #: tiers did identical work, not merely returned identical values.
    engine_stats: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        return (
            f"{self.structure}: {self.ops_applied} ops, "
            f"{self.checks_run} checks, {verdict} ({self.duration:.2f}s)"
        )


def _int_counters(stats: Any) -> dict[str, int]:
    """The integer counter fields of an ``EngineStats`` (phase timers are
    wall-clock and excluded: tiers must match in work done, not seconds)."""
    from dataclasses import fields as dataclass_fields

    return {
        f.name: getattr(stats, f.name)
        for f in dataclass_fields(stats)
        if isinstance(getattr(stats, f.name), int)
    }


def _outcome(engine: DittoEngine, args: tuple) -> tuple[str, Any]:
    """Run one engine's check; normalize to a comparable outcome tag."""
    try:
        return ("value", engine.run(*args))
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # noqa: BLE001 - diffed, not swallowed
        return ("raise", type(exc).__name__)


def _outcomes_agree(a: tuple[str, Any], b: tuple[str, Any]) -> bool:
    if a[0] != b[0]:
        return False
    if a[0] == "raise":
        return a[1] == b[1]
    # Semantic equality within the same type (the engine's own notion):
    # True turning into 1 is a divergence even though they compare ==.
    return type(a[1]) is type(b[1]) and a[1] == b[1]


class Oracle:
    """Replay traces differentially; see the module docstring."""

    def __init__(
        self,
        model: StructureModel | str,
        modes: tuple[str, ...] = DEFAULT_MODES,
        audit: bool = True,
        validate: bool = False,
        stop_on_divergence: bool = True,
        trace_sink: Optional[TraceSink] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.model = get_model(model) if isinstance(model, str) else model
        if "scratch" not in modes or len(modes) < 2:
            raise ValueError(
                "oracle needs 'scratch' (ground truth) plus at least one "
                f"incremental mode, got {modes!r}"
            )
        for mode in modes:
            _engine_config(mode)  # raises on malformed tier qualifiers
        self.modes = modes
        self.audit = audit
        #: Also run the assertion-based ``engine.validate()`` after the
        #: final check (tier-1 corpus turns this on; it is O(graph)).
        self.validate = validate
        self.stop_on_divergence = stop_on_divergence
        self.trace_sink = trace_sink
        self.metrics = metrics

    def run(self, trace: Trace) -> OracleReport:
        if trace.structure != self.model.name:
            raise ValueError(
                f"trace targets {trace.structure!r} but oracle wraps "
                f"{self.model.name!r}"
            )
        report = OracleReport(structure=trace.structure, seed=trace.seed)
        started = time.perf_counter()
        engines: dict[str, DittoEngine] = {}
        injectors: list[FaultInjector] = []
        try:
            for mode in self.modes:
                # The shared trace sink only goes on incremental engines:
                # scratch emits one exec span per run, which would drown
                # the repair spans the trace exists to show.
                sink = self.trace_sink if mode != "scratch" else None
                engine_mode, specialize, strategy = _engine_config(mode)
                engines[mode] = DittoEngine(
                    self.model.entry,
                    mode=engine_mode,
                    recursion_limit=None,
                    trace_sink=sink,
                    specialize=specialize,
                    strategy=strategy,
                )
            structure = self.model.fresh()
            for index, op in enumerate(trace.ops):
                if op.name == CHECK:
                    self._check(engines, structure, index, op, report)
                elif op.name == FAULT:
                    self._arm_fault(engines, op, injectors, report)
                else:
                    try:
                        self.model.apply(structure, op)
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BaseException as exc:  # noqa: BLE001
                        report.divergences.append(
                            Divergence(
                                "apply_error",
                                index,
                                op,
                                {"error": f"{type(exc).__name__}: {exc}"},
                            )
                        )
                        break  # structure state is unknown from here on
                    report.ops_applied += 1
                if report.divergences and self.stop_on_divergence:
                    break
            else:
                # Implicit final check + graph audits (a trace that never
                # checks still gets one differential verdict).
                self._check(
                    engines, structure, len(trace.ops), None, report
                )
                if self.audit and (
                    not report.divergences or not self.stop_on_divergence
                ):
                    self._audit(engines, len(trace.ops), report)
                if self.validate and not report.divergences:
                    for mode, engine in engines.items():
                        if mode == "scratch":
                            continue
                        try:
                            engine.validate()
                        except AssertionError as exc:
                            report.divergences.append(
                                Divergence(
                                    "validate_error",
                                    len(trace.ops),
                                    None,
                                    {mode: str(exc)},
                                )
                            )
        finally:
            for injector in injectors:
                injector.__exit__(None, None, None)
            for mode, engine in engines.items():
                report.engine_stats[mode] = _int_counters(engine.stats)
                engine.close()
        report.duration = time.perf_counter() - started
        self._record_metrics(report)
        return report

    # Steps. -----------------------------------------------------------------

    def _check(
        self,
        engines: dict[str, DittoEngine],
        structure: Any,
        index: int,
        op: Optional[Op],
        report: OracleReport,
    ) -> None:
        args = self.model.check_args(structure)
        outcomes = {
            mode: _outcome(engine, args) for mode, engine in engines.items()
        }
        report.checks_run += 1
        truth = outcomes["scratch"]
        for mode, outcome in outcomes.items():
            if mode == "scratch" or _outcomes_agree(truth, outcome):
                continue
            kind = (
                "exception_mismatch"
                if "raise" in (truth[0], outcome[0])
                else "return_mismatch"
            )
            report.divergences.append(
                Divergence(kind, index, op, dict(outcomes))
            )
            return

    def _audit(
        self,
        engines: dict[str, DittoEngine],
        index: int,
        report: OracleReport,
    ) -> None:
        for mode, engine in engines.items():
            if mode == "scratch":
                continue  # no graph to audit
            audit = engine.audit(raise_on_failure=False)
            findings = [str(f) for f in audit.findings]
            report.audit_findings[mode] = findings
            if not audit.ok:
                report.divergences.append(
                    Divergence(
                        "audit_failure", index, None, {mode: findings}
                    )
                )

    def _arm_fault(
        self,
        engines: dict[str, DittoEngine],
        op: Op,
        injectors: list[FaultInjector],
        report: OracleReport,
    ) -> None:
        kind, amount = op.args[0], int(op.args[1])
        target = None
        for base in ("ditto", "naive"):
            for mode, engine in engines.items():
                if _engine_config(mode)[0] == base:
                    target = engine
                    break
            if target is not None:
                break
        if target is None:
            return
        if kind == "drop_writes":
            if target.tracking.write_log.fault_hook is not None:
                return  # one write-log hook at a time; later arms are no-ops
            plan = FaultPlan(drop_writes=amount)
        elif kind == "corrupt_returns":
            plan = FaultPlan(corrupt_returns=amount)
        elif kind == "raise_calls":
            plan = FaultPlan(raise_on_calls=frozenset(range(1, amount + 1)))
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        injectors.append(inject_faults(target, plan).__enter__())
        report.faults_armed += 1

    def _record_metrics(self, report: OracleReport) -> None:
        if self.metrics is None:
            return
        m = self.metrics
        m.counter("qa_traces_total", "Traces replayed by the QA oracle").inc()
        m.counter("qa_ops_total", "Mutation ops applied").inc(
            report.ops_applied
        )
        m.counter("qa_checks_total", "Differential checks executed").inc(
            report.checks_run
        )
        m.counter(
            "qa_divergences_total", "Divergences across all traces"
        ).inc(len(report.divergences))
        m.histogram(
            "qa_trace_seconds", help="Wall-clock seconds per trace replay"
        ).observe(report.duration)


def replay_trace(trace: Trace, **oracle_options: Any) -> OracleReport:
    """One-shot replay: build an Oracle for the trace's structure and run
    it.  This is the entry point generated reproducer snippets use."""
    return Oracle(trace.structure, **oracle_options).run(trace)
