"""Seeded random trace generation.

``TraceGenerator`` is the only source of randomness in the harness: it owns
one ``random.Random(seed)`` and asks the structure model for weighted ops,
interleaving differential ``@check`` steps so divergence is detected close
to the mutation that caused it (which keeps shrunk reproducers short).

The same ``(structure, seed, op_count, check_prob)`` quadruple always
produces the identical trace — on any platform, in any process — because
models draw only from the generator's RNG and structures with internal
randomness (the skip list's tower heights) use fixed seeds of their own.
"""

from __future__ import annotations

import random
from typing import Optional, Union

from .models import StructureModel, get_model
from .trace import CHECK_OP, Op, Trace, fault_op


class TraceGenerator:
    """Deterministic random mutation/check traces for one structure."""

    def __init__(
        self,
        model: Union[StructureModel, str],
        seed: int = 0,
        op_count: int = 500,
        check_prob: float = 0.25,
    ):
        self.model = get_model(model) if isinstance(model, str) else model
        self.seed = seed
        self.op_count = op_count
        if not 0.0 <= check_prob <= 1.0:
            raise ValueError(f"check_prob must be in [0, 1], got {check_prob}")
        self.check_prob = check_prob

    def generate(
        self,
        inject: Optional[tuple[str, int, int]] = None,
    ) -> Trace:
        """Build the trace.  ``inject=(kind, amount, at)`` splices an
        ``@fault`` op in at index ``at`` (clamped to the trace length) for
        resilience drills — see :mod:`repro.resilience.faults` for the
        kinds."""
        rng = random.Random(self.seed)
        ops: list[Op] = []
        while len(ops) < self.op_count:
            # Triples (corrupt/@check/revert) are kept whole: splitting
            # them would leave structures whose own mutators need a
            # consistent instance corrupted across unrelated ops.
            ops.extend(self.model.random_ops(rng))
            if rng.random() < self.check_prob:
                ops.append(CHECK_OP)
        trace = Trace(self.model.name, self.seed, ops)
        if inject is not None:
            kind, amount, at = inject
            trace.ops.insert(
                min(max(at, 0), len(trace.ops)), fault_op(kind, amount)
            )
        return trace
