"""Per-structure adapters between the fuzzer and the registered structures.

A :class:`StructureModel` tells the harness everything it needs to fuzz one
structure: how to build a fresh instance, which invariant entry point to
incrementalize, what the entry arguments are, and which operations exist —
each with a weight and a primitive-argument sampler.

Design rules that keep traces shrinkable and replayable:

* **Total application.**  ``apply`` never raises for any argument values:
  index arguments are taken modulo the current size, pops on empty
  structures are no-ops, deletes of absent keys return ``False``.  The
  delta-debugging shrinker removes arbitrary subsets of ops, so every op
  must stay meaningful on whatever state the surviving prefix produces.
  An exception escaping ``apply`` is therefore always a genuine structure
  bug, and the oracle reports it as a divergence.

* **Primitive arguments only.**  Ops may carry ints and short strings,
  never object references, so a trace serializes to a replay file.

* **Bounded universes.**  Keys/values are drawn from small ranges so
  random deletes actually hit, hash buckets collide, and rebalancing
  paths (rotations, splits, merges, rehashes) fire within a few hundred
  ops.

* **Reversible corruption where mutators need consistency.**  Direct
  field writes through the write barriers (the structures' ``corrupt*``
  helpers) are the most valuable steps — they force ``False`` results and
  repair transitions.  Structures whose *mutators* would misbehave on a
  corrupted instance (trees navigating by ordering, ropes navigating by
  cached weights) emit the corruption as a ``corrupt → @check → revert``
  triple; structures whose mutators tolerate arbitrary contents leave the
  corruption in place.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from ..structures import (
    AVLTree,
    BinaryHeap,
    BTree,
    DisjointHeapPair,
    DoublyLinkedList,
    HashTable,
    IntVector,
    OrderedIntList,
    RedBlackTree,
    Rope,
    SkipList,
    avl_invariant,
    btree_invariant,
    dll_invariant,
    hash_table_invariant,
    heap_invariant,
    heap_min,
    heaps_disjoint,
    is_ordered,
    rbt_invariant,
    rope_invariant,
    skip_list_invariant,
    table_occupancy,
    vector_digest,
)
from .trace import CHECK_OP, Op


class OpSpec:
    """One fuzzable operation: a weighted primitive-argument sampler plus
    an optional revert sampler (presence makes the generator emit the
    ``corrupt → @check → revert`` triple)."""

    __slots__ = ("name", "weight", "draw", "revert")

    def __init__(
        self,
        name: str,
        weight: int,
        draw: Callable[[random.Random], tuple],
        revert: Optional[Callable[[tuple], Op]] = None,
    ):
        self.name = name
        self.weight = weight
        self.draw = draw
        self.revert = revert


class StructureModel:
    """Adapter between the harness and one registered structure."""

    #: Registry key and CLI name.
    name: str = ""
    #: The invariant entry point (a ``@check`` function).
    entry: Any = None
    #: Operations the generator may emit.
    specs: tuple[OpSpec, ...] = ()

    def fresh(self) -> Any:
        """A new, empty structure instance."""
        raise NotImplementedError

    def check_args(self, structure: Any) -> tuple:
        """Entry-point arguments for the invariant on ``structure``."""
        raise NotImplementedError

    def apply(self, structure: Any, op: Op) -> Any:
        """Apply one mutation op; must be total (see module docstring)."""
        raise NotImplementedError

    # Generation helper shared by every model. -------------------------------

    def random_ops(self, rng: random.Random) -> list[Op]:
        """One weighted random op — expanded to a corrupt/check/revert
        triple when the spec declares a revert."""
        spec = rng.choices(self.specs, [s.weight for s in self.specs])[0]
        args = spec.draw(rng)
        op = Op(spec.name, args)
        if spec.revert is not None:
            return [op, CHECK_OP, spec.revert(args)]
        return [op]

    def _unknown(self, op: Op) -> None:
        raise ValueError(f"{self.name} model has no op {op.name!r}")


# Argument samplers shared across models: small universes on purpose.
def _key(rng: random.Random) -> tuple:
    return (rng.randrange(0, 41),)


def _key_value(rng: random.Random) -> tuple:
    return (rng.randrange(0, 41), rng.randrange(-20, 61))


def _index_value(rng: random.Random) -> tuple:
    return (rng.randrange(0, 64), rng.randrange(-20, 61))


def _nothing(rng: random.Random) -> tuple:
    return ()


def _mod_index(index: int, size: int) -> int:
    """Clamp a raw sampled index onto the current occupancy."""
    return index % size if size > 0 else 0


class OrderedListModel(StructureModel):
    name = "ordered_list"
    entry = is_ordered
    specs = (
        OpSpec("insert", 5, _key),
        OpSpec("delete", 2, _key),
        OpSpec("delete_first", 1, _nothing),
        OpSpec("corrupt", 1, _index_value),
    )

    def fresh(self) -> OrderedIntList:
        return OrderedIntList()

    def check_args(self, lst: OrderedIntList) -> tuple:
        return (lst.head,)

    def apply(self, lst: OrderedIntList, op: Op) -> Any:
        if op.name == "insert":
            return lst.insert(op.args[0])
        if op.name == "delete":
            return lst.delete(op.args[0])
        if op.name == "delete_first":
            return lst.delete_first()
        if op.name == "corrupt":
            if len(lst) == 0:
                return None
            return lst.corrupt(_mod_index(op.args[0], len(lst)), op.args[1])
        self._unknown(op)


class HashTableModel(StructureModel):
    name = "hash_table"
    entry = hash_table_invariant
    specs = (
        OpSpec("put", 5, _key_value),
        OpSpec("remove", 2, _key),
        OpSpec("corrupt", 1, _key),
        OpSpec("purge", 1, _key),
    )

    def fresh(self) -> HashTable:
        # Tiny initial capacity: a few dozen puts force several rehashes.
        return HashTable(capacity=4)

    def check_args(self, table: HashTable) -> tuple:
        return (table,)

    def apply(self, table: HashTable, op: Op) -> Any:
        if op.name == "put":
            return table.put(op.args[0], op.args[1])
        if op.name == "remove":
            return table.remove(op.args[0])
        if op.name == "corrupt":
            return table.corrupt(op.args[0])
        if op.name == "purge":
            return table.purge(op.args[0])
        self._unknown(op)


class RedBlackTreeModel(StructureModel):
    name = "red_black_tree"
    entry = rbt_invariant
    specs = (
        OpSpec(
            "corrupt_color",
            1,
            _key,
            revert=lambda args: Op("corrupt_color", args),
        ),
        OpSpec("insert", 5, _key),
        OpSpec("delete", 2, _key),
    )

    def fresh(self) -> RedBlackTree:
        return RedBlackTree()

    def check_args(self, tree: RedBlackTree) -> tuple:
        return (tree,)

    def apply(self, tree: RedBlackTree, op: Op) -> Any:
        if op.name == "insert":
            return tree.insert(op.args[0])
        if op.name == "delete":
            return tree.delete(op.args[0])
        if op.name == "corrupt_color":
            return tree.corrupt_color(op.args[0])
        self._unknown(op)


class AVLTreeModel(StructureModel):
    name = "avl_tree"
    entry = avl_invariant
    specs = (
        OpSpec(
            "corrupt_height",
            1,
            lambda rng: (rng.randrange(0, 41), rng.randrange(0, 12)),
            revert=lambda args: Op("fix_heights"),
        ),
        OpSpec("insert", 5, _key),
        OpSpec("delete", 2, _key),
    )

    def fresh(self) -> AVLTree:
        return AVLTree()

    def check_args(self, tree: AVLTree) -> tuple:
        return (tree,)

    def apply(self, tree: AVLTree, op: Op) -> Any:
        if op.name == "insert":
            return tree.insert(op.args[0])
        if op.name == "delete":
            return tree.delete(op.args[0])
        if op.name == "corrupt_height":
            return tree.corrupt_height(op.args[0], op.args[1])
        if op.name == "fix_heights":
            return self._fix_heights(tree.root)
        self._unknown(op)

    def _fix_heights(self, node: Any) -> int:
        """Deterministic repair: recompute every cached height bottom-up
        (writes go through the barriers, so engines see the repair)."""
        if node is None:
            return 0
        height = 1 + max(
            self._fix_heights(node.left), self._fix_heights(node.right)
        )
        if node.height != height:
            node.height = height
        return height


class BinaryHeapModel(StructureModel):
    name = "binary_heap"
    entry = heap_invariant
    specs = (
        OpSpec("push", 5, lambda rng: (rng.randrange(-20, 61),)),
        OpSpec("pop", 2, _nothing),
        OpSpec("corrupt", 1, _index_value),
    )

    def fresh(self) -> BinaryHeap:
        return BinaryHeap(capacity=4)

    def check_args(self, heap: BinaryHeap) -> tuple:
        return (heap,)

    def apply(self, heap: BinaryHeap, op: Op) -> Any:
        if op.name == "push":
            return heap.push(op.args[0])
        if op.name == "pop":
            return heap.pop() if len(heap) > 0 else None
        if op.name == "corrupt":
            if len(heap) == 0:
                return None
            return heap.corrupt(_mod_index(op.args[0], len(heap)), op.args[1])
        self._unknown(op)


class HeapMinModel(StructureModel):
    """The binary heap again, but under its *derived-admissible* entry
    point: ``heap_min`` is a min fold over the backing array, so this
    model is what the strategy-parity corpus replays in ``derived`` /
    ``hybrid`` oracle modes.  Same mutation surface as
    :class:`BinaryHeapModel` — pushes, pops (growth included), and raw
    corruption — only the invariant differs."""

    name = "heap_min"
    entry = heap_min
    specs = BinaryHeapModel.specs

    def fresh(self) -> BinaryHeap:
        return BinaryHeap(capacity=4)

    def check_args(self, heap: BinaryHeap) -> tuple:
        return (heap,)

    apply = BinaryHeapModel.apply


class TableOccupancyModel(StructureModel):
    """The hash table under its derived-admissible entry point:
    ``table_occupancy`` counts non-empty bucket heads, a sum fold over
    ``table.buckets`` (the chain-walking ``hash_table_invariant`` is
    DIT203-rejected and stays memo-only).  Same mutation surface as
    :class:`HashTableModel`, rehashes and corruption included."""

    name = "table_occupancy"
    entry = table_occupancy
    specs = HashTableModel.specs

    def fresh(self) -> HashTable:
        return HashTable(capacity=4)

    def check_args(self, table: HashTable) -> tuple:
        return (table,)

    apply = HashTableModel.apply


class BTreeModel(StructureModel):
    name = "btree"
    entry = btree_invariant
    specs = (
        OpSpec(
            "corrupt_key",
            1,
            # Replacement keys live in a disjoint range so the revert's
            # exhaustive scan finds exactly the corrupted cell.
            lambda rng: (rng.randrange(0, 41), 1000 + rng.randrange(0, 100)),
            revert=lambda args: Op("corrupt_key", (args[1], args[0])),
        ),
        # corrupt_count is applicable (for hand-written traces) but not
        # generated: an out-of-range count makes the *check itself* compare
        # None keys, which is a crash of the invariant, not of the engine.
        OpSpec("insert", 5, _key),
        OpSpec("delete", 2, _key),
    )

    def fresh(self) -> BTree:
        # Minimum degree 2: splits and merges fire after a handful of ops.
        return BTree(t=2)

    def check_args(self, tree: BTree) -> tuple:
        return (tree,)

    def apply(self, tree: BTree, op: Op) -> Any:
        if op.name == "insert":
            return tree.insert(op.args[0])
        if op.name == "delete":
            return tree.delete(op.args[0])
        if op.name == "corrupt_key":
            return tree.corrupt_key(op.args[0], op.args[1])
        if op.name == "corrupt_count":
            return tree.corrupt_count(op.args[0])
        self._unknown(op)


class DisjointnessModel(StructureModel):
    name = "disjointness"
    entry = heaps_disjoint
    specs = (
        OpSpec(
            "corrupt_duplicate",
            1,
            _nothing,
            revert=lambda args: Op("repair_duplicates"),
        ),
        OpSpec("submit", 4, lambda rng: (rng.randrange(0, 31),)),
        OpSpec("activate", 2, _nothing),
        OpSpec("complete", 2, _nothing),
        OpSpec("suspend", 1, _nothing),
    )

    def fresh(self) -> DisjointHeapPair:
        return DisjointHeapPair(capacity=8)

    def check_args(self, pair: DisjointHeapPair) -> tuple:
        return (pair,)

    def apply(self, pair: DisjointHeapPair, op: Op) -> Any:
        if op.name == "submit":
            return pair.submit(op.args[0])
        if op.name == "activate":
            return pair.activate()
        if op.name == "complete":
            return pair.complete()
        if op.name == "suspend":
            return pair.suspend()
        if op.name == "corrupt_duplicate":
            return pair.corrupt_duplicate()
        if op.name == "repair_duplicates":
            return self._repair_duplicates(pair)
        self._unknown(op)

    def _repair_duplicates(self, pair: DisjointHeapPair) -> int:
        """Deterministic repair: drop from ``ready`` every value that also
        occurs in ``waiting`` (rebuilding ready through push, so every
        write is barriered)."""
        waiting = {pair.waiting.items[i] for i in range(len(pair.waiting))}
        survivors = []
        removed = 0
        while len(pair.ready) > 0:
            value = pair.ready.pop()
            if value in waiting:
                removed += 1
            else:
                survivors.append(value)
        for value in survivors:
            pair.ready.push(value)
        return removed


class SkipListModel(StructureModel):
    name = "skip_list"
    entry = skip_list_invariant
    specs = (
        OpSpec("insert", 5, _key),
        OpSpec("delete", 2, _key),
        OpSpec(
            "corrupt_value",
            1,
            lambda rng: (rng.randrange(0, 41), rng.randrange(-10, 61)),
        ),
    )

    def fresh(self) -> SkipList:
        # Fixed tower-height seed: replays rebuild identical level shapes.
        return SkipList(seed=0xACE1)

    def check_args(self, sl: SkipList) -> tuple:
        return (sl,)

    def apply(self, sl: SkipList, op: Op) -> Any:
        if op.name == "insert":
            return sl.insert(op.args[0])
        if op.name == "delete":
            return sl.delete(op.args[0])
        if op.name == "corrupt_value":
            return sl.corrupt_value(op.args[0], op.args[1])
        self._unknown(op)


class DoublyLinkedListModel(StructureModel):
    name = "doubly_linked_list"
    entry = dll_invariant
    specs = (
        OpSpec(
            "corrupt_back_pointer",
            1,
            lambda rng: (rng.randrange(0, 64),),
            revert=lambda args: Op("fix_links"),
        ),
        OpSpec("push_front", 3, lambda rng: (rng.randrange(0, 100),)),
        OpSpec("push_back", 3, lambda rng: (rng.randrange(0, 100),)),
        OpSpec("pop_front", 2, _nothing),
        OpSpec("pop_back", 2, _nothing),
        OpSpec(
            "insert_after", 2, lambda rng: (rng.randrange(0, 64), rng.randrange(0, 100))
        ),
    )

    def fresh(self) -> DoublyLinkedList:
        return DoublyLinkedList()

    def check_args(self, lst: DoublyLinkedList) -> tuple:
        return (lst,)

    def apply(self, lst: DoublyLinkedList, op: Op) -> Any:
        if op.name == "push_front":
            return lst.push_front(op.args[0])
        if op.name == "push_back":
            return lst.push_back(op.args[0])
        if op.name == "pop_front":
            return lst.pop_front() if len(lst) > 0 else None
        if op.name == "pop_back":
            return lst.pop_back() if len(lst) > 0 else None
        if op.name == "insert_after":
            if len(lst) == 0:
                return lst.push_back(op.args[1])
            node = lst.head
            for _ in range(_mod_index(op.args[0], len(lst))):
                node = node.next
            return lst.insert_after(node, op.args[1])
        if op.name == "corrupt_back_pointer":
            if len(lst) == 0:
                return None
            return lst.corrupt_back_pointer(_mod_index(op.args[0], len(lst)))
        if op.name == "fix_links":
            return self._fix_links(lst)
        self._unknown(op)

    def _fix_links(self, lst: DoublyLinkedList) -> None:
        """Deterministic repair: rebuild every ``prev`` pointer (and the
        tail) from the forward chain."""
        prev = None
        node = lst.head
        while node is not None:
            if node.prev is not prev:
                node.prev = prev
            prev, node = node, node.next
        if lst.tail is not prev:
            lst.tail = prev


def _raw_index(rng: random.Random) -> int:
    """An index sampled well past either end of any reachable occupancy —
    the barrier hot path must clamp (``insert``), raise cleanly without
    logging (``pop``), or normalize (negative values).  The two confirmed
    TrackedList staleness bugs lived exactly in this regime, which no
    clamped ``_mod_index`` sampler ever reached."""
    return rng.randrange(-160, 224)


class IntVectorModel(StructureModel):
    """Fuzzes the TrackedList barrier itself; see
    :mod:`repro.structures.int_vector`.

    Unlike every other model, the index arguments of ``insert`` and
    ``pop`` are applied *raw* — out-of-range and negative values included.
    ``apply`` stays total: a clamped ``insert`` is list semantics, and an
    out-of-range ``pop`` is absorbed here (the raise itself is part of the
    contract under test and has its own regression tests)."""

    name = "int_vector"
    entry = vector_digest
    #: Sizes stay below this so recursive checks fit the default stack
    #: even outside the recursion-limit-raising test harness.
    MAX_LEN = 96
    specs = (
        OpSpec("append", 4, lambda rng: (rng.randrange(-20, 61),)),
        OpSpec(
            "insert", 4, lambda rng: (_raw_index(rng), rng.randrange(-20, 61))
        ),
        OpSpec("pop", 3, lambda rng: (_raw_index(rng),)),
        OpSpec("corrupt", 1, _index_value),
    )

    def fresh(self) -> IntVector:
        return IntVector([])

    def check_args(self, v: IntVector) -> tuple:
        return (v,)

    def apply(self, v: IntVector, op: Op) -> Any:
        if op.name == "append":
            if len(v) >= self.MAX_LEN:
                return None
            return v.append(op.args[0])
        if op.name == "insert":
            if len(v) >= self.MAX_LEN:
                return None
            return v.insert(op.args[0], op.args[1])
        if op.name == "pop":
            try:
                return v.pop(op.args[0])
            except IndexError:
                return None
        if op.name == "corrupt":
            if len(v) == 0:
                return None
            v[_mod_index(op.args[0], len(v))] = op.args[1]
            return None
        self._unknown(op)


_ALPHABET = "abcdef"


def _text(rng: random.Random) -> str:
    return "".join(
        rng.choice(_ALPHABET) for _ in range(rng.randrange(1, 5))
    )


class RopeModel(StructureModel):
    name = "rope"
    entry = rope_invariant
    specs = (
        OpSpec(
            "corrupt_weight",
            1,
            lambda rng: (1,),
            revert=lambda args: Op("corrupt_weight", (-args[0],)),
        ),
        OpSpec("insert", 4, lambda rng: (rng.randrange(0, 256), _text(rng))),
        OpSpec("append", 2, lambda rng: (_text(rng),)),
        OpSpec(
            "delete", 2, lambda rng: (rng.randrange(0, 256), rng.randrange(1, 8))
        ),
    )

    def fresh(self) -> Rope:
        return Rope("")

    def check_args(self, rope: Rope) -> tuple:
        return (rope,)

    def apply(self, rope: Rope, op: Op) -> Any:
        if op.name == "insert":
            return rope.insert(op.args[0] % (len(rope) + 1), op.args[1])
        if op.name == "append":
            return rope.append(op.args[0])
        if op.name == "delete":
            n = len(rope)
            if n == 0:
                return None
            start = op.args[0] % n
            return rope.delete(start, min(start + op.args[1], n))
        if op.name == "corrupt_weight":
            return rope.corrupt_weight(op.args[0])
        self._unknown(op)


#: All registered models, in the canonical (CLI/report) order.
MODELS: dict[str, StructureModel] = {
    model.name: model
    for model in (
        OrderedListModel(),
        HashTableModel(),
        RedBlackTreeModel(),
        AVLTreeModel(),
        BinaryHeapModel(),
        HeapMinModel(),
        TableOccupancyModel(),
        BTreeModel(),
        DisjointnessModel(),
        SkipListModel(),
        DoublyLinkedListModel(),
        RopeModel(),
        IntVectorModel(),
    )
}


def model_names() -> list[str]:
    return list(MODELS)


def get_model(name: str) -> StructureModel:
    try:
        return MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown structure {name!r}; registered: {', '.join(MODELS)}"
        ) from None
