"""``python -m repro.qa`` — the differential-fuzzing command line.

Usage::

    python -m repro.qa --seed 0 --ops 500            # all structures
    python -m repro.qa --structure rope --seed 7
    python -m repro.qa --time-budget 600             # nightly: seed sweep
    python -m repro.qa --inject drop_writes=2@120    # resilience drill
    python -m repro.qa --replay qa_repro_rope_seed7.json
    python -m repro.qa --list

On divergence the trace is delta-debugged down to a minimal reproducer
and written to ``--artifacts`` (default ``qa_artifacts/``) as both a
replay file and a runnable Python snippet; the exit status is 1.

``--trace FILE`` attaches a Chrome trace-event sink to the incremental
engines (load the output in Perfetto); ``--metrics`` prints the oracle's
Prometheus counters when the run ends.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from ..obs.metrics import MetricsRegistry
from ..obs.sinks import ChromeTraceSink
from .generator import TraceGenerator
from .models import model_names
from .oracle import Oracle
from .replay import format_report, write_reproducer
from .shrinker import Shrinker
from .trace import FAULT_KINDS, Trace


def _parse_inject(spec: str) -> tuple[str, int, int]:
    """``kind=amount@index`` → (kind, amount, index)."""
    try:
        kind, rest = spec.split("=", 1)
        amount, at = rest.split("@", 1)
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError
        return kind, int(amount), int(at)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--inject wants KIND=AMOUNT@INDEX with KIND in {FAULT_KINDS}, "
            f"got {spec!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa",
        description="Differential fuzzing of the DITTO engines: random "
        "mutation/check traces, diffed against from-scratch execution.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--ops", type=int, default=500, help="ops per generated trace"
    )
    parser.add_argument(
        "--structure",
        action="append",
        choices=model_names() + ["all"],
        help="structure(s) to fuzz (repeatable; default: all)",
    )
    parser.add_argument(
        "--check-prob",
        type=float,
        default=0.25,
        help="probability of an interleaved differential check per op",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep fuzzing fresh seeds (base seed, +1, +2, …) across all "
        "selected structures until the budget is spent",
    )
    parser.add_argument(
        "--inject",
        type=_parse_inject,
        default=None,
        metavar="KIND=AMOUNT@INDEX",
        help="splice an @fault op into each generated trace "
        f"(KIND in {', '.join(FAULT_KINDS)})",
    )
    parser.add_argument(
        "--replay", metavar="FILE", help="replay a saved trace instead"
    )
    parser.add_argument(
        "--expect-divergence",
        action="store_true",
        help="with --replay: exit 0 iff the divergence still reproduces "
        "(artifact verification)",
    )
    parser.add_argument(
        "--artifacts",
        default="qa_artifacts",
        help="directory for shrunk reproducers (default: qa_artifacts)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report divergences without minimizing them",
    )
    parser.add_argument(
        "--max-shrink-replays",
        type=int,
        default=2000,
        help="delta-debugging replay budget per divergence",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the end-of-trace GraphAuditor pass",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="also run the assertion-based engine.validate() after each "
        "trace (slower, catches internal bookkeeping drift)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace of the incremental engines' phases",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the oracle's Prometheus metrics on exit",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered structures"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="per-trace audit detail"
    )
    return parser


def _structures(args: argparse.Namespace) -> list[str]:
    chosen = args.structure or ["all"]
    if "all" in chosen:
        return model_names()
    # Preserve CLI order, drop duplicates.
    return list(dict.fromkeys(chosen))


def _fuzz_one(
    name: str,
    seed: int,
    args: argparse.Namespace,
    oracle: Oracle,
) -> tuple[bool, Optional[Trace]]:
    """Generate + replay one trace; shrink and persist on divergence.
    Returns (diverged, shrunk trace or None)."""
    generator = TraceGenerator(
        name, seed=seed, op_count=args.ops, check_prob=args.check_prob
    )
    trace = generator.generate(inject=args.inject)
    report = oracle.run(trace)
    print(format_report(report, verbose=args.verbose))
    if report.ok:
        return False, None
    if args.no_shrink:
        return True, None
    kind = report.divergences[0].kind
    shrinker = Shrinker(
        trace,
        kind=kind,
        max_replays=args.max_shrink_replays,
        audit=not args.no_audit,
        validate=args.validate,
    )
    result = shrinker.shrink()
    replay_path, snippet_path = write_reproducer(
        result.trace, args.artifacts, kind, result.original_len
    )
    print(
        f"  shrunk {result.original_len} -> {len(result)} ops "
        f"({result.replays} replays); reproducer:"
    )
    print(f"    {replay_path}")
    print(f"    {snippet_path}")
    return True, result.trace


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in model_names():
            print(name)
        return 0

    metrics = MetricsRegistry()
    sink = ChromeTraceSink(args.trace, "repro.qa") if args.trace else None

    try:
        if args.replay:
            trace = Trace.load(args.replay)
            oracle = Oracle(
                trace.structure,
                audit=not args.no_audit,
                validate=args.validate,
                trace_sink=sink,
                metrics=metrics,
            )
            report = oracle.run(trace)
            print(format_report(report, verbose=args.verbose))
            if args.expect_divergence:
                if report.ok:
                    print("expected a divergence; trace replayed clean")
                    return 1
                print("divergence reproduced")
                return 0
            return 0 if report.ok else 1

        failures = 0
        deadline = (
            time.monotonic() + args.time_budget
            if args.time_budget is not None
            else None
        )
        seed = args.seed
        rounds = 0
        while True:
            for name in _structures(args):
                oracle = Oracle(
                    name,
                    audit=not args.no_audit,
                    trace_sink=sink,
                    metrics=metrics,
                )
                diverged, _ = _fuzz_one(name, seed, args, oracle)
                failures += int(diverged)
                if deadline is not None and time.monotonic() >= deadline:
                    break
            rounds += 1
            if deadline is None or time.monotonic() >= deadline:
                break
            seed += 1
        if deadline is not None:
            print(f"time budget spent after {rounds} round(s)")
        return 1 if failures else 0
    finally:
        if args.metrics:
            print(metrics.to_prometheus_text(), end="")
        if sink is not None:
            sink.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
