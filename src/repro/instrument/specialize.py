"""The specialization tier: per-check compiled closures for the hot path.

The interpreter tier (:mod:`repro.instrument.transform`) routes every
instrumented operation through generic :class:`~repro.core.runtime.Runtime`
method dispatch — ``__ditto_rt__.get_attr(e, 'next')`` costs a method frame,
a ``_step`` frame, a ``_ditto_location`` frame, and a ``record_implicit``
frame before the field is actually read.  Those constant factors are what
§5.1.1's crossover size measures: incremental checking only wins once the
structure outgrows them.

This tier compiles each check against a set of *pre-bound closures* built
once per engine:

======================================  =======================================
interpreter tier                        specialization tier
======================================  =======================================
``__ditto_rt__.get_attr(e, 'next')``    ``__dget__(e, 'next')``
``__ditto_rt__.get_item(b, i)``         ``__ditem__(b, i)``
``__ditto_rt__.get_len(b)``             ``__dlen__(b)``
``__ditto_rt__.call(<uid>, ...)``       ``__dcall_<uid>__(...)``
``__ditto_rt__.helper(f, x)``           ``__dhelper__(f, x)``
``__ditto_rt__.method(k, 'hash', ...)`` ``__dmethod__(k, 'hash', ...)``
======================================  =======================================

Each closure pre-binds the engine state its path touches (the node stack,
the memo-table dicts, the stats record, the order list, the tracking
domain) in closure cells and *inlines* the full per-read sequence — step
accounting, interned-:class:`~repro.core.locations.Location` lookup,
implicit-argument recording with reverse-map and reference-count
maintenance, and the adoption fast test — into a single Python frame.  The
per-call closure ``__dcall_<uid>__`` likewise inlines the
:class:`~repro.core.argkeys.ArgsKey` construction, the memo probe, node
creation, and call-edge recording, with the §4 leaf-call fast path emitted
only for callees whose signature makes a leaf call statically possible
(a zero-parameter callee can never receive the required ``None``
reference argument).

What stays generic — deliberately:

* ``engine._exec`` / ``engine._naive_value`` are called through pre-bound
  method references, so misprediction handling, profiler/recorder hooks,
  and pruning behave identically in both tiers.
* ``engine._compiled[uid]`` is looked up *dynamically* on the leaf path so
  the fault injector's compiled-entry wrapping
  (:mod:`repro.resilience.faults`) still intercepts specialized leaves.
* Rebindable engine state — ``tracing``/``_sink``, ``helper_summaries``,
  ``verified_helpers`` (rebound by ``engine.lint()``), the step
  hook/limit — is read through the engine at call time.
* Step accounting shares :meth:`DittoEngine._step_tail` with the
  interpreter tier, so hooks and limits cannot drift between tiers.

The two tiers must be *bit-identical* in observable behavior — return
values, exceptions, stats counters, trace events; the QA oracle's
``ditto-specialized`` mode diffs them directly over the structure corpus.
"""

from __future__ import annotations

import ast
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

from ..core.argkeys import ArgsKey, _freeze, is_primitive
from ..core.errors import (
    InstrumentationError,
    OptimisticMispredictionError,
    ResultTypeError,
    StepLimitExceeded,
    TrackingError,
)
from ..core.locations import FieldLocation, IndexLocation, LengthLocation
from ..core.node import ComputationNode
from ..core.order_maintenance import _APPEND_GAP, _UNIVERSE, Record
from ..core.tracked import TrackedArray, TrackedObject, adopt_container
from .analysis import PURE_BUILTINS
from .transform import IMMUTABLE_RECEIVERS, is_pure_helper, is_pure_method

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import DittoEngine
    from .registry import CheckFunction

#: Scalar types never treated as heap references by the leaf-call test
#: (mirrors ``engine._SCALARS``; duplicated to avoid an import cycle).
_SCALARS = (int, float, bool, str, bytes, complex)

#: Names injected into every specialized namespace.
_READER_NAMES = ("__dget__", "__ditem__", "__dlen__", "__dhelper__",
                 "__dmethod__")

_RAW_SETATTR = object.__setattr__


class _SpecializeTransformer(ast.NodeTransformer):
    """Rewrites one check body against the pre-bound closure names."""

    def __init__(self, func: "CheckFunction", uid_of_callee: dict[str, int]):
        self.func = func
        self.uid_of_callee = uid_of_callee

    def _closure_call(self, name: str, args: list[ast.expr]) -> ast.Call:
        return ast.Call(
            func=ast.Name(id=name, ctx=ast.Load()),
            args=args,
            keywords=[],
        )

    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        if not isinstance(node.ctx, ast.Load):
            raise InstrumentationError(
                f"{self.func.name}: attribute store survived static checks"
            )
        value = self.visit(node.value)
        return ast.copy_location(
            self._closure_call(
                "__dget__", [value, ast.Constant(node.attr)]
            ),
            node,
        )

    def visit_Subscript(self, node: ast.Subscript) -> ast.AST:
        if not isinstance(node.ctx, ast.Load):
            raise InstrumentationError(
                f"{self.func.name}: subscript store survived static checks"
            )
        value = self.visit(node.value)
        index = self.visit(node.slice)
        return ast.copy_location(
            self._closure_call("__ditem__", [value, index]), node
        )

    def visit_Call(self, node: ast.Call) -> ast.AST:
        args = [self.visit(a) for a in node.args]
        func_node = node.func
        if isinstance(func_node, ast.Name):
            name = func_node.id
            if name in self.uid_of_callee:
                return ast.copy_location(
                    self._closure_call(
                        f"__dcall_{self.uid_of_callee[name]}__", args
                    ),
                    node,
                )
            if name == "len" and len(args) == 1:
                return ast.copy_location(
                    self._closure_call("__dlen__", args), node
                )
            if name in PURE_BUILTINS or name == "range":
                new = ast.Call(func=func_node, args=args, keywords=[])
                return ast.copy_location(new, node)
            return ast.copy_location(
                self._closure_call("__dhelper__", [func_node] + args), node
            )
        if isinstance(func_node, ast.Attribute):
            receiver = self.visit(func_node.value)
            return ast.copy_location(
                self._closure_call(
                    "__dmethod__",
                    [receiver, ast.Constant(func_node.attr)] + args,
                ),
                node,
            )
        raise InstrumentationError(
            f"{self.func.name}: unsupported call target at line "
            f"{node.lineno}"
        )


def _make_reader_closures(engine: "DittoEngine") -> dict[str, Callable]:
    """Build the shared read/helper/method closures for ``engine``.

    Every name bound below is either construction-final engine state (safe
    to close over) or an in-place-mutated container (the stack list, the
    memo-table dicts) whose *object* is stable for the engine's lifetime.
    Rebindable state is read through ``engine`` at call time.
    """
    stack = engine._stack
    stats = engine.stats
    table = engine.table
    entries_reverse = table._reverse
    tracking = engine.tracking
    strict = engine.strict
    runtime = engine.runtime
    attribute_reads = runtime._attribute_helper_reads
    method_summary = runtime._method_summary
    new_field_loc = FieldLocation.__new__
    new_index_loc = IndexLocation.__new__
    new_length_loc = LengthLocation.__new__

    def __dget__(obj: Any, name: str) -> Any:
        # Inlined Runtime.get_attr: step, interned-location lookup, and the
        # record_implicit path (adopt test, reverse map, location incref)
        # collapse into this one frame.
        engine.steps += 1
        if engine._step_active:
            engine._step_tail()
        if isinstance(obj, TrackedObject):
            stats.implicit_reads += 1
            node = stack[-1]
            instance_dict = obj.__dict__
            try:
                # Steady-state fast path: two plain subscripts, no method
                # binding (KeyError covers both a missing cache and a
                # missing entry).
                location = instance_dict["_ditto_loc_cache"][name]
            except KeyError:
                cache = instance_dict.get("_ditto_loc_cache")
                if cache is None:
                    cache = instance_dict["_ditto_loc_cache"] = {}
                # Inlined FieldLocation(obj, name): direct slot stores plus
                # the precomputed hash (same formula as Location.__init__),
                # skipping the two-level __init__ chain.
                location = new_field_loc(FieldLocation)
                location.container = obj
                location.field = name
                location.refcount = 0
                location._hash = hash(("FieldLocation", id(obj), name))
                cache[name] = location
            if location not in node.implicits:
                # Adoption must precede any bookkeeping (see the soundness
                # note in MemoTable.record_implicit); the identity test is
                # the steady-state fast path.
                if obj._ditto_state is not tracking:
                    adopt_container(obj, tracking)
                node.implicits.add(location)
                dependents = entries_reverse.get(location)
                if dependents is None:
                    entries_reverse[location] = {node}
                else:
                    dependents.add(node)
                # _ditto_incref_loc, inlined: ``location`` is already the
                # interned instance, so canonicalization is a no-op.  The
                # counters are plain instance-dict ints on dict-backed
                # TrackedObjects (reads fall back to the class default 0),
                # so the stores go straight into the dict.
                location.refcount += 1
                instance_dict["_ditto_locrefs"] = obj._ditto_locrefs + 1
                instance_dict["_ditto_refcount"] = obj._ditto_refcount + 1
            return getattr(obj, name)
        if obj is None or isinstance(obj, IMMUTABLE_RECEIVERS):
            return getattr(obj, name)
        if strict:
            raise TrackingError(
                f"check read attribute {name!r} of untracked mutable object "
                f"{type(obj).__name__}; derive it from TrackedObject"
            )
        return getattr(obj, name)

    def _record_array(obj: Any, location: Any) -> None:
        # Shared slow-ish half of the array paths: first-time recording of
        # an interned array location (slot or length).  Steady-state reads
        # never reach here — the ``in node.implicits`` test in the callers
        # filters them — so one extra frame only on graph growth.
        node = stack[-1]
        if location not in node.implicits:
            if obj._ditto_state is not tracking:
                adopt_container(obj, tracking)
            node.implicits.add(location)
            dependents = entries_reverse.get(location)
            if dependents is None:
                entries_reverse[location] = {node}
            else:
                dependents.add(node)
            location.refcount += 1
            obj._ditto_locrefs += 1
            obj._ditto_refcount += 1

    def __ditem__(obj: Any, index: Any) -> Any:
        engine.steps += 1
        if engine._step_active:
            engine._step_tail()
        if isinstance(obj, TrackedArray):
            stats.implicit_reads += 1
            cache = obj._ditto_loc_cache
            if isinstance(index, int) and index < 0:
                # A negative read depends on the length too (growing the
                # list retargets obj[-1] without writing the old tail).
                try:
                    location = cache["<len>"]
                except KeyError:
                    location = new_length_loc(LengthLocation)
                    location.container = obj
                    location.refcount = 0
                    location._hash = hash(
                        ("LengthLocation", id(obj), "<len>")
                    )
                    cache["<len>"] = location
                if location not in stack[-1].implicits:
                    _record_array(obj, location)
                index += len(obj)
                if index < 0:
                    # Out of range after normalization: natural IndexError,
                    # no phantom slot recorded.
                    return obj[index]
            try:
                location = cache[index]
            except KeyError:
                # Inlined IndexLocation(obj, index), like __dget__'s
                # FieldLocation path.
                location = new_index_loc(IndexLocation)
                location.container = obj
                location.index = index
                location.refcount = 0
                location._hash = hash(("IndexLocation", id(obj), index))
                cache[index] = location
            if location not in stack[-1].implicits:
                _record_array(obj, location)
            return obj[index]
        if isinstance(obj, (str, bytes, tuple, frozenset, range)):
            return obj[index]
        if strict:
            raise TrackingError(
                f"check indexed into untracked mutable container "
                f"{type(obj).__name__}; use TrackedArray/TrackedList"
            )
        return obj[index]

    def __dlen__(obj: Any) -> int:
        engine.steps += 1
        if engine._step_active:
            engine._step_tail()
        if isinstance(obj, TrackedArray):
            stats.implicit_reads += 1
            try:
                location = obj._ditto_loc_cache["<len>"]
            except KeyError:
                location = new_length_loc(LengthLocation)
                location.container = obj
                location.refcount = 0
                location._hash = hash(("LengthLocation", id(obj), "<len>"))
                obj._ditto_loc_cache["<len>"] = location
            if location not in stack[-1].implicits:
                _record_array(obj, location)
            return len(obj)
        if isinstance(obj, (str, bytes, tuple, frozenset, range)):
            return len(obj)
        if strict:
            raise TrackingError(
                f"check took len() of untracked mutable container "
                f"{type(obj).__name__}; use TrackedArray/TrackedList"
            )
        return len(obj)

    def __dhelper__(func: Any, *args: Any) -> Any:
        engine.steps += 1
        if engine._step_active:
            engine._step_tail()
        stats.helper_calls += 1
        if (
            strict
            and not is_pure_helper(func)
            and func not in engine.verified_helpers
        ):
            raise TrackingError(
                f"check called unregistered helper "
                f"{getattr(func, '__name__', func)!r}; register it with "
                f"repro.register_pure_helper if it is pure"
            )
        summary = engine.helper_summaries.get(func)
        if summary is not None:
            attribute_reads(summary, args)
        return func(*args)

    def __dmethod__(receiver: Any, name: str, *args: Any) -> Any:
        engine.steps += 1
        if engine._step_active:
            engine._step_tail()
        stats.helper_calls += 1
        if strict and not is_pure_method(receiver, name):
            raise TrackingError(
                f"check called method {name!r} on "
                f"{type(receiver).__name__}; register it with "
                f"repro.register_pure_method if it is pure"
            )
        summary = method_summary(receiver, name)
        if summary is not None:
            attribute_reads(summary, (receiver,) + args)
        return getattr(receiver, name)(*args)

    return {
        "__dget__": __dget__,
        "__ditem__": __ditem__,
        "__dlen__": __dlen__,
        "__dhelper__": __dhelper__,
        "__dmethod__": __dmethod__,
    }


def _abort_fresh_exec(engine: "DittoEngine", node: ComputationNode,
                      exc: BaseException) -> bool:
    """Mirror of ``DittoEngine._exec``'s exception branch for a fresh node
    whose execution the specialized tier inlined: roll back the partially
    recorded call edges and decide whether the failure is an optimistic
    misprediction (True) or should propagate as-is (False).  Exceptional
    path only — frames here cost nothing in the steady state."""
    table = engine.table
    partial_calls = node.calls
    for child in partial_calls:
        table.remove_edge(node, child)
    node.calls = []
    for child in set(partial_calls):
        if (
            table.contains(child)
            and child.caller_count() == 0
            and not child.in_progress
        ):
            engine._prune(child)
    if (
        engine.mode == "ditto"
        and engine.in_incremental_run
        and not engine._final_retry
    ):
        node.failed = True
        engine._failed.add(node)
        engine.stats.mispredictions += 1
        if engine.tracing:
            engine._sink.instant(
                "misprediction",
                perf_counter(),
                {"node": node.func.name, "error": repr(exc)},
            )
        return True
    return False


def _make_dcall(engine: "DittoEngine", func: "CheckFunction") -> Callable:
    """Per-callee memoized-call closure: ArgsKey construction, memo probe,
    node creation, edge recording, and the entire fresh-node execution in
    one frame, dispatching to the engine's ``_exec``/``_naive_value`` only
    for dirty re-executions (and whenever an observer — profiler, flight
    recorder, trace sink — needs the generic path's hooks)."""
    uid = func.uid
    func_name = func.name
    stack = engine._stack
    stats = engine.stats
    table = engine.table
    entries = table._entries
    contains = table.contains
    prune = engine._prune
    insert_last = engine.order.insert_last
    order_list = engine.order
    order_tail = order_list._tail
    new_record = Record.__new__
    new_node = ComputationNode.__new__
    exec_node = engine._exec
    naive = engine.mode == "naive"
    naive_value = engine._naive_value
    compiled_map = engine._compiled
    new_key = ArgsKey.__new__
    freeze = _freeze
    # §4 leaf-call fast path: statically impossible for zero-parameter
    # callees (a leaf call needs at least one None reference argument), so
    # the test is emitted only when it can ever succeed.
    leaf_possible = engine.leaf_optimization and bool(func.params)

    def __dcall__(*args: Any) -> Any:
        engine.steps += 1
        if engine._step_active:
            engine._step_tail()
        if leaf_possible:
            has_ref = False
            for a in args:
                if a is None:
                    has_ref = True
                elif not isinstance(a, _SCALARS):
                    break
            else:
                if has_ref:
                    # Run outright, attributing implicit reads to the
                    # caller; no memo entry.  The compiled entry is looked
                    # up dynamically so fault-injection wrapping applies.
                    stats.leaf_execs += 1
                    if engine.tracing:
                        engine._sink.instant(
                            "leaf_exec", perf_counter(), {"func": func_name}
                        )
                    return compiled_map[uid](*args)
        caller = stack[-1]
        # Inlined ArgsKey(args): the parts tuple and cached hash are set
        # directly, skipping the __init__ frame.
        key = new_key(ArgsKey)
        key.args = args
        key._parts = parts = tuple(map(freeze, args))
        key._hash = hash(parts)
        node = entries.get((uid, key))
        if node is None:
            # Fresh invocation: create the node and execute it inline
            # (``_exec`` minus everything a fresh node cannot need —
            # implicit clearing, old-edge pruning, value propagation).
            # The node itself is built by direct slot stores (same field
            # values as ComputationNode.__init__, with the caller edge and
            # depth folded into the initial stores).
            node = new_node(ComputationNode)
            node.func = func
            node.key = key
            node.implicits = set()
            node.calls = []
            node.callers = {caller: 1}
            node.return_val = None
            node.has_result = False
            node.dirty = False
            node.failed = False
            node.in_progress = False
            node.depth = caller.depth + 1
            node.last_exec_tick = -1
            node.value_tick = -1
            entries[(uid, key)] = node
            stats.nodes_created += 1
            # Inlined OrderList.insert_last, append-stride fast path only
            # (the near-universe-end slow path falls back to the method).
            prev_rec = order_tail.prev
            label = prev_rec.label + _APPEND_GAP
            if label < _UNIVERSE:
                rec = new_record(Record)
                rec.label = label
                rec.owner = order_list
                rec.prev = prev_rec
                rec.next = order_tail
                prev_rec.next = rec
                order_tail.prev = rec
                order_list._size += 1
            else:
                rec = insert_last()
            node.order_rec = rec
            caller.calls.append(node)
            if (
                engine.profiler is not None
                or engine.recorder is not None
                or engine.tracing
            ):
                return exec_node(node)
            node.in_progress = True
            stack.append(node)
            try:
                result = compiled_map[uid](*args)
            except StepLimitExceeded:
                raise
            except Exception as exc:
                if _abort_fresh_exec(engine, node, exc):
                    raise OptimisticMispredictionError(node, exc) from exc
                raise
            finally:
                node.in_progress = False
                stack.pop()
            if not is_primitive(result):
                raise ResultTypeError(
                    f"check {func_name!r} returned "
                    f"{type(result).__name__}; checks must return "
                    f"immutable primitive values"
                )
            engine._tick = tick = engine._tick + 1
            node.last_exec_tick = tick
            node.return_val = result
            node.has_result = True
            stats.execs += 1
            if not engine.in_incremental_run:
                stats.initial_execs += 1
            # A pruning cascade may have removed the caller edge while the
            # node was executing; complete the deferred prune (see _exec).
            if (
                node is not engine._root
                and not node.callers
                and contains(node)
            ):
                prune(node)
            return result
        # Inlined MemoTable.add_edge.
        caller.calls.append(node)
        callers = node.callers
        callers[caller] = callers.get(caller, 0) + 1
        depth = caller.depth + 1
        if node.depth == 0 or depth < node.depth:
            node.depth = depth
        if node.dirty or not node.has_result:
            return exec_node(node)
        if naive:
            return naive_value(node)
        # Optimistic memoization: reuse without validating callee returns.
        stats.reuses += 1
        if engine.tracing:
            engine._sink.instant(
                "reuse", perf_counter(), {"node": func_name}
            )
        return node.return_val

    __dcall__.__name__ = f"__dcall_{func.name}__"
    return __dcall__


def specialize(
    func: "CheckFunction",
    uid_of_callee: dict[str, int],
    closures: dict[str, Callable],
) -> Callable:
    """Compile the specialized version of one check function against the
    engine's pre-bound closures (the ``closures`` mapping must provide the
    reader names and every ``__dcall_<uid>__`` the body references)."""
    tree = func.tree()
    # Work on a private copy so multiple engines can specialize one check.
    tree = ast.parse(ast.unparse(tree)).body[0]
    assert isinstance(tree, ast.FunctionDef)
    transformer = _SpecializeTransformer(func, uid_of_callee)
    tree.body = [transformer.visit(stmt) for stmt in tree.body]
    tree.name = f"__ditto_{func.name}__"
    module = ast.Module(body=[tree], type_ignores=[])
    ast.fix_missing_locations(module)
    code = compile(
        module, filename=f"<ditto-specialized:{func.qualname}>", mode="exec"
    )
    namespace: dict[str, Any] = dict(func.globals)
    namespace.update(func.closure_vars())
    namespace.update(closures)
    exec(code, namespace)
    compiled = namespace[tree.name]
    compiled.__ditto_source__ = ast.unparse(tree)
    compiled.__ditto_specialized__ = True
    return compiled


def specialize_closure(engine: "DittoEngine") -> dict[int, Callable]:
    """Compile every function in ``engine``'s check closure against the
    specialization tier; returns ``uid -> compiled``."""
    readers = _make_reader_closures(engine)
    dcalls = {
        uid: _make_dcall(engine, fn)
        for uid, fn in engine.functions.items()
    }
    compiled: dict[int, Callable] = {}
    for uid, fn in engine.functions.items():
        uid_map = {
            name: callee.uid
            for name, callee in fn.resolve_callees().items()
        }
        closures: dict[str, Callable] = dict(readers)
        for callee_uid in set(uid_map.values()):
            closures[f"__dcall_{callee_uid}__"] = dcalls[callee_uid]
        compiled[uid] = specialize(fn, uid_map, closures)
    return compiled


def specialized_source(
    func: "CheckFunction", uid_of_callee: dict[str, int]
) -> str:
    """The specialized source text (documentation/debugging view)."""
    tree = ast.parse(ast.unparse(func.tree())).body[0]
    assert isinstance(tree, ast.FunctionDef)
    transformer = _SpecializeTransformer(func, uid_of_callee)
    tree.body = [transformer.visit(stmt) for stmt in tree.body]
    ast.fix_missing_locations(tree)
    return ast.unparse(tree)
