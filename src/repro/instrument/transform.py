"""Source-to-source instrumentation of check functions (paper Figure 3).

The original DITTO rewrites Java bytecode with Javassist; this reproduction
rewrites the check function's AST and recompiles it.  The transformation
diverts every operation the incrementalizer cares about through the engine's
runtime object (bound as ``__ditto_rt__`` in the compiled namespace):

====================================  =========================================
original check code                   instrumented code
====================================  =========================================
``e.next``            (field read)    ``__ditto_rt__.get_attr(e, 'next')``
``buckets[i]``        (element read)  ``__ditto_rt__.get_item(buckets, i)``
``len(buckets)``      (length read)   ``__ditto_rt__.get_len(buckets)``
``is_ordered(e.next)`` (check call)   ``__ditto_rt__.call(<uid>, ...)``
``key.hash_code()``   (method call)   ``__ditto_rt__.method(key, 'hash_code', ...)``
``helper(x)``         (other call)    ``__ditto_rt__.helper(helper, x)``
====================================  =========================================

``get_attr``/``get_item``/``get_len`` record the read location as an
implicit argument of the executing node; ``call`` is the memoization entry
point (``getMemoEntry`` + recursion in Figure 3); ``helper``/``method``
enforce purity of non-check calls at runtime.  Calls to pure builtins
(``abs``, ``min`` …) are left untouched.  The paper's try/catch for
optimistic mispredictions lives in the engine's ``exec`` wrapper rather than
in the rewritten body — same semantics, one catch site.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Any, Callable

from ..core.errors import InstrumentationError
from .analysis import PURE_BUILTINS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import CheckFunction

_RT = "__ditto_rt__"

#: Callables registered as pure helpers usable inside checks.
_PURE_HELPERS: set[Any] = set()
#: (type, method name) pairs registered as pure methods.
_PURE_METHODS: set[tuple[type, str]] = set()
#: Receiver types whose methods are always pure (immutable values).
IMMUTABLE_RECEIVERS = (str, int, float, bool, bytes, tuple, frozenset, complex)


def register_pure_helper(func: Callable) -> Callable:
    """Mark ``func`` (a side-effect-free, terminating function) as callable
    from inside checks.  Usable as a decorator."""
    _PURE_HELPERS.add(func)
    return func


def register_pure_method(cls: type, method_name: str) -> None:
    """Allow checks to invoke ``cls.method_name`` as a pure method."""
    _PURE_METHODS.add((cls, method_name))


def is_pure_helper(func: Any) -> bool:
    if func in _PURE_HELPERS:
        return True
    name = getattr(func, "__name__", None)
    import builtins

    return name in PURE_BUILTINS and getattr(builtins, name, None) is func


def is_pure_method(receiver: Any, method_name: str) -> bool:
    if isinstance(receiver, IMMUTABLE_RECEIVERS):
        return True
    for cls in type(receiver).__mro__:
        if (cls, method_name) in _PURE_METHODS:
            return True
    return False


class _InstrumentTransformer(ast.NodeTransformer):
    """Rewrites one check function body."""

    def __init__(self, func: "CheckFunction", uid_of_callee: dict[str, int]):
        self.func = func
        self.uid_of_callee = uid_of_callee

    def _rt_call(self, method: str, args: list[ast.expr]) -> ast.Call:
        return ast.Call(
            func=ast.Attribute(
                value=ast.Name(id=_RT, ctx=ast.Load()),
                attr=method,
                ctx=ast.Load(),
            ),
            args=args,
            keywords=[],
        )

    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        if not isinstance(node.ctx, ast.Load):
            raise InstrumentationError(
                f"{self.func.name}: attribute store survived static checks"
            )
        value = self.visit(node.value)
        return ast.copy_location(
            self._rt_call("get_attr", [value, ast.Constant(node.attr)]), node
        )

    def visit_Subscript(self, node: ast.Subscript) -> ast.AST:
        if not isinstance(node.ctx, ast.Load):
            raise InstrumentationError(
                f"{self.func.name}: subscript store survived static checks"
            )
        value = self.visit(node.value)
        index = self.visit(node.slice)
        return ast.copy_location(
            self._rt_call("get_item", [value, index]), node
        )

    def visit_Call(self, node: ast.Call) -> ast.AST:
        args = [self.visit(a) for a in node.args]
        func_node = node.func
        if isinstance(func_node, ast.Name):
            name = func_node.id
            if name in self.uid_of_callee:
                return ast.copy_location(
                    self._rt_call(
                        "call", [ast.Constant(self.uid_of_callee[name])] + args
                    ),
                    node,
                )
            if name == "len" and len(args) == 1:
                return ast.copy_location(
                    self._rt_call("get_len", args), node
                )
            if name in PURE_BUILTINS or name == "range":
                new = ast.Call(func=func_node, args=args, keywords=[])
                return ast.copy_location(new, node)
            return ast.copy_location(
                self._rt_call("helper", [func_node] + args), node
            )
        if isinstance(func_node, ast.Attribute):
            receiver = self.visit(func_node.value)
            return ast.copy_location(
                self._rt_call(
                    "method", [receiver, ast.Constant(func_node.attr)] + args
                ),
                node,
            )
        raise InstrumentationError(
            f"{self.func.name}: unsupported call target at line "
            f"{node.lineno}"
        )


def instrument(
    func: "CheckFunction", uid_of_callee: dict[str, int], rt: Any
) -> Callable:
    """Compile and return the instrumented version of ``func``, with the
    runtime object ``rt`` bound as ``__ditto_rt__``."""
    tree = func.tree()
    # Work on a private copy so multiple engines can instrument one check.
    tree = ast.parse(ast.unparse(tree)).body[0]
    assert isinstance(tree, ast.FunctionDef)
    transformer = _InstrumentTransformer(func, uid_of_callee)
    new_body = [transformer.visit(stmt) for stmt in tree.body]
    tree.body = new_body
    tree.name = f"__ditto_{func.name}__"
    module = ast.Module(body=[tree], type_ignores=[])
    ast.fix_missing_locations(module)
    code = compile(module, filename=f"<ditto:{func.qualname}>", mode="exec")
    namespace: dict[str, Any] = dict(func.globals)
    namespace.update(func.closure_vars())
    namespace[_RT] = rt
    exec(code, namespace)
    compiled = namespace[tree.name]
    compiled.__ditto_source__ = ast.unparse(tree)
    return compiled


def instrumented_source(
    func: "CheckFunction", uid_of_callee: dict[str, int]
) -> str:
    """Return the instrumented source text (for documentation/debugging;
    the Figure 3 view of a check)."""
    tree = ast.parse(ast.unparse(func.tree())).body[0]
    assert isinstance(tree, ast.FunctionDef)
    transformer = _InstrumentTransformer(func, uid_of_callee)
    tree.body = [transformer.visit(stmt) for stmt in tree.body]
    ast.fix_missing_locations(tree)
    return ast.unparse(tree)
