"""Automatic conversion of iterative checks into recursive ones.

DITTO "memoizes the computation at the level of function invocations, so
recursive checks are more efficient than iterative ones.  Most iterative
invariant checks can be rewritten without loss of clarity into recursive
checks" (paper §2).  This module mechanizes that rewriting for the two
canonical loop shapes iterative checks take:

**Predicate loops** — scan with early exit, constant fall-through::

    def all_positive(h):
        for i in range(len(h.items)):
            if h.items[i] is not None and h.items[i] <= 0:
                return False
        return True

becomes::

    def all_positive(h):
        return __loop_all_positive(h, 0)

    def __loop_all_positive(h, i):
        if i >= len(h.items):
            return True
        if h.items[i] is not None and h.items[i] <= 0:
            return False
        return __loop_all_positive(h, i + 1)

**Accumulator loops** — fold without early exit::

    def count_filled(h):
        total = 0
        for i in range(len(h.items)):
            if h.items[i] is not None:
                total = total + 1
        return total

becomes a helper threading ``total`` as an explicit argument and returning
the final accumulator, with the original return expression evaluated on the
result.

Both rewrites yield plain ``@check``-compatible functions: one memo-table
node per loop iteration, so a mutation re-runs only the iterations whose
slots changed instead of the whole loop.

Supported input shape (checked, with precise errors otherwise):

* zero or more simple initial assignments (``name = expr``);
* exactly one ``for <name> in range(stop)`` / ``range(start, stop)`` loop
  (step 1); the ``stop`` expression is re-evaluated each iteration, so
  container length changes behave exactly like a hand-written recursive
  check reading ``len`` per invocation;
* a single trailing ``return`` statement;
* predicate form: the loop body may ``return`` or ``continue``, and must
  not assign anything used after the loop;
* accumulator form: the body assigns accumulator variables but contains no
  ``return``;
* no ``break``, ``while``, or nested loops.

Use :func:`recursify` to transform a plain function and get back a
registered :class:`~repro.instrument.registry.CheckFunction` entry point
(the helper is registered automatically).
"""

from __future__ import annotations

import ast
import inspect
import itertools
import linecache
import textwrap
from typing import Callable

_module_counter = itertools.count(1)

from ..core.errors import InstrumentationError
from .registry import CheckFunction, check


class RecursifyError(InstrumentationError):
    """The function does not match the supported iterative-check shape."""


def _parse(func: Callable) -> ast.FunctionDef:
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError) as exc:
        raise RecursifyError(
            f"cannot read source of {func.__name__!r}: {exc}"
        ) from exc
    tree = ast.parse(source).body[0]
    if not isinstance(tree, ast.FunctionDef):
        raise RecursifyError("recursify expects a plain function")
    tree.decorator_list = []
    return tree


def _split_body(
    tree: ast.FunctionDef,
) -> tuple[list[ast.Assign], ast.For, ast.Return]:
    """Split the body into (initial assignments, the loop, the return)."""
    inits: list[ast.Assign] = []
    body = list(tree.body)
    # Drop a leading docstring.
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    while body and isinstance(body[0], ast.Assign):
        stmt = body[0]
        if len(stmt.targets) != 1 or not isinstance(
            stmt.targets[0], ast.Name
        ):
            raise RecursifyError(
                "initial assignments must bind a single name"
            )
        inits.append(stmt)
        body = body[1:]
    if not body or not isinstance(body[0], ast.For):
        raise RecursifyError(
            "expected exactly one for-loop after the initial assignments"
        )
    loop = body[0]
    rest = body[1:]
    if len(rest) != 1 or not isinstance(rest[0], ast.Return):
        raise RecursifyError(
            "expected a single return statement after the loop"
        )
    if loop.orelse:
        raise RecursifyError("for/else is not supported")
    return inits, loop, rest[0]


def _range_bounds(loop: ast.For) -> tuple[ast.expr, ast.expr]:
    """Return (start, stop) expressions of a step-1 range loop."""
    if not isinstance(loop.target, ast.Name):
        raise RecursifyError("loop target must be a single name")
    call = loop.iter
    if not (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
        and not call.keywords
    ):
        raise RecursifyError("loop must iterate over range(...)")
    if len(call.args) == 1:
        return ast.Constant(0), call.args[0]
    if len(call.args) == 2:
        return call.args[0], call.args[1]
    raise RecursifyError("range step is not supported")


def _names_assigned(stmts: list[ast.stmt]) -> set[str]:
    names: set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
    return names


def _contains(stmts: list[ast.stmt], kinds: tuple[type, ...]) -> bool:
    return any(
        isinstance(node, kinds)
        for stmt in stmts
        for node in ast.walk(stmt)
    )


class _ContinueRewriter(ast.NodeTransformer):
    """Replace ``continue`` with the recursive tail call."""

    def __init__(self, tail: Callable[[], ast.Return]):
        self.make_tail = tail

    def visit_Continue(self, node: ast.Continue) -> ast.AST:
        return ast.copy_location(self.make_tail(), node)

    # Don't descend into nested loops (rejected earlier anyway).
    def visit_For(self, node: ast.For) -> ast.AST:  # pragma: no cover
        return node


def recursify(func: Callable, name: str | None = None) -> CheckFunction:
    """Transform an iterative check into recursive ``@check`` functions and
    return the registered entry point."""
    tree = _parse(func)
    fname = name or tree.name
    inits, loop, trailing_return = _split_body(tree)
    start, stop = _range_bounds(loop)
    loop_var = loop.target.id  # type: ignore[union-attr]
    params = [a.arg for a in tree.args.args]
    if tree.args.vararg or tree.args.kwarg or tree.args.defaults:
        raise RecursifyError("only plain positional parameters supported")
    if _contains(loop.body, (ast.For, ast.While)):
        raise RecursifyError("nested loops are not supported")
    if _contains(loop.body, (ast.Break,)):
        raise RecursifyError("break is not supported; use return")

    has_return = _contains(loop.body, (ast.Return,))
    accumulators = sorted(
        _names_assigned(loop.body) - {loop_var}
    )
    helper_name = f"__loop_{fname}"

    if has_return and accumulators:
        raise RecursifyError(
            "loops mixing early returns with accumulator updates are not "
            "supported; split the check"
        )

    if has_return:
        module_source = _predicate_form(
            fname, helper_name, params, loop_var, start, stop,
            inits, loop.body, trailing_return,
        )
    else:
        module_source = _accumulator_form(
            fname, helper_name, params, loop_var, start, stop,
            inits, loop.body, trailing_return, accumulators,
        )

    namespace: dict = dict(getattr(func, "__globals__", {}))
    # Register the generated module in linecache so inspect.getsource (used
    # by the instrumentation pipeline) can read the new functions.
    filename = f"<recursify:{fname}:{next(_module_counter)}>"
    linecache.cache[filename] = (
        len(module_source),
        None,
        module_source.splitlines(keepends=True),
        filename,
    )
    code = compile(ast.parse(module_source), filename=filename, mode="exec")
    exec(code, namespace)
    helper = check(namespace[helper_name])
    namespace[helper_name] = helper
    entry = check(namespace[fname])
    # The entry's compiled body resolves the helper through this namespace.
    entry.original.__globals__[helper_name] = helper
    return entry


def _tail_call(helper_name: str, params: list[str], loop_var: str,
               accumulators: list[str]) -> str:
    args = ", ".join(params + [f"{loop_var} + 1"] + accumulators)
    return f"return {helper_name}({args})"


def _predicate_form(
    fname: str,
    helper_name: str,
    params: list[str],
    loop_var: str,
    start: ast.expr,
    stop: ast.expr,
    inits: list[ast.Assign],
    body: list[ast.stmt],
    trailing_return: ast.Return,
) -> str:
    if inits:
        raise RecursifyError(
            "predicate-form loops must not have initial assignments"
        )
    if trailing_return.value is None or not isinstance(
        trailing_return.value, ast.Constant
    ):
        raise RecursifyError(
            "predicate-form fall-through return must be a constant"
        )
    fall_through = ast.unparse(trailing_return.value)

    def make_tail() -> ast.Return:
        call = ast.parse(
            f"{helper_name}({', '.join(params + [f'{loop_var} + 1'])})"
        ).body[0].value  # type: ignore[attr-defined]
        return ast.Return(value=call)

    rewritten = [
        _ContinueRewriter(make_tail).visit(stmt) for stmt in body
    ]
    body_src = "\n".join(
        textwrap.indent(ast.unparse(stmt), "    ") for stmt in rewritten
    )
    head_args = ", ".join(params)
    helper_args = ", ".join(params + [loop_var])
    return (
        f"def {fname}({head_args}):\n"
        f"    return {helper_name}({', '.join(params)}, "
        f"{ast.unparse(start)})\n"
        f"\n"
        f"def {helper_name}({helper_args}):\n"
        f"    if {loop_var} >= {ast.unparse(stop)}:\n"
        f"        return {fall_through}\n"
        f"{body_src}\n"
        f"    return {helper_name}({', '.join(params)}, {loop_var} + 1)\n"
    )


def _accumulator_form(
    fname: str,
    helper_name: str,
    params: list[str],
    loop_var: str,
    start: ast.expr,
    stop: ast.expr,
    inits: list[ast.Assign],
    body: list[ast.stmt],
    trailing_return: ast.Return,
    accumulators: list[str],
) -> str:
    if not accumulators:
        raise RecursifyError(
            "accumulator-form loop assigns no variables; nothing to fold"
        )
    init_names = [stmt.targets[0].id for stmt in inits]  # type: ignore
    missing = [a for a in accumulators if a not in init_names]
    if missing:
        raise RecursifyError(
            f"accumulators {missing} are not initialized before the loop"
        )
    if trailing_return.value is None:
        raise RecursifyError("the trailing return must return a value")

    body_src = "\n".join(
        textwrap.indent(ast.unparse(stmt), "    ") for stmt in body
    )
    init_src = "\n".join(
        textwrap.indent(ast.unparse(stmt), "    ") for stmt in inits
    )
    acc_tuple = ", ".join(accumulators)
    if len(accumulators) > 1:
        unpack = f"({acc_tuple})"
        result_expr = f"({acc_tuple})"
    else:
        unpack = acc_tuple
        result_expr = acc_tuple
    head_args = ", ".join(params)
    helper_args = ", ".join(params + [loop_var] + accumulators)
    tail = _tail_call(helper_name, params, loop_var, accumulators)
    return (
        f"def {fname}({head_args}):\n"
        f"{init_src}\n"
        f"    {unpack} = {helper_name}({', '.join(params)}, "
        f"{ast.unparse(start)}, {acc_tuple})\n"
        f"    return {ast.unparse(trailing_return.value)}\n"
        f"\n"
        f"def {helper_name}({helper_args}):\n"
        f"    if {loop_var} >= {ast.unparse(stop)}:\n"
        f"        return {result_expr}\n"
        f"{body_src}\n"
        f"    {tail}\n"
    )
