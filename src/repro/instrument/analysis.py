"""Static analysis of check functions.

Two jobs, both from the paper:

1. **Admissibility** (Definition 2 + §3.5).  A check must be side-effect
   free (no heap writes, no impure calls, no escaping mutable allocations)
   and must satisfy the optimistic-memoization restriction: *no loop
   conditional or function call may depend — via data or control flow — on a
   callee return value*.  The paper notes this analysis "is fairly trivial
   because aliasing is impossible in a side-effect-free function"; ours is a
   syntax-directed taint analysis over the function body, iterated to a
   fixpoint so taint flows around loops.  Taint sources are the results of
   calls to other ``@check`` functions (the values optimistic memoization
   may serve stale).  Violations:

   * a ``while`` test or ``for`` loop that is tainted or control-dependent
     on taint;
   * a call whose argument expressions are tainted;
   * a call control-dependent on taint — an ``if``/``while`` body guarded by
     a tainted test, the tail operands of a short-circuit ``and``/``or``
     whose earlier operands are tainted, or a conditional expression with a
     tainted condition.  (This is exactly why the paper's checks compute
     ``b1``/``b2`` first and combine them afterwards.)

2. **Barrier planning** (§4).  Collect the set of object field names the
   check reads, so write barriers only log stores to those fields.

The analysis also enforces the supported check subset: positional-only
plain functions; statements limited to returns, local assignments,
``if``/``while``/``for i in range(...)``, ``assert``/``raise``/``pass``/
``break``/``continue``; no comprehensions, lambdas, ``in`` tests, nested
definitions, try/with/import/global/del, starred or keyword arguments.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.errors import CheckRestrictionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import CheckFunction

#: Builtins a check may call freely (pure, total on valid inputs).
PURE_BUILTINS = frozenset(
    {
        "abs",
        "min",
        "max",
        "ord",
        "chr",
        "int",
        "float",
        "bool",
        "str",
        "round",
        "isinstance",
        "hash",
        "divmod",
        "pow",
        "range",
        "len",
    }
)

#: Statement forms rejected outright, with their diagnostic messages.
_DISALLOWED_STMTS: dict[type, str] = {
    ast.Import: "import statements are not allowed in checks",
    ast.ImportFrom: "import statements are not allowed in checks",
    ast.Global: "global declarations are not allowed in checks",
    ast.Nonlocal: "nonlocal declarations are not allowed in checks",
    ast.Delete: "del statements are not allowed in checks",
    ast.With: "with blocks are not allowed in checks",
    ast.Try: "try blocks are not allowed in checks",
    ast.ClassDef: "nested class definitions are not allowed in checks",
    ast.FunctionDef: "nested function definitions are not allowed in checks",
    ast.AsyncFunctionDef: "async functions are not allowed in checks",
    ast.Match: "match statements are not allowed in checks",
}


@dataclass
class CheckAnalysis:
    """Results of analyzing one check function."""

    name: str
    #: Object field names read by the check (monitored-field optimization).
    fields_read: set[str] = field(default_factory=set)
    #: Whether the check indexes into arrays / reads lengths.
    reads_indices: bool = False
    reads_len: bool = False
    #: Names invoked via plain calls (check callees and helpers).
    called_names: set[str] = field(default_factory=set)
    #: Method names invoked on receiver expressions (``x.method(...)``).
    #: Recorded so the interprocedural linter can validate their purity;
    #: the per-function pass cannot resolve the receiver type.
    methods_called: set[str] = field(default_factory=set)
    #: Global names read.  Bindings are validated at registration time:
    #: a definitely-mutable binding raises; unresolvable names are assumed
    #: to be late-bound constants (the linter warns about them).
    globals_read: set[str] = field(default_factory=set)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def analyze_check(func: "CheckFunction") -> CheckAnalysis:
    """Analyze ``func``; raises :class:`CheckRestrictionError` on violations."""
    from .registry import CheckFunction

    def is_check_name(name: str) -> bool:
        return isinstance(func.lookup_name(name), CheckFunction)

    tree = func.tree()
    analysis = CheckAnalysis(name=func.name)
    _check_signature(tree, analysis)
    run_admissibility(tree, analysis, is_check_name)
    _validate_globals(func, analysis)
    if analysis.violations:
        raise CheckRestrictionError(func.name, analysis.violations)
    return analysis


def run_admissibility(
    tree: ast.FunctionDef,
    analysis: CheckAnalysis,
    is_check_name,
) -> CheckAnalysis:
    """Run the taint/admissibility fixpoint over ``tree``, accumulating
    reads and violations into ``analysis`` (without raising).

    ``is_check_name`` decides whether a plain-name call targets another
    ``@check`` function — the taint sources of the optimistic-memoization
    restriction.  Live registration resolves through the function's
    closure/globals; the file-mode linter supplies a predicate built from
    the module table, which is what makes this pass reusable without
    importing the linted code.
    """
    visitor = _Visitor(tree, analysis, is_check_name)
    # Fixpoint over the taint set (taint can flow around loop back-edges);
    # violations are reported only on the final, stable pass.
    previous: set[str] = set()
    for _ in range(len(visitor.locals_hint) + 2):
        visitor.begin_pass(report=False)
        for stmt in tree.body:
            visitor.visit(stmt)
        if visitor.tainted == previous:
            break
        previous = set(visitor.tainted)
    visitor.begin_pass(report=True)
    for stmt in tree.body:
        visitor.visit(stmt)
    return analysis


#: Built-in value types whose instances can never change under a check's
#: feet — safe constant bindings for a check's global reads.
_IMMUTABLE_SCALARS = (
    type(None), bool, int, float, complex, str, bytes, range,
)

#: ``classify_binding`` verdicts that are acceptable for ``globals_read``.
SAFE_BINDINGS = frozenset({"immutable", "callable", "tracked", "unresolved"})


def classify_binding(value: object) -> str:
    """Classify the object a check's global name is bound to.

    Returns one of:

    * ``"immutable"``  — scalar constants, tuples/frozensets of such;
    * ``"callable"``   — functions, builtins, classes, ``CheckFunction``
      (calls are validated separately; the *binding* is treated as stable
      module structure, matching the paper's static call graph);
    * ``"tracked"``    — ``TrackedObject``/``TrackedArray`` instances
      (sentinels like a red-black tree's NIL: reads of their fields go
      through the instrumented barrier-monitored path, so mutation is
      visible to the engine);
    * ``"mutable"``    — lists, dicts, sets, bytearrays, and untracked
      instances: mutation would be invisible to the write barriers.
    """
    from ..core.tracked import TrackedArray, TrackedObject
    from .registry import CheckFunction

    if isinstance(value, _IMMUTABLE_SCALARS):
        return "immutable"
    if isinstance(value, (tuple, frozenset)):
        if all(classify_binding(v) == "immutable" for v in value):
            return "immutable"
        return "mutable"
    if isinstance(value, (TrackedObject, TrackedArray)):
        return "tracked"
    if isinstance(value, (CheckFunction, type)) or callable(value):
        return "callable"
    return "mutable"


def _validate_globals(func: "CheckFunction", analysis: CheckAnalysis) -> None:
    """Registration-time satellite of the DIT004 lint rule: a check whose
    ``globals_read`` resolves (through closure cells or module globals —
    ``CheckFunction.lookup_name``) to a definitely-mutable binding is
    rejected outright.  Unresolvable names are assumed late-bound
    constants; the linter downgrades those to a warning instead."""
    for name in sorted(analysis.globals_read):
        value = func.lookup_name(name)
        if value is None:
            continue  # unresolved, or bound to None (immutable either way)
        if classify_binding(value) == "mutable":
            analysis.violations.append(
                f"reads global {name!r} bound to a mutable "
                f"{type(value).__name__}; checks may only read immutable "
                f"constants, callables, or tracked sentinels — mutations "
                f"of this binding would be invisible to the write barriers"
            )


def _check_signature(tree: ast.FunctionDef, analysis: CheckAnalysis) -> None:
    args = tree.args
    problems = []
    if args.vararg or args.kwarg:
        problems.append("*args/**kwargs parameters are not supported")
    if args.kwonlyargs:
        problems.append("keyword-only parameters are not supported")
    if args.defaults or args.kw_defaults:
        problems.append("parameter defaults are not supported")
    if args.posonlyargs:
        problems.append("positional-only markers are not supported")
    analysis.violations.extend(problems)


class _Visitor(ast.NodeVisitor):
    """Single-function walker computing taint, reads, and violations."""

    def __init__(
        self,
        tree: ast.FunctionDef,
        analysis: CheckAnalysis,
        is_check_name,
    ):
        self.analysis = analysis
        self.tree = tree
        self.is_check_name = is_check_name
        self.params = {a.arg for a in self.tree.args.args}
        self.locals_hint = {
            n.id
            for n in ast.walk(self.tree)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
        }
        self.tainted: set[str] = set()
        self.report = False
        self.guard_depth = 0  # nesting inside taint-guarded control flow

    def begin_pass(self, report: bool) -> None:
        self.report = report
        self.guard_depth = 0

    # Helpers. ----------------------------------------------------------------

    def _violation(self, node: ast.AST, message: str) -> None:
        if self.report:
            line = getattr(node, "lineno", "?")
            self.analysis.violations.append(f"line {line}: {message}")

    def _is_check_call(self, node: ast.Call) -> bool:
        if isinstance(node.func, ast.Name):
            return bool(self.is_check_name(node.func.id))
        return False

    def _expr_tainted(self, node: ast.AST) -> bool:
        """True if evaluating ``node`` can observe a callee return value."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id in self.tainted:
                    return True
            elif isinstance(sub, ast.Call) and self._is_check_call(sub):
                return True
        return False

    @staticmethod
    def _contains_call(node: ast.AST) -> bool:
        return any(isinstance(sub, ast.Call) for sub in ast.walk(node))

    def _visit_guarded(self, stmts: list[ast.stmt], guarded: bool) -> None:
        if guarded:
            self.guard_depth += 1
        for stmt in stmts:
            self.visit(stmt)
        if guarded:
            self.guard_depth -= 1

    # Statements. ---------------------------------------------------------------

    def generic_visit(self, node: ast.AST) -> None:
        for klass, message in _DISALLOWED_STMTS.items():
            if isinstance(node, klass):
                self._violation(node, message)
                return
        super().generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        value_tainted = self._expr_tainted(node.value)
        for target in node.targets:
            self._assign_target(target, value_tainted)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._assign_target(target=node.target,
                                tainted=self._expr_tainted(node.value))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if not isinstance(node.target, ast.Name):
            self._violation(
                node, "augmented assignment to a heap location (side effect)"
            )
            return
        if self._expr_tainted(node.value):
            self.tainted.add(node.target.id)

    def _assign_target(self, target: ast.AST, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted or self.guard_depth > 0:
                self.tainted.add(target.id)
            elif target.id in self.tainted:
                # Re-assignment with a clean value launders the taint only
                # outside taint-guarded control flow.
                self.tainted.discard(target.id)
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._assign_target(elt, tainted)
        else:
            self._violation(
                target, "assignment to a heap location (side effect)"
            )

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        guarded = self._expr_tainted(node.test)
        # Path-insensitive join: taint after the statement is the union of
        # the branch taints (a clean assignment in one branch must not
        # launder taint acquired in the other).
        before = set(self.tainted)
        self._visit_guarded(node.body, guarded)
        after_body = self.tainted
        self.tainted = set(before)
        self._visit_guarded(node.orelse, guarded)
        self.tainted |= after_body

    def visit_While(self, node: ast.While) -> None:
        if self._expr_tainted(node.test) or self.guard_depth > 0:
            self._violation(
                node,
                "loop conditional depends on a callee return value "
                "(forbidden by the optimistic-memoization restriction)",
            )
        self.visit(node.test)
        # The body repeats under the loop test; treat it as guarded when the
        # test is tainted (already a violation) — visit normally otherwise.
        # The body may run zero times, so taint surviving from before the
        # loop is unioned back in (no laundering through loop bodies).
        before = set(self.tainted)
        self._visit_guarded(node.body, guarded=False)
        self._visit_guarded(node.orelse, guarded=False)
        self.tainted |= before

    def visit_For(self, node: ast.For) -> None:
        iter_ok = (
            isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range"
        )
        if not iter_ok:
            self._violation(
                node,
                "for-loops may only iterate over range(...); iterate "
                "recursively over data structures instead",
            )
        if self._expr_tainted(node.iter) or self.guard_depth > 0:
            self._violation(
                node,
                "loop bounds depend on a callee return value "
                "(forbidden by the optimistic-memoization restriction)",
            )
        for arg in getattr(node.iter, "args", []):
            self.visit(arg)
        if isinstance(node.target, ast.Name):
            self.tainted.discard(node.target.id)
        else:
            self._violation(node.target, "for-loop target must be a name")
        before = set(self.tainted)
        self._visit_guarded(node.body, guarded=False)
        self._visit_guarded(node.orelse, guarded=False)
        self.tainted |= before  # the body may run zero times

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.visit(node.value)

    # Expressions. ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if node.keywords:
            self._violation(node, "keyword arguments are not supported")
        if any(isinstance(a, ast.Starred) for a in node.args):
            self._violation(node, "starred arguments are not supported")
        if self.guard_depth > 0:
            self._violation(
                node,
                "call is control-dependent on a callee return value "
                "(forbidden by the optimistic-memoization restriction)",
            )
        for arg in node.args:
            if self._expr_tainted(arg):
                self._violation(
                    node,
                    "call argument depends on a callee return value "
                    "(forbidden by the optimistic-memoization restriction)",
                )
                break
        if isinstance(node.func, ast.Name):
            self.analysis.called_names.add(node.func.id)
            if node.func.id == "len":
                self.analysis.reads_len = True
        elif isinstance(node.func, ast.Attribute):
            # Method call: the receiver expression is visited (its reads
            # count); the method attribute itself is not a field read.
            # The name is recorded so the interprocedural linter can
            # validate the method's purity against the registry — the
            # per-function pass cannot resolve the receiver's type (the
            # runtime's strict ``method`` dispatch remains the backstop).
            self.analysis.methods_called.add(node.func.attr)
            self.visit(node.func.value)
            for arg in node.args:
                self.visit(arg)
            return
        else:
            self._violation(node, "unsupported call target")
        for arg in node.args:
            self.visit(arg)

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        earlier_tainted = False
        for operand in node.values:
            if earlier_tainted and self._contains_call(operand):
                self._violation(
                    operand,
                    "short-circuit operand containing a call is guarded by "
                    "a callee return value; compute both operands first "
                    "(e.g. b1 = f(...); b2 = g(...); return b1 and b2)",
                )
            self._visit_guarded_expr(operand, earlier_tainted)
            if self._expr_tainted(operand):
                earlier_tainted = True

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self.visit(node.test)
        guarded = self._expr_tainted(node.test)
        self._visit_guarded_expr(node.body, guarded)
        self._visit_guarded_expr(node.orelse, guarded)

    def _visit_guarded_expr(self, node: ast.AST, guarded: bool) -> None:
        if guarded:
            self.guard_depth += 1
        self.visit(node)
        if guarded:
            self.guard_depth -= 1

    def visit_Compare(self, node: ast.Compare) -> None:
        for op in node.ops:
            if isinstance(op, (ast.In, ast.NotIn)):
                self._violation(
                    node,
                    "membership tests read an unbounded set of locations; "
                    "write a recursive search instead",
                )
        self.visit(node.left)
        for comp in node.comparators:
            self.visit(comp)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Store):
            self._violation(node, "store to an object field (side effect)")
        elif isinstance(node.ctx, ast.Del):
            self._violation(node, "deletion of an object field (side effect)")
        else:
            self.analysis.fields_read.add(node.attr)
        self.visit(node.value)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Store):
            self._violation(node, "store to a container slot (side effect)")
        elif isinstance(node.ctx, ast.Del):
            self._violation(node, "deletion of a container slot (side effect)")
        else:
            self.analysis.reads_indices = True
        if isinstance(node.slice, ast.Slice):
            self._violation(node, "slicing is not supported in checks")
        self.visit(node.value)
        self.visit(node.slice)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if (
                node.id not in self.params
                and node.id not in self.locals_hint
                and node.id not in PURE_BUILTINS
            ):
                self.analysis.globals_read.add(node.id)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._violation(node, "lambdas are not allowed in checks")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._violation(node, "comprehensions are not allowed in checks")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._violation(node, "comprehensions are not allowed in checks")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._violation(node, "comprehensions are not allowed in checks")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._violation(node, "generator expressions are not allowed in checks")

    def visit_List(self, node: ast.List) -> None:
        self._violation(
            node, "list allocation in a check (mutable value could escape)"
        )

    def visit_Dict(self, node: ast.Dict) -> None:
        self._violation(
            node, "dict allocation in a check (mutable value could escape)"
        )

    def visit_Set(self, node: ast.Set) -> None:
        self._violation(
            node, "set allocation in a check (mutable value could escape)"
        )

    def visit_Yield(self, node: ast.Yield) -> None:
        self._violation(node, "generators are not allowed in checks")

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._violation(node, "generators are not allowed in checks")

    def visit_Await(self, node: ast.Await) -> None:
        self._violation(node, "await is not allowed in checks")

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self.visit(node.value)
        if self._expr_tainted(node.value) or self.guard_depth > 0:
            self.tainted.add(node.target.id)
