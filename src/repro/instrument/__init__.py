"""Instrumentation pipeline: registry, static analysis, AST transformation."""

from .analysis import PURE_BUILTINS, CheckAnalysis, analyze_check
from .recursify import RecursifyError, recursify
from .registry import CheckFunction, check, closure_of
from .transform import (
    IMMUTABLE_RECEIVERS,
    instrument,
    instrumented_source,
    register_pure_helper,
    register_pure_method,
)

__all__ = [
    "analyze_check",
    "check",
    "CheckAnalysis",
    "CheckFunction",
    "closure_of",
    "IMMUTABLE_RECEIVERS",
    "instrument",
    "instrumented_source",
    "PURE_BUILTINS",
    "recursify",
    "RecursifyError",
    "register_pure_helper",
    "register_pure_method",
]
