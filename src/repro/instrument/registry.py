"""Check-function registry and the :func:`check` decorator.

A *data structure invariant check* (Definition 2) is a set of potentially
recursive, side-effect-free functions.  Programmers mark each function with
``@check``::

    @check
    def is_ordered(e):
        if e is None:
            return True
        ...
        return is_ordered(e.next)

``@check`` returns a :class:`CheckFunction` wrapper that

* still behaves like the original function when called directly (so the
  un-incrementalized check remains runnable — that is the paper's "standard
  invariant checks" baseline), and
* carries everything the instrumentation pipeline needs: the source AST,
  a stable uid, the static-analysis results (computed lazily), and a cache
  of compiled instrumented code per engine configuration.

Check functions must be plain module-level functions with positional
parameters only; the supported language subset is enforced by
:mod:`repro.instrument.analysis`.
"""

from __future__ import annotations

import ast
import inspect
import itertools
import textwrap
from typing import Any, Callable, Optional

from ..core.errors import InstrumentationError

_uid_counter = itertools.count(1)


class CheckFunction:
    """Wrapper for one function participating in an invariant check."""

    def __init__(self, func: Callable):
        if not inspect.isfunction(func):
            raise InstrumentationError(
                f"@check requires a plain function, got {func!r}"
            )
        self.original = func
        self.name = func.__name__
        self.qualname = func.__qualname__
        self.uid = next(_uid_counter)
        self._tree: Optional[ast.FunctionDef] = None
        self._analysis: Any = None  # CheckAnalysis, set lazily
        self.__wrapped__ = func
        self.__name__ = func.__name__
        self.__doc__ = func.__doc__

    # Direct (un-incrementalized) invocation. --------------------------------

    def __call__(self, *args: Any) -> Any:
        return self.original(*args)

    # Introspection for the instrumentation pipeline. -------------------------

    @property
    def globals(self) -> dict[str, Any]:
        return self.original.__globals__

    def closure_vars(self) -> dict[str, Any]:
        """Free variables captured by the function (checks defined in local
        scopes — tests, factories — reference their callees through closure
        cells rather than module globals)."""
        closure = self.original.__closure__
        if not closure:
            return {}
        names = self.original.__code__.co_freevars
        out: dict[str, Any] = {}
        for name, cell in zip(names, closure):
            try:
                out[name] = cell.cell_contents
            except ValueError:  # cell not yet filled
                continue
        return out

    def lookup_name(self, name: str) -> Any:
        """Resolve ``name`` the way the function body would: closure cell
        first, then module globals (builtins are left to the runtime)."""
        cells = self.closure_vars()
        if name in cells:
            return cells[name]
        return self.globals.get(name)

    @property
    def params(self) -> list[str]:
        return [p for p in inspect.signature(self.original).parameters]

    def tree(self) -> ast.FunctionDef:
        """Parse (once) and return the function's def as an AST node, with
        decorators stripped."""
        if self._tree is None:
            try:
                source = inspect.getsource(self.original)
            except (OSError, TypeError) as exc:
                raise InstrumentationError(
                    f"cannot retrieve source of check {self.name!r}: {exc}"
                ) from exc
            source = textwrap.dedent(source)
            module = ast.parse(source)
            if not module.body or not isinstance(
                module.body[0], ast.FunctionDef
            ):
                raise InstrumentationError(
                    f"check {self.name!r} is not a plain function definition"
                )
            tree = module.body[0]
            tree.decorator_list = []
            self._tree = tree
        return self._tree

    def analysis(self) -> Any:
        """Return the (cached) static analysis of this check function."""
        if self._analysis is None:
            from .analysis import analyze_check

            self._analysis = analyze_check(self)
        return self._analysis

    def resolve_callees(self) -> dict[str, "CheckFunction"]:
        """Map names called by this function to the :class:`CheckFunction`
        objects they resolve to in the function's global namespace."""
        callees: dict[str, CheckFunction] = {}
        for name in self.analysis().called_names:
            target = self.lookup_name(name)
            if isinstance(target, CheckFunction):
                callees[name] = target
        return callees

    def __repr__(self) -> str:
        return f"<check {self.qualname} uid={self.uid}>"


def check(func: Callable) -> CheckFunction:
    """Decorator registering ``func`` as a DITTO check function."""
    if isinstance(func, CheckFunction):
        return func
    return CheckFunction(func)


def closure_of(entry: CheckFunction) -> dict[int, CheckFunction]:
    """All check functions reachable from ``entry`` through check-to-check
    calls (the paper identifies a multi-function check by its entry point).
    Keys are uids."""
    seen: dict[int, CheckFunction] = {entry.uid: entry}
    frontier = [entry]
    while frontier:
        fn = frontier.pop()
        for callee in fn.resolve_callees().values():
            if callee.uid not in seen:
                seen[callee.uid] = callee
                frontier.append(callee)
    return seen
