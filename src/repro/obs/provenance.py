"""Repair provenance: "why did this run re-execute what it re-executed?"

The observability twin of the resilience layer's auditor: where the
auditor asks *is the graph well-formed*, the provenance recorder asks
*what chain of causes produced this repair* — mutated heap location →
dirtied computation node(s) → re-executed nodes (with the phase that
re-ran each) → propagated ancestors → pruned nodes.

Usage::

    from repro.obs import enable_provenance, explain_last_run

    enable_provenance(engine)
    lst.insert(42)
    engine.run(lst.head)
    print(explain_last_run(engine))          # text rendering
    print(explain_last_run(engine).dot())    # Graphviz rendering

Recording is off by default (the engine carries a ``None`` recorder and
pays one identity test per hook); when enabled it costs one label
construction per dirtied/executed/pruned node, so leave it off in timed
benchmark regions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import DittoEngine
    from ..core.locations import Location
    from ..core.node import ComputationNode


def _node_label(node: "ComputationNode") -> str:
    args = ", ".join(_short(repr(a)) for a in node.explicit_args)
    return f"{node.func.name}({args})"


def _dot_escape(label: str) -> str:
    """Escape a label for a double-quoted Graphviz string.

    Backslashes first (so escapes introduced below survive), then
    quotes; carriage returns are dropped and newlines become the ``\\n``
    line-break escape Graphviz renders as a centred break.  ``repr``'d
    check arguments can contain any of these — an un-escaped ``"`` or a
    raw newline truncates the attribute and breaks ``dot`` parsing."""
    return (
        label.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\r", "")
        .replace("\n", "\\n")
    )


def _short(text: str, limit: int = 32) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


class RunRecord:
    """Everything the recorder captured about one engine run."""

    __slots__ = (
        "run_index",
        "incremental",
        "mutated",
        "dirtied",
        "executed",
        "pruned",
        "duration",
        "phase_times",
        "aborted",
    )

    def __init__(self, run_index: int, incremental: bool):
        self.run_index = run_index
        self.incremental = incremental
        #: Mutated-location reprs, in write-log order (may repeat a slot
        #: only once: the engine consumes a deduplicated log).
        self.mutated: list[str] = []
        #: location repr -> labels of the nodes it dirtied.
        self.dirtied: dict[str, list[str]] = {}
        #: ``(node label, phase)`` per successful (re-)execution, in
        #: execution order.  Phases: ``exec`` (dirty repair / demand),
        #: ``propagate`` (ancestor re-run after a changed return value),
        #: ``retry`` (post-misprediction).
        self.executed: list[tuple[str, str]] = []
        #: Labels of nodes pruned out of the graph during the run.
        self.pruned: list[str] = []
        self.duration = 0.0
        self.phase_times: dict[str, float] = {}
        #: True when the run raised before completing.
        self.aborted = False


class RunRecorder:
    """Engine-side hook target; attach with :func:`enable_provenance`."""

    __slots__ = ("last", "_current")

    def __init__(self) -> None:
        self.last: Optional[RunRecord] = None
        self._current: Optional[RunRecord] = None

    # Hooks the engine calls (all guarded by ``recorder is not None``). ------

    def begin_run(
        self,
        engine: "DittoEngine",
        pending: list["Location"],
        dirty: set["ComputationNode"],
        incremental: bool,
    ) -> None:
        record = RunRecord(engine.stats.runs, incremental)
        for location in pending:
            text = repr(location)
            record.mutated.append(text)
            record.dirtied[text] = sorted(
                _node_label(node)
                for node in engine.table.nodes_reading(location)
                if node in dirty
            )
        self._current = record

    def executed(self, node: "ComputationNode", phase: str) -> None:
        if self._current is not None:
            self._current.executed.append((_node_label(node), phase))

    def pruned(self, nodes: list["ComputationNode"]) -> None:
        if self._current is not None:
            self._current.pruned.extend(_node_label(n) for n in nodes)

    def end_run(
        self,
        duration: float,
        phase_times: dict[str, float],
        aborted: bool,
    ) -> None:
        record = self._current
        if record is None:
            return
        record.duration = duration
        record.phase_times = dict(phase_times)
        record.aborted = aborted
        self.last = record
        self._current = None


class RunExplanation:
    """Renderable view over a :class:`RunRecord`."""

    def __init__(self, record: RunRecord, check_name: str):
        self.record = record
        self.check_name = check_name

    def __str__(self) -> str:
        return self.text()

    def text(self) -> str:
        """The human answer to "why did this run re-execute N nodes?"."""
        r = self.record
        kind = "incremental" if r.incremental else "initial (graph build)"
        status = " [ABORTED]" if r.aborted else ""
        lines = [
            f"run #{r.run_index} of check {self.check_name!r} — {kind}, "
            f"{r.duration * 1000:.3f} ms{status}"
        ]
        if r.phase_times:
            breakdown = ", ".join(
                f"{name} {seconds * 1000:.3f}ms"
                for name, seconds in r.phase_times.items()
            )
            lines.append(f"phases: {breakdown}")
        if r.mutated:
            lines.append(f"mutated {len(r.mutated)} location(s):")
            for location in r.mutated:
                lines.append(f"  * {location}")
                targets = r.dirtied.get(location, [])
                if targets:
                    for label in targets:
                        lines.append(f"      dirtied {label}")
                else:
                    lines.append(
                        "      dirtied nothing (no live node reads it)"
                    )
        elif r.incremental:
            lines.append("no mutations since the previous run")
        by_phase: dict[str, int] = {}
        for _, phase in r.executed:
            by_phase[phase] = by_phase.get(phase, 0) + 1
        summary = (
            " (" + ", ".join(f"{p}: {n}" for p, n in by_phase.items()) + ")"
            if by_phase
            else ""
        )
        lines.append(f"re-executed {len(r.executed)} node(s){summary}:")
        for label, phase in r.executed:
            lines.append(f"  [{phase}] {label}")
        if r.pruned:
            lines.append(f"pruned {len(r.pruned)} node(s):")
            for label in r.pruned:
                lines.append(f"  - {label}")
        return "\n".join(lines)

    def dot(self) -> str:
        """Graphviz digraph of the provenance chain: mutated locations →
        dirtied nodes → the phases that re-executed them."""
        r = self.record
        lines = [
            "digraph provenance {",
            "  rankdir=LR;",
            '  node [shape=box, fontsize=10];',
        ]
        ids: dict[str, str] = {}

        def node_id(label: str, shape: str, color: str) -> str:
            existing = ids.get(label)
            if existing is not None:
                return existing
            name = f"n{len(ids)}"
            ids[label] = name
            escaped = _dot_escape(label)
            lines.append(
                f'  {name} [label="{escaped}", shape={shape}, '
                f'color="{color}"];'
            )
            return name

        for location in r.mutated:
            loc_id = node_id(location, "note", "orange")
            for label in r.dirtied.get(location, []):
                dst = node_id(label, "box", "red")
                lines.append(f"  {loc_id} -> {dst} [label=\"dirtied\"];")
        # Re-executions: dirty-repair nodes in red; propagation/retry
        # ancestors hang off a dashed phase marker.
        for label, phase in r.executed:
            src = node_id(label, "box", "red")
            if phase != "exec":
                marker = node_id(f"{phase} phase", "ellipse", "blue")
                lines.append(f"  {marker} -> {src} [style=dashed];")
        for label in r.pruned:
            node_id(f"pruned: {label}", "box", "gray")
        lines.append("}")
        return "\n".join(lines)


def enable_provenance(engine: "DittoEngine") -> RunRecorder:
    """Attach (or return the existing) per-run provenance recorder."""
    recorder = engine.recorder
    if recorder is None:
        recorder = RunRecorder()
        engine.recorder = recorder
    return recorder


def disable_provenance(engine: "DittoEngine") -> None:
    """Detach the recorder; subsequent runs record nothing."""
    engine.recorder = None


def explain_last_run(engine: "DittoEngine") -> RunExplanation:
    """Explain the most recent recorded run of ``engine``.

    Requires :func:`enable_provenance` to have been attached before the
    run; raises ``ValueError`` with instructions otherwise."""
    recorder = engine.recorder
    if recorder is None:
        raise ValueError(
            "provenance recording is not enabled on this engine; call "
            "repro.obs.enable_provenance(engine) before running it"
        )
    if recorder.last is None:
        raise ValueError(
            "no recorded run yet: enable_provenance() only observes runs "
            "that start after it is attached"
        )
    return RunExplanation(recorder.last, engine.entry.name)
