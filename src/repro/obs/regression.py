"""Continuous regression detection: rolling baselines over repair latency.

The benchmarks catch regressions at PR time; this module catches them *in
flight* — a structure whose repair cost quietly drifts from O(Δ) toward
O(n) (the exact failure mode DITTO exists to prevent, paper §5) shows up
as a latency trend long before a gate trips.  Two complementary
detectors run per check name:

* **EWMA** — an exponentially-weighted moving average of repair latency
  (``alpha`` per sample).  A sample breaching ``threshold ×`` the current
  average starts a streak; ``consecutive`` breaches in a row raise an
  alert (single outliers — a GC pause, a cold cache — never do).  After
  alerting, the average re-seeds at the breaching level so a persistent
  plateau alerts once, not forever.
* **p99 vs frozen baseline** — a rolling window's p99 compared against
  the p99 *frozen at warmup*.  The EWMA tracks drift and therefore
  forgives slow creep; the frozen p99 does not.  After alerting, the
  baseline re-freezes at the new level (same once-per-plateau rule).

Both detectors gate on ``min_samples`` so cold starts (graph build, JIT
warmup of the interpreter's caches) never alert.  Alerts are
:class:`RegressionAlert` records, kept in a bounded log, optionally
emitted as ``regression_alert`` trace instants and mirrored into a
:class:`~repro.obs.metrics.MetricsRegistry`.

``observe()`` is thread-safe (one lock; the serving pool calls it from
every worker thread).  Feed it whatever latency is most meaningful —
``engine.last_duration`` standalone, or service time (duration minus
queue wait) in the pool, so queueing under load doesn't masquerade as a
repair-cost regression.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import MetricsRegistry
    from .trace import TraceSink

#: Alerts retained per detector; oldest dropped first.
MAX_ALERTS = 256


@dataclass
class RegressionAlert:
    """One breached baseline."""

    check: str
    #: ``"ewma"`` or ``"p99"``.
    kind: str
    #: The latency (seconds) that breached.
    observed: float
    #: The baseline it breached against (EWMA value or frozen p99).
    baseline: float
    #: ``observed / baseline``.
    ratio: float
    #: Samples seen for this check when the alert fired.
    samples: int
    wall_time: float = 0.0

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "kind": self.kind,
            "observed_s": self.observed,
            "baseline_s": self.baseline,
            "ratio": self.ratio,
            "samples": self.samples,
            "wall_time": self.wall_time,
        }


def _p99(samples: list[float]) -> float:
    """Nearest-rank p99 (no interpolation: deterministic, and exact for
    the small windows used here)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(0.99 * len(ordered))))
    return ordered[rank]


class _CheckBaseline:
    """Per-check detector state."""

    __slots__ = ("ewma", "count", "streak", "window", "frozen_p99")

    def __init__(self, window: int) -> None:
        self.ewma: Optional[float] = None
        self.count = 0
        self.streak = 0
        self.window: deque[float] = deque(maxlen=window)
        self.frozen_p99: Optional[float] = None


class RegressionDetector:
    """Rolling EWMA + frozen-p99 latency baselines, keyed by check name."""

    def __init__(
        self,
        *,
        alpha: float = 0.2,
        threshold: float = 2.0,
        consecutive: int = 3,
        p99_threshold: float = 2.0,
        min_samples: int = 20,
        window: int = 128,
        sink: Optional["TraceSink"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        namespace: str = "ditto",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if threshold <= 1.0 or p99_threshold <= 1.0:
            raise ValueError("thresholds must exceed 1.0")
        if consecutive < 1:
            raise ValueError(f"consecutive must be >= 1, got {consecutive}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.alpha = alpha
        self.threshold = threshold
        self.consecutive = consecutive
        self.p99_threshold = p99_threshold
        self.min_samples = min_samples
        self.window = window
        self.sink = sink
        self.namespace = namespace
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        self._checks: dict[str, _CheckBaseline] = {}
        self.alerts: deque[RegressionAlert] = deque(maxlen=MAX_ALERTS)
        self.samples_seen = 0

    def observe(
        self, check: str, duration: float
    ) -> list[RegressionAlert]:
        """Feed one repair latency; returns the alerts it raised (usually
        empty, at most one per detector kind)."""
        raised: list[RegressionAlert] = []
        with self._lock:
            self.samples_seen += 1
            state = self._checks.get(check)
            if state is None:
                state = _CheckBaseline(self.window)
                self._checks[check] = state
            state.count += 1
            state.window.append(duration)

            # EWMA detector.
            if state.ewma is None:
                state.ewma = duration
            elif state.count <= self.min_samples:
                state.ewma += self.alpha * (duration - state.ewma)
            else:
                baseline = state.ewma
                if baseline > 0 and duration > self.threshold * baseline:
                    state.streak += 1
                    if state.streak >= self.consecutive:
                        raised.append(
                            RegressionAlert(
                                check=check,
                                kind="ewma",
                                observed=duration,
                                baseline=baseline,
                                ratio=duration / baseline,
                                samples=state.count,
                            )
                        )
                        state.streak = 0
                        # Re-seed at the plateau so the same level alerts
                        # once; a *further* jump alerts again.
                        state.ewma = duration
                else:
                    state.streak = 0
                    state.ewma += self.alpha * (duration - state.ewma)

            # Frozen-p99 detector: freeze at warmup, compare when the
            # window is full.
            if state.frozen_p99 is None:
                if state.count >= self.min_samples:
                    state.frozen_p99 = _p99(list(state.window))
            elif len(state.window) == state.window.maxlen:
                ordered = sorted(state.window)
                current = _p99(ordered)
                # Corroboration: on windows this small the nearest-rank
                # p99 *is* the max, so a lone outlier would breach it.
                # Require the `consecutive`-th largest sample to breach
                # too — i.e. at least `consecutive` window samples sit
                # above the bar, the same plateau rule the EWMA uses.
                kth = ordered[-min(self.consecutive, len(ordered))]
                bar = self.p99_threshold * state.frozen_p99
                if state.frozen_p99 > 0 and current > bar and kth > bar:
                    raised.append(
                        RegressionAlert(
                            check=check,
                            kind="p99",
                            observed=current,
                            baseline=state.frozen_p99,
                            ratio=current / state.frozen_p99,
                            samples=state.count,
                        )
                    )
                    state.frozen_p99 = current

            for alert in raised:
                alert.wall_time = time.time()
                self.alerts.append(alert)

        # Emission outside the lock: sinks and registries have their own
        # synchronization story and must not be held under ours.
        for alert in raised:
            self._emit(alert)
        return raised

    def _emit(self, alert: RegressionAlert) -> None:
        sink = self.sink
        if sink is not None:
            sink.instant(
                "regression_alert", self._clock(), alert.to_dict()
            )
        registry = self._metrics
        if registry is not None:
            ns = self.namespace
            registry.counter(
                f"{ns}_regression_alerts_total",
                "Repair-latency baseline breaches (all checks)",
            ).inc()
            registry.counter(
                f"{ns}_regression_alerts_total_{alert.kind}",
                f"Baseline breaches from the {alert.kind} detector",
            ).inc()

    # Introspection. --------------------------------------------------------

    def baseline(self, check: str) -> Optional[dict]:
        """Current baseline state for ``check`` (``None`` before the
        first sample)."""
        with self._lock:
            state = self._checks.get(check)
            if state is None:
                return None
            return {
                "check": check,
                "samples": state.count,
                "ewma_s": state.ewma,
                "frozen_p99_s": state.frozen_p99,
                "window": len(state.window),
                "streak": state.streak,
            }

    def to_json(self) -> dict:
        with self._lock:
            return {
                "kind": "regression_report",
                "samples_seen": self.samples_seen,
                "thresholds": {
                    "alpha": self.alpha,
                    "ewma": self.threshold,
                    "consecutive": self.consecutive,
                    "p99": self.p99_threshold,
                    "min_samples": self.min_samples,
                    "window": self.window,
                },
                "baselines": [
                    {
                        "check": name,
                        "samples": state.count,
                        "ewma_s": state.ewma,
                        "frozen_p99_s": state.frozen_p99,
                    }
                    for name, state in sorted(self._checks.items())
                ],
                "alerts": [a.to_dict() for a in self.alerts],
            }
