"""Black-box flight recorder: bounded always-on capture, dumped on faults.

Serving a thousand tenants, the interesting engine is the one that just
fell back to scratch, blew its deadline, tripped its breaker, or diverged
from the QA oracle — and by the time a human looks, the evidence is gone.
The flight recorder keeps a *bounded* ring of recent run summaries plus a
trace slice per engine (constant memory, no I/O on the happy path) and
writes a self-contained JSON artifact the moment a trigger fires:

* ``scratch_fallback`` — the engine degraded to a from-scratch rebuild
  (detected from the ``scratch_fallbacks`` counter delta);
* ``deadline_abort`` — a cooperative deadline cancelled a repair
  (``deadline_aborts`` delta);
* ``breaker_trip`` — the tenant's circuit breaker opened
  (:class:`repro.serving.EnginePool` calls :meth:`trigger`);
* ``qa_divergence`` — a differential harness observed the incremental
  answer disagreeing with its oracle (chaos harness calls
  :meth:`trigger`).

Artifacts are rate-limited (``max_dumps`` per recorder plus an optional
``min_dump_interval``) so a persistently-sick tenant cannot fill a disk,
and each one carries everything ``python -m repro.obs analyze`` needs to
summarize the incident offline: engine identity, cumulative stats and
timers, the fallback-event log, the run-summary ring, and the trace
slice.

Attaching splices a :class:`~repro.obs.trace.RingBufferSink` into the
engine via :class:`~repro.obs.trace.TeeSink`, preserving whatever sink
the user already installed.  The recorder is single-threaded by design:
in the pool every tenant gets its own recorder and all access happens
under the tenant's shard lock.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from .trace import NullSink, RingBufferSink, TeeSink, TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import DittoEngine

#: Trigger reasons detected from stats deltas, mapped to the counter
#: that reveals them.
_WATCHED_COUNTERS: tuple[tuple[str, str], ...] = (
    ("scratch_fallback", "scratch_fallbacks"),
    ("deadline_abort", "deadline_aborts"),
)

#: All trigger reasons a dump can carry.
TRIGGER_REASONS: frozenset[str] = frozenset(
    {"scratch_fallback", "deadline_abort", "breaker_trip",
     "qa_divergence", "manual"}
)


class FlightRecorder:
    """Bounded black-box capture for one engine.

    Parameters
    ----------
    dump_dir:
        Directory artifacts are written into (created on first dump).
    name:
        Identity embedded in artifact filenames and payloads — the
        tenant key, in the pool.
    capacity:
        Run summaries retained (ring; oldest evicted).
    trace_capacity:
        Trace events retained (ring; oldest evicted).
    max_dumps:
        Hard cap on artifacts this recorder will ever write.
    min_dump_interval:
        Minimum seconds between dumps; triggers inside the window are
        counted in ``dumps_suppressed`` instead of written.
    """

    def __init__(
        self,
        dump_dir: str,
        *,
        name: str = "engine",
        capacity: int = 32,
        trace_capacity: int = 512,
        max_dumps: int = 16,
        min_dump_interval: float = 0.0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_dumps <= 0:
            raise ValueError(f"max_dumps must be positive, got {max_dumps}")
        self.dump_dir = dump_dir
        self.name = name
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.min_dump_interval = min_dump_interval
        self._clock = clock

        self.engine: Optional["DittoEngine"] = None
        self._ring = RingBufferSink(trace_capacity)
        self._prior_sink: Optional[TraceSink] = None
        self._runs: deque[dict] = deque(maxlen=capacity)
        self._watch: dict[str, int] = {}
        self._last_snapshot: dict[str, int] = {}

        #: Paths of artifacts written, oldest first (bounded by
        #: ``max_dumps``).
        self.dumps: list[str] = []
        #: Triggers that fired past the rate limit.
        self.dumps_suppressed = 0
        self._last_dump_at: Optional[float] = None
        self._seq = 0

    # Attachment. -----------------------------------------------------------

    def attach(self, engine: "DittoEngine") -> "FlightRecorder":
        """Splice the trace ring into ``engine`` and baseline its
        counters.  One engine per recorder."""
        if self.engine is not None:
            raise ValueError("flight recorder is already attached")
        self.engine = engine
        prior = engine.trace_sink
        self._prior_sink = prior
        if isinstance(prior, NullSink):
            engine.trace_sink = self._ring
        else:
            engine.trace_sink = TeeSink([prior, self._ring])
        snapshot = engine.stats.snapshot()
        self._watch = {
            reason: snapshot[counter]
            for reason, counter in _WATCHED_COUNTERS
        }
        self._last_snapshot = snapshot
        return self

    def detach(self) -> None:
        """Restore the engine's original sink and drop the reference."""
        engine = self.engine
        if engine is None:
            return
        engine.trace_sink = self._prior_sink
        self.engine = None
        self._prior_sink = None

    # Per-run observation. --------------------------------------------------

    def observe(self) -> Optional[str]:
        """Record a summary of the engine's most recent run and fire any
        stats-delta triggers.  Call after every ``engine.run()`` (the
        pool does).  Returns the artifact path if this observation
        triggered a dump, else ``None``."""
        engine = self.engine
        if engine is None:
            raise ValueError("flight recorder is not attached")
        snapshot = engine.stats.snapshot()
        delta = {
            key: snapshot[key] - self._last_snapshot.get(key, 0)
            for key in snapshot
            if snapshot[key] != self._last_snapshot.get(key, 0)
        }
        self._last_snapshot = snapshot
        self._runs.append(
            {
                "ts": self._clock(),
                "run_index": snapshot.get("runs", 0),
                "duration_s": engine.last_duration,
                "phase_times_s": dict(engine.last_phase_times),
                "delta": delta,
                "graph_size": len(engine.table),
            }
        )
        path: Optional[str] = None
        for reason, counter in _WATCHED_COUNTERS:
            current = snapshot[counter]
            if current > self._watch[reason]:
                jumped = current - self._watch[reason]
                self._watch[reason] = current
                attempt = self.trigger(
                    reason, detail=f"{counter} +{jumped}"
                )
                if path is None:
                    path = attempt
        return path

    # Triggers and dumping. -------------------------------------------------

    def trigger(self, reason: str, detail: str = "") -> Optional[str]:
        """Request a dump for ``reason``; honours the rate limits.
        Returns the artifact path, or ``None`` if suppressed."""
        if reason not in TRIGGER_REASONS:
            raise ValueError(
                f"unknown trigger reason {reason!r}; expected one of "
                f"{sorted(TRIGGER_REASONS)}"
            )
        if len(self.dumps) >= self.max_dumps:
            self.dumps_suppressed += 1
            return None
        now = self._clock()
        if (
            self._last_dump_at is not None
            and self.min_dump_interval > 0
            and now - self._last_dump_at < self.min_dump_interval
        ):
            self.dumps_suppressed += 1
            return None
        self._last_dump_at = now
        return self._dump(reason, detail)

    def _dump(self, reason: str, detail: str) -> str:
        engine = self.engine
        if engine is None:
            raise ValueError("flight recorder is not attached")
        os.makedirs(self.dump_dir, exist_ok=True)
        self._seq += 1
        filename = f"flight_{self.name}_{self._seq:03d}_{reason}.json"
        path = os.path.join(self.dump_dir, filename)
        payload = {
            "kind": "flight_dump",
            "schema": 1,
            "name": self.name,
            "reason": reason,
            "detail": detail,
            "wall_time": time.time(),
            "check": engine.entry.name,
            "mode": engine.mode,
            "graph_size": len(engine.table),
            "stats": engine.stats.snapshot(),
            "timers_s": engine.stats.timers(),
            "fallback_events": [
                {
                    "reason": event.reason,
                    "run_index": event.run_index,
                    "duration_s": event.duration,
                    "rebuilt": event.rebuilt,
                    "cooldown": event.cooldown,
                    "detail": event.detail,
                }
                for event in engine.stats.fallback_events
            ],
            "runs": list(self._runs),
            "trace": [
                {
                    "kind": event.kind,
                    "name": event.name,
                    "ts": event.ts,
                    "dur": event.dur,
                    "args": event.args,
                }
                for event in self._ring.events()
            ],
            "dumps_suppressed": self.dumps_suppressed,
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        self.dumps.append(path)
        if engine.tracing:
            engine._sink.instant(
                "flight_dump",
                self._clock(),
                {"reason": reason, "path": path, "detail": detail},
            )
        return path

    # Introspection. --------------------------------------------------------

    def runs(self) -> list[dict]:
        """Retained run summaries, oldest first."""
        return list(self._runs)

    def trace_events(self) -> list:
        """Retained trace events, oldest first."""
        return self._ring.events()

    def __len__(self) -> int:
        return len(self._runs)
