"""Metrics: counters, gauges, fixed-bucket histograms, Prometheus export.

A :class:`MetricsRegistry` holds named instruments; ``snapshot()`` returns
plain dicts for programmatic scraping and ``to_prometheus_text()`` renders
the Prometheus text exposition format (the ``/metrics`` endpoint payload a
production deployment would serve).  :func:`parse_prometheus_text` is the
inverse used by the round-trip tests — and by anyone who wants the
exported numbers back without a Prometheus server.

:class:`EngineMetrics` is the bridge from a :class:`~repro.core.engine.
DittoEngine`: it mirrors every declared ``EngineStats`` counter and phase
timer into the registry and feeds the paper-relevant histograms — repair
latency (``run_duration_seconds``), per-run dirtied-node count, and graph
size — from :class:`~repro.core.stats.RunReport` objects.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import DittoEngine
    from ..core.stats import RunReport

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically non-decreasing total."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self._value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally-accumulated total (e.g. an ``EngineStats``
        field); refuses to move backwards."""
        if value < self._value:
            raise ValueError(
                f"counter {self.name} cannot decrease "
                f"({self._value} -> {value})"
            )
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


#: Default latency buckets (seconds): 10µs .. 1s, roughly 1-2.5-5 spaced.
DEFAULT_LATENCY_BUCKETS = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: Default size buckets (counts): 0 .. 10k, decade-ish spaced.
DEFAULT_SIZE_BUCKETS = (
    0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative-bucket semantics.

    ``buckets`` are the inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the rest.  Bucket counts are stored per-bucket and accumulated
    at render time, so :meth:`observe` is one bisect + one increment.

    Boundary semantics are pinned to Prometheus's: ``le`` is **inclusive**
    at exact bucket edges — ``observe(b)`` for a bound ``b`` lands in the
    ``le="b"`` bucket, never the next one up (``bisect_left`` returns the
    index *of* the equal bound).  ``tests/test_obs_metrics.py`` holds a
    property test round-tripping edge-exact observations through
    :func:`parse_prometheus_text`, ``+Inf`` included; a drive-by rewrite
    to ``bisect_right`` breaks it."""

    __slots__ = ("name", "help", "bounds", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with +Inf."""
        out = []
        total = 0
        for bound, count in zip(
            self.bounds + (math.inf,), self._counts
        ):
            total += count
            out.append((bound, total))
        return out


class MetricsRegistry:
    """Named instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def _get_or_create(self, cls: type, name: str, *args: Any) -> Any:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        metric = cls(name, *args)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view: scalars for counters/gauges, a dict with
        ``sum``/``count``/``buckets`` for histograms."""
        out: dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                out[name] = {
                    "sum": metric.sum,
                    "count": metric.count,
                    "buckets": {
                        _format_value(bound): total
                        for bound, total in metric.cumulative_buckets()
                    },
                }
            else:
                out[name] = metric.value
        return out

    def to_prometheus_text(self) -> str:
        """Render the Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_format_value(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(metric.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                for bound, total in metric.cumulative_buckets():
                    lines.append(
                        f'{name}_bucket{{le="{_format_value(bound)}"}} '
                        f"{total}"
                    )
                lines.append(f"{name}_sum {_format_value(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
        return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)


def parse_prometheus_text(text: str) -> dict[str, dict[str, Any]]:
    """Parse the text exposition format back into
    ``{metric_name: {"type": ..., "help": ..., "samples": {...}}}``.

    Sample keys are ``sample_name`` for label-less samples and
    ``sample_name{labels}`` verbatim otherwise, mapping to float values.
    Histogram samples therefore appear under ``name_bucket{le="..."}``,
    ``name_sum``, and ``name_count`` of the ``name`` metric."""
    metrics: dict[str, dict[str, Any]] = {}

    def family(name: str) -> dict[str, Any]:
        return metrics.setdefault(
            name, {"type": "untyped", "help": "", "samples": {}}
        )

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            family(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            family(name)["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable sample line: {raw!r}")
        sample_name = match.group("name")
        labels = match.group("labels")
        value_text = match.group("value")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and trimmed in metrics:
                base = trimmed
                break
        key = sample_name if labels is None else f"{sample_name}{{{labels}}}"
        family(base)["samples"][key] = value
    return metrics


class EngineMetrics:
    """Mirror one engine's stats into a :class:`MetricsRegistry`.

    * every ``EngineStats.COUNTER_FIELDS`` entry becomes
      ``<ns>_<field>_total``;
    * every phase timer becomes ``<ns>_phase_seconds_total_<phase>``;
    * ``<ns>_graph_size_nodes`` gauges the live computation graph;
    * :meth:`record_run` feeds the histograms: repair latency, per-run
      dirtied-node count, and graph size.

    Call :meth:`to_prometheus_text` (which refreshes first) to scrape.
    """

    def __init__(
        self,
        engine: "DittoEngine",
        registry: Optional[MetricsRegistry] = None,
        namespace: str = "ditto",
    ):
        self.engine = engine
        self.registry = registry if registry is not None else MetricsRegistry()
        self.namespace = namespace
        ns = namespace
        self.run_duration = self.registry.histogram(
            f"{ns}_run_duration_seconds",
            "Wall-clock seconds per engine.run() call",
            DEFAULT_LATENCY_BUCKETS,
        )
        self.dirtied_nodes = self.registry.histogram(
            f"{ns}_dirtied_nodes_per_run",
            "Computation nodes dirtied by the mutations one run repaired",
            DEFAULT_SIZE_BUCKETS,
        )
        self.graph_size_hist = self.registry.histogram(
            f"{ns}_graph_size_sampled_nodes",
            "Graph size observed at each recorded run",
            DEFAULT_SIZE_BUCKETS,
        )
        self.graph_size = self.registry.gauge(
            f"{ns}_graph_size_nodes", "Live computation-graph nodes"
        )
        self.refresh()

    def record_run(self, report: "RunReport") -> None:
        """Account one :class:`RunReport` (histograms + counter mirror)."""
        self.run_duration.observe(report.duration)
        self.dirtied_nodes.observe(report.delta.get("dirty_marked", 0))
        self.graph_size_hist.observe(report.graph_size)
        self.refresh()

    def refresh(self) -> None:
        """Re-mirror the engine's lifetime counters and phase timers."""
        stats = self.engine.stats
        ns = self.namespace
        for name in stats.COUNTER_FIELDS:
            self.registry.counter(
                f"{ns}_{name}_total", f"EngineStats.{name}"
            ).set_total(getattr(stats, name))
        for phase, seconds in stats.timers().items():
            self.registry.counter(
                f"{ns}_phase_seconds_total_{phase}",
                f"Wall-clock seconds spent in the {phase} phase",
            ).set_total(seconds)
        self.graph_size.set(self.engine.graph_size)
        self._refresh_barrier_counters(ns)

    _BARRIER_HELP = {
        "barrier_logged": (
            "Barrier events offered to the write log (pre-deduplication; "
            "one coalesced range counts once)"
        ),
        "barrier_filtered": (
            "Writes to referenced containers suppressed by the "
            "monitored-field filter"
        ),
        "barrier_coalesced": (
            "Slots covered by coalesced range barriers (per-slot appends "
            "avoided)"
        ),
        "barrier_location_filtered": (
            "Monitored writes to referenced containers suppressed by the "
            "per-location refinement (no live implicit argument reads the "
            "exact location)"
        ),
    }

    def _refresh_barrier_counters(self, ns: str) -> None:
        """Mirror the engine's write-barrier counters.  These live on the
        engine's tracking state, not on EngineStats: the barrier is shared
        by every engine bound to that isolation domain.  A
        ``reset_tracking()`` zeroes the source while Prometheus counters
        must not decrease, so stale-high mirrors are left in place until
        the source catches up."""
        for name, value in self.engine.tracking.barrier_counters().items():
            counter = self.registry.counter(
                f"{ns}_{name}_total", self._BARRIER_HELP[name]
            )
            if value >= counter.value:
                counter.set_total(value)

    def to_prometheus_text(self) -> str:
        self.refresh()
        return self.registry.to_prometheus_text()


class PoolMetrics:
    """Mirror an :class:`~repro.serving.pool.EnginePool`'s health into a
    :class:`MetricsRegistry`.

    Lifetime totals from ``pool.stats()`` become ``<ns>_<name>_total``
    counters; point-in-time values (tenant/breaker/queue occupancy) become
    gauges; :meth:`record_check` feeds per-call latency and queue-wait
    histograms from :class:`~repro.serving.results.CheckResult` objects.
    """

    #: ``pool.stats()`` keys that are occupancy readings, not totals.
    GAUGE_KEYS = frozenset(
        {"tenants", "shards", "workers", "queue_depth", "breakers",
         "breakers_open"}
    )

    def __init__(
        self,
        pool: Any,
        registry: Optional[MetricsRegistry] = None,
        namespace: str = "ditto_pool",
    ):
        self.pool = pool
        self.registry = registry if registry is not None else MetricsRegistry()
        self.namespace = namespace
        ns = namespace
        self.check_duration = self.registry.histogram(
            f"{ns}_check_duration_seconds",
            "Wall-clock seconds per pool.check() call (admission to result)",
            DEFAULT_LATENCY_BUCKETS,
        )
        self.queue_wait = self.registry.histogram(
            f"{ns}_queue_wait_seconds",
            "Seconds a check waited for its shard lock and worker",
            DEFAULT_LATENCY_BUCKETS,
        )
        self.refresh()

    def record_check(self, result: Any) -> None:
        """Account one pool check result (histograms + counter mirror)."""
        self.check_duration.observe(getattr(result, "duration", 0.0))
        self.queue_wait.observe(getattr(result, "queue_time", 0.0))
        self.refresh()

    def refresh(self) -> None:
        """Re-mirror the pool's stats dict."""
        ns = self.namespace
        for name, value in self.pool.stats().items():
            if name in self.GAUGE_KEYS:
                self.registry.gauge(
                    f"{ns}_{name}", f"EnginePool {name}"
                ).set(value)
            else:
                counter = self.registry.counter(
                    f"{ns}_{name}_total", f"EnginePool {name}"
                )
                if value >= counter.value:
                    counter.set_total(value)

    def to_prometheus_text(self) -> str:
        self.refresh()
        return self.registry.to_prometheus_text()
