"""CLI for the observability layer.

``python -m repro.obs analyze`` reads back the artifacts the layer
writes — flight-recorder dumps, repair profiles, regression reports,
chaos records, JSONL traces, and committed ``BENCH_*.json`` history —
summarizes them, and (with ``--against``/``--gate``) fails the build on
benchmark drift.  See :mod:`repro.obs.analyze`.
"""

from __future__ import annotations

import argparse
from typing import Optional

from .analyze import analyze


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.split("\n")[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "analyze",
        help="summarize observability artifacts; diff/gate BENCH history",
        add_help=False,  # repro.obs.analyze owns the full arg surface
    )
    args, rest = parser.parse_known_args(argv)
    if args.command == "analyze":
        return analyze(rest)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
