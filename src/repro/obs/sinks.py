"""Serializing trace sinks: JSON Lines and Chrome ``trace_event`` output.

:class:`JsonlSink` streams one JSON object per event — the format for
piping into ad-hoc analysis (``jq``, pandas).  :class:`ChromeTraceSink`
writes the Chrome trace-event format (a ``{"traceEvents": [...]}`` JSON
object) that Perfetto (https://ui.perfetto.dev), ``chrome://tracing``, and
speedscope all load directly: phase spans become complete (``"ph": "X"``)
events with microsecond ``ts``/``dur``, instants become ``"ph": "i"``
events.

:func:`validate_chrome_trace` is the schema check CI runs against the
benchmark-produced trace before uploading it as an artifact.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Optional, Union

from .trace import INSTANT_NAMES, SPAN_NAMES, TraceEvent, TraceSink

#: ``ph`` values this package emits / accepts when validating.
_CHROME_PHASES = frozenset("XiBEMC")


def _as_micros(seconds: float) -> float:
    return round(seconds * 1e6, 3)


class JsonlSink(TraceSink):
    """Write each event immediately as one JSON line.

    ``target`` may be a path (opened and owned by the sink) or an open
    text-mode file object (flushed but left open on :meth:`close`).

    Long-running captures — multi-hour soaks, serving chaos campaigns —
    need two guarantees a naive streaming sink doesn't give:

    * **visibility**: :meth:`flush` pushes buffered lines to the OS on
      demand, and ``flush_every=N`` does it automatically every N events,
      so a crash (or a tail -f) never misses more than N events;
    * **bounded disk**: ``max_bytes`` rotates the output once the current
      file would exceed it — ``path`` is renamed to ``path.1`` (newest
      backup), existing backups shift up, the oldest past ``backups``
      falls off, and a fresh ``path`` continues the stream.  Rotation
      requires a path target (a borrowed file object cannot be reopened;
      passing both raises ``ValueError``).  Events are never split: a
      line larger than ``max_bytes`` still lands whole in a fresh file.

    Timestamps stay rebased against the *first* event across rotations,
    so concatenating ``path.N .. path.1 path`` replays the full capture
    on one clock."""

    def __init__(
        self,
        target: Union[str, io.TextIOBase],
        *,
        max_bytes: Optional[int] = None,
        backups: int = 3,
        flush_every: Optional[int] = None,
    ):
        super().__init__()
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if backups < 1:
            raise ValueError(f"backups must be >= 1, got {backups}")
        if flush_every is not None and flush_every <= 0:
            raise ValueError(
                f"flush_every must be positive, got {flush_every}"
            )
        if isinstance(target, str):
            self._path: Optional[str] = target
            self._file: Any = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            if max_bytes is not None:
                raise ValueError(
                    "max_bytes rotation requires a path target: a "
                    "borrowed file object cannot be reopened"
                )
            self._path = None
            self._file = target
            self._owns_file = False
        self.max_bytes = max_bytes
        self.backups = backups
        self.flush_every = flush_every
        self.rotations = 0
        self._written = 0
        self._since_flush = 0
        self._base_ts: Optional[float] = None

    def _record(self, event: TraceEvent) -> None:
        if self._base_ts is None:
            self._base_ts = event.ts
        payload: dict[str, Any] = {
            "kind": event.kind,
            "name": event.name,
            "ts_us": _as_micros(event.ts - self._base_ts),
        }
        if event.dur is not None:
            payload["dur_us"] = _as_micros(event.dur)
        if event.args:
            payload["args"] = event.args
        line = json.dumps(payload) + "\n"
        if self.max_bytes is not None:
            size = len(line.encode("utf-8"))
            if self._written > 0 and self._written + size > self.max_bytes:
                self._rotate()
            self._written += size
        self._file.write(line)
        if self.flush_every is not None:
            self._since_flush += 1
            if self._since_flush >= self.flush_every:
                self.flush()

    def flush(self) -> None:
        """Push buffered lines to the OS now."""
        self._file.flush()
        self._since_flush = 0

    def _rotate(self) -> None:
        """``path`` -> ``path.1`` (newest), shifting older backups up and
        dropping the one past ``backups``."""
        assert self._path is not None  # guaranteed by __init__
        self._file.close()
        oldest = f"{self._path}.{self.backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.backups - 1, 0, -1):
            src = f"{self._path}.{index}"
            if os.path.exists(src):
                os.replace(src, f"{self._path}.{index + 1}")
        os.replace(self._path, f"{self._path}.1")
        self._file = open(self._path, "w", encoding="utf-8")
        self._written = 0
        self._since_flush = 0
        self.rotations += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()


class ChromeTraceSink(TraceSink):
    """Accumulate events and write a Chrome ``trace_event`` JSON file.

    Load the output in Perfetto or ``chrome://tracing`` to see the
    engine's run phases as a flame of spans with instant markers for node
    re-executions, reuses, and mispredictions.  Events are buffered in
    memory and written on :meth:`close` (or :meth:`write`)."""

    def __init__(
        self,
        target: Union[str, io.TextIOBase],
        process_name: str = "repro.DittoEngine",
    ):
        super().__init__()
        self._target = target
        self._base_ts: Optional[float] = None
        self._events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "ts": 0,
                "args": {"name": process_name},
            }
        ]
        self._closed = False

    def _rebase(self, ts: float) -> float:
        if self._base_ts is None:
            self._base_ts = ts
        return _as_micros(ts - self._base_ts)

    def _record(self, event: TraceEvent) -> None:
        record: dict[str, Any] = {
            "name": event.name,
            "pid": 1,
            "tid": 1,
            "ts": self._rebase(event.ts),
        }
        if event.kind == "span":
            record["ph"] = "X"
            record["dur"] = _as_micros(event.dur or 0.0)
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        if event.args:
            record["args"] = event.args
        self._events.append(record)

    def write(self) -> None:
        """Serialize the buffered events to ``target`` (idempotent only in
        the sense that later events append on the next write)."""
        payload = {"traceEvents": self._events, "displayTimeUnit": "ms"}
        if isinstance(self._target, str):
            with open(self._target, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
        else:
            json.dump(payload, self._target)
            self._target.flush()

    def close(self) -> None:
        if not self._closed:
            self.write()
            self._closed = True


def validate_chrome_trace(
    source: Union[str, dict],
    strict: bool = False,
    known_names: bool = False,
) -> list[str]:
    """Check a Chrome trace (path or already-loaded dict) for well-formed
    ``ph``/``ts``/``dur`` fields; returns the list of problems found.

    With ``strict=True`` raises ``ValueError`` on the first report instead
    — the CI step uses this to fail the build on a malformed trace.

    With ``known_names=True`` additionally checks event names against the
    canonical registries in :mod:`repro.obs.trace`: span (``"X"``) names
    must be engine phases (:data:`~repro.obs.trace.SPAN_NAMES`) and
    instant (``"i"``) names must be registered instants
    (:data:`~repro.obs.trace.INSTANT_NAMES`, which includes the
    ``profile_sample`` / ``flight_dump`` / ``regression_alert`` events).
    CI runs this over the soak trace so an event added without updating
    the registry fails the build."""
    problems: list[str] = []
    if isinstance(source, str):
        try:
            with open(source, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"unreadable trace: {exc}")
            data = None
    else:
        data = source
    events: list = []
    if data is not None:
        if isinstance(data, dict) and isinstance(
            data.get("traceEvents"), list
        ):
            events = data["traceEvents"]
        elif isinstance(data, list):  # the bare-array variant of the format
            events = data
        else:
            problems.append(
                "top level must be a JSON array or an object with a "
                "'traceEvents' array"
            )
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _CHROME_PHASES:
            problems.append(f"{where}: bad 'ph' {phase!r}")
            continue
        name = event.get("name")
        if not isinstance(name, str):
            problems.append(f"{where}: missing/invalid 'name'")
        elif known_names:
            if phase == "X" and name not in SPAN_NAMES:
                problems.append(
                    f"{where}: unknown span name {name!r} (not a "
                    f"registered engine phase)"
                )
            elif phase == "i" and name not in INSTANT_NAMES:
                problems.append(
                    f"{where}: unknown instant name {name!r} (not in "
                    f"repro.obs.trace.INSTANT_NAMES)"
                )
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: missing/invalid 'ts' {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs 'dur', got {dur!r}")
    if not events and not problems:
        problems.append("trace contains no events")
    if strict and problems:
        raise ValueError(
            "invalid Chrome trace: " + "; ".join(problems[:10])
        )
    return problems
