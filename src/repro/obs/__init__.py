"""Observability for the DITTO engine: tracing, metrics, provenance.

Three sub-layers, all near-zero-cost until attached:

* :mod:`repro.obs.trace` / :mod:`repro.obs.sinks` — structured trace
  sinks.  Attach a sink (``DittoEngine(..., trace_sink=...)`` or
  ``engine.trace_sink = ...``) and the engine emits a span per run phase
  (``barrier_drain``, ``dirty_mark``, ``exec``, ``propagate``, ``prune``,
  ``retry``, ``fallback``, ``audit``, ``verify``) plus instants for node
  re-executions, reuses, mispredictions, and degradation episodes.
  :class:`ChromeTraceSink` output loads directly in Perfetto.

* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry with
  Prometheus text export; :class:`EngineMetrics` mirrors ``EngineStats``
  and feeds the paper-relevant histograms (repair latency, dirtied nodes
  per run, graph size).

* :mod:`repro.obs.provenance` — the "why did this re-execute?" recorder:
  :func:`enable_provenance` + :func:`explain_last_run` render the chain
  mutated location → dirtied nodes → re-executed nodes → propagated
  ancestors as text or DOT.

* :mod:`repro.obs.profiler` — the repair-cost attribution profiler:
  :func:`enable_profiling` answers "which mutation *call-site* makes my
  checks slow?" by joining barrier-captured caller tags against the memo
  graph's dirtied nodes; exports folded stacks, speedscope JSON, and a
  memo-graph heat DOT.

* :mod:`repro.obs.flight` — the black-box flight recorder: a bounded
  ring of recent run summaries + trace slices per engine, auto-dumping a
  self-contained JSON artifact when something goes wrong (scratch
  fallback, deadline abort, breaker trip, QA divergence).

* :mod:`repro.obs.regression` — continuous regression detection: rolling
  EWMA and frozen-p99 baselines per check, emitting
  :class:`RegressionAlert` events when repair latency drifts.

``python -m repro.obs analyze`` (:mod:`repro.obs.analyze`) reads every
artifact the layer writes back in, summarizes it, and gates committed
``BENCH_*.json`` history against drift.
"""

from .trace import (
    INSTANT_NAMES,
    SPAN_NAMES,
    NullSink,
    RingBufferSink,
    TeeSink,
    TraceEvent,
    TraceSink,
)
from .sinks import ChromeTraceSink, JsonlSink, validate_chrome_trace
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    EngineMetrics,
    PoolMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from .provenance import (
    RunExplanation,
    RunRecord,
    RunRecorder,
    disable_provenance,
    enable_provenance,
    explain_last_run,
)
from .profiler import RepairProfiler, disable_profiling, enable_profiling
from .flight import TRIGGER_REASONS, FlightRecorder
from .regression import RegressionAlert, RegressionDetector

__all__ = [
    "ChromeTraceSink",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "disable_profiling",
    "disable_provenance",
    "enable_profiling",
    "enable_provenance",
    "EngineMetrics",
    "explain_last_run",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "INSTANT_NAMES",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "parse_prometheus_text",
    "PoolMetrics",
    "RegressionAlert",
    "RegressionDetector",
    "RepairProfiler",
    "RingBufferSink",
    "RunExplanation",
    "RunRecord",
    "RunRecorder",
    "SPAN_NAMES",
    "TeeSink",
    "TraceEvent",
    "TraceSink",
    "TRIGGER_REASONS",
    "validate_chrome_trace",
]
