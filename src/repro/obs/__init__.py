"""Observability for the DITTO engine: tracing, metrics, provenance.

Three sub-layers, all near-zero-cost until attached:

* :mod:`repro.obs.trace` / :mod:`repro.obs.sinks` — structured trace
  sinks.  Attach a sink (``DittoEngine(..., trace_sink=...)`` or
  ``engine.trace_sink = ...``) and the engine emits a span per run phase
  (``barrier_drain``, ``dirty_mark``, ``exec``, ``propagate``, ``prune``,
  ``retry``, ``fallback``, ``audit``, ``verify``) plus instants for node
  re-executions, reuses, mispredictions, and degradation episodes.
  :class:`ChromeTraceSink` output loads directly in Perfetto.

* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry with
  Prometheus text export; :class:`EngineMetrics` mirrors ``EngineStats``
  and feeds the paper-relevant histograms (repair latency, dirtied nodes
  per run, graph size).

* :mod:`repro.obs.provenance` — the "why did this re-execute?" recorder:
  :func:`enable_provenance` + :func:`explain_last_run` render the chain
  mutated location → dirtied nodes → re-executed nodes → propagated
  ancestors as text or DOT.
"""

from .trace import NullSink, RingBufferSink, TraceEvent, TraceSink
from .sinks import ChromeTraceSink, JsonlSink, validate_chrome_trace
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    EngineMetrics,
    PoolMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from .provenance import (
    RunExplanation,
    RunRecord,
    RunRecorder,
    disable_provenance,
    enable_provenance,
    explain_last_run,
)

__all__ = [
    "ChromeTraceSink",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "disable_provenance",
    "enable_provenance",
    "EngineMetrics",
    "PoolMetrics",
    "explain_last_run",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "parse_prometheus_text",
    "RingBufferSink",
    "RunExplanation",
    "RunRecord",
    "RunRecorder",
    "TraceEvent",
    "TraceSink",
    "validate_chrome_trace",
]
