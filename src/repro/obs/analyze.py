"""Offline analyzer: read observability artifacts back, summarize, gate.

``python -m repro.obs analyze`` is the single entry point for everything
the observability layer writes to disk:

* **flight dumps** (``kind: "flight_dump"``) — incident summaries: what
  triggered, the run ring leading up to it, the trace tail;
* **repair profiles** (``kind: "repair_profile"``) — top mutation sites
  and per-check attribution, re-rendered from the JSON export;
* **regression reports** (``kind: "regression_report"``) — baselines and
  the alert log;
* **chaos artifacts** (``ChaosResult.to_json``) — campaign outcome;
* **BENCH_*.json records** — diffed against the committed history with
  ``--against benchmarks`` and gated with ``--gate``: a watched metric
  drifting past ``--threshold`` (default 1.5x) fails the build.  The
  watched set is deliberately conservative — latency/throughput keys
  with clear better-directions — so CI noise doesn't flap the gate (the
  tighter 1.2x gates on specific keys live in the ``bench_*.py``
  ``--check`` commands; this is the drift net across *all* of them);
* **JSONL traces** (:class:`~repro.obs.sinks.JsonlSink` output) — span
  aggregates per phase; two traces diff with ``--diff A B``.

Exit codes: 0 clean, 1 gate breach (``--gate`` only), 2 unreadable or
unrecognizable input.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Any, Optional

#: Metric-name fragments treated as lower-is-better when diffing bench
#: records (matched against the dotted leaf path, case-insensitive).
LOWER_BETTER = ("_ms", "_s", "seconds", "p50", "p99")

#: Exact leaf names treated as higher-is-better.  ``steady_speedup`` is
#: BENCH_derived.json's headline (derived-maintenance repair vs memo);
#: its per-size ``speedup`` rows live inside a list and are not walked.
HIGHER_BETTER = (
    "speedup", "steady_speedup", "append_ratio", "logged_ratio",
    "shed_rate",
)

#: Leaf-path fragments never gated: configuration echoes, counts whose
#: "better" direction is ambiguous, and setup/wall timings dominated by
#: interpreter start-up noise.
UNGATED = (
    "params", "config", "setup", "wall_", "statuses", "benchmark",
    "generated_by", "appends", "logged", "checks", "tenants", "trips",
    "rejections", "hits", "filtered", "completed", "submitted",
    "deadline_calls", "shed_rate",
    # BENCH_crossover.json: crossover estimates are rung-quantized and
    # censoring-clamped; bench_crossover.py's --check gate compares them
    # censoring-aware, which this generic ratio net cannot.
    "crossover", "win_rung", "mods",
)
# shed_rate appears in both: listed HIGHER_BETTER for documentation of
# direction but UNGATED in practice — it is a load-shape outcome, not a
# performance metric.


def load_document(path: str) -> tuple[str, Any]:
    """Classify ``path`` and load it.  Returns ``(kind, payload)`` where
    kind is one of ``flight_dump`` / ``repair_profile`` /
    ``regression_report`` / ``chaos`` / ``bench`` / ``trace_jsonl`` /
    ``chrome_trace`` / ``unknown``."""
    if path.endswith(".jsonl"):
        return "trace_jsonl", _load_jsonl(path)
    with open(path, "r", encoding="utf-8") as fh:
        head = fh.read(1)
        fh.seek(0)
        if head == "{" or head == "[":
            try:
                doc = json.load(fh)
            except json.JSONDecodeError:
                fh.seek(0)
                return "trace_jsonl", _load_jsonl_handle(fh)
        else:
            return "trace_jsonl", _load_jsonl_handle(fh)
    if isinstance(doc, dict):
        kind = doc.get("kind")
        if kind in ("flight_dump", "repair_profile", "regression_report"):
            return kind, doc
        if "divergences" in doc and "faults_injected" in doc:
            return "chaos", doc
        if "benchmark" in doc:
            return "bench", doc
        if isinstance(doc.get("traceEvents"), list):
            return "chrome_trace", doc
    return "unknown", doc


def _load_jsonl(path: str) -> list[dict]:
    with open(path, "r", encoding="utf-8") as fh:
        return _load_jsonl_handle(fh)


def _load_jsonl_handle(fh: Any) -> list[dict]:
    events = []
    for line_no, line in enumerate(fh, 1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {line_no}: {exc}") from exc
    return events


# Summaries. ----------------------------------------------------------------


def summarize_flight_dump(doc: dict) -> str:
    runs = doc.get("runs", [])
    trace = doc.get("trace", [])
    stats = doc.get("stats", {})
    lines = [
        f"flight dump: {doc.get('name', '?')} "
        f"(check {doc.get('check', '?')!r}, mode {doc.get('mode', '?')})",
        f"  trigger: {doc.get('reason', '?')}"
        + (f" — {doc['detail']}" if doc.get("detail") else ""),
        f"  graph: {doc.get('graph_size', 0)} node(s); "
        f"lifetime runs {stats.get('runs', 0)} "
        f"(scratch fallbacks {stats.get('scratch_fallbacks', 0)}, "
        f"deadline aborts {stats.get('deadline_aborts', 0)})",
        f"  black box: {len(runs)} run summary(ies), "
        f"{len(trace)} trace event(s)",
    ]
    if runs:
        last = runs[-1]
        phases = ", ".join(
            f"{name} {seconds * 1000:.3f}ms"
            for name, seconds in last.get("phase_times_s", {}).items()
        )
        lines.append(
            f"  last run: {last.get('duration_s', 0) * 1000:.3f}ms"
            + (f" ({phases})" if phases else "")
        )
    events = doc.get("fallback_events", [])
    for event in events[-3:]:
        lines.append(
            f"  fallback[{event.get('run_index')}]: "
            f"{event.get('reason')} ({event.get('detail', '')})"
        )
    suppressed = doc.get("dumps_suppressed", 0)
    if suppressed:
        lines.append(f"  ({suppressed} earlier trigger(s) suppressed)")
    return "\n".join(lines)


def summarize_profile(doc: dict) -> str:
    lines = [
        f"repair profile: {doc.get('samples', 0)} sampled of "
        f"{doc.get('runs_seen', 0)} run(s) "
        f"(interval {doc.get('sample_interval', 1)}), "
        f"{doc.get('mutations_captured', 0)} mutation(s) captured"
    ]
    for check in doc.get("checks", []):
        lines.append(
            f"  check {check['check']}: {check['runs']} run(s), "
            f"{check['execs']} exec(s), "
            f"self {check['self_time_s'] * 1000:.3f}ms"
        )
    sites = doc.get("sites", [])[:5]
    if sites:
        lines.append("  top mutation sites:")
        for site in sites:
            lines.append(
                f"    {site['site']}: {site['induced_execs']} induced "
                f"exec(s), {site['mutations']} mutation(s)"
            )
    return "\n".join(lines)


def summarize_regression(doc: dict) -> str:
    alerts = doc.get("alerts", [])
    lines = [
        f"regression report: {doc.get('samples_seen', 0)} sample(s), "
        f"{len(alerts)} alert(s)"
    ]
    for base in doc.get("baselines", []):
        ewma = base.get("ewma_s")
        p99 = base.get("frozen_p99_s")
        lines.append(
            f"  {base['check']}: {base['samples']} sample(s), "
            f"ewma {ewma * 1000:.3f}ms" if ewma is not None
            else f"  {base['check']}: {base['samples']} sample(s)"
        )
        if p99 is not None:
            lines[-1] += f", frozen p99 {p99 * 1000:.3f}ms"
    for alert in alerts[-5:]:
        lines.append(
            f"  ALERT [{alert['kind']}] {alert['check']}: "
            f"{alert['observed_s'] * 1000:.3f}ms vs baseline "
            f"{alert['baseline_s'] * 1000:.3f}ms "
            f"({alert['ratio']:.2f}x at sample {alert['samples']})"
        )
    return "\n".join(lines)


def summarize_chaos(doc: dict) -> str:
    return (
        f"chaos artifact: {doc.get('structure')} seed={doc.get('seed')}, "
        f"{doc.get('rounds')} round(s), "
        f"{sum(doc.get('faults_injected', {}).values())} fault(s), "
        f"{len(doc.get('divergences', []))} divergence(s), "
        f"{len(doc.get('flight_dumps', []))} flight dump(s) -> "
        f"{'OK' if doc.get('ok') else 'FAIL'}"
    )


def summarize_trace(events: list[dict]) -> str:
    spans: dict[str, list] = {}
    instants: dict[str, int] = {}
    for event in events:
        name = event.get("name", "?")
        if event.get("kind") == "span" or "dur_us" in event:
            entry = spans.setdefault(name, [0, 0.0])
            entry[0] += 1
            entry[1] += event.get("dur_us", 0.0)
        else:
            instants[name] = instants.get(name, 0) + 1
    lines = [f"trace: {len(events)} event(s)"]
    for name in sorted(spans):
        count, total = spans[name]
        lines.append(
            f"  span {name}: {count} x, total {total / 1000:.3f}ms, "
            f"mean {total / count / 1000:.4f}ms"
        )
    for name in sorted(instants):
        lines.append(f"  instant {name}: {instants[name]} x")
    return "\n".join(lines)


# Bench diffing. -------------------------------------------------------------


def _numeric_leaves(doc: Any, prefix: str = "") -> dict[str, float]:
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(value, path))
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)):
        out[prefix] = float(doc)
    return out


def _direction(path: str) -> Optional[str]:
    lowered = path.lower()
    leaf = lowered.rsplit(".", 1)[-1]
    if any(fragment in lowered for fragment in UNGATED):
        return None
    if leaf in HIGHER_BETTER:
        return "higher"
    if any(lowered.endswith(f) or f in leaf for f in LOWER_BETTER):
        return "lower"
    return None


def diff_bench(
    current: dict, baseline: dict, threshold: float
) -> list[dict]:
    """Watched-metric drifts of ``current`` vs ``baseline`` past
    ``threshold``.  Returns one record per breach."""
    drifts: list[dict] = []
    now = _numeric_leaves(current)
    then = _numeric_leaves(baseline)
    for path in sorted(now):
        direction = _direction(path)
        if direction is None or path not in then:
            continue
        base = then[path]
        value = now[path]
        if base <= 0:
            continue
        ratio = value / base
        if direction == "lower" and ratio > threshold:
            drifts.append({
                "metric": path, "direction": "lower-is-better",
                "baseline": base, "current": value, "ratio": ratio,
            })
        elif direction == "higher" and ratio < 1.0 / threshold:
            drifts.append({
                "metric": path, "direction": "higher-is-better",
                "baseline": base, "current": value, "ratio": ratio,
            })
    return drifts


def diff_traces(
    a_events: list[dict], b_events: list[dict], threshold: float
) -> list[dict]:
    """Per-span-name total-duration drifts between two JSONL traces."""

    def totals(events: list[dict]) -> dict[str, float]:
        out: dict[str, float] = {}
        for event in events:
            if event.get("kind") == "span" or "dur_us" in event:
                name = event.get("name", "?")
                out[name] = out.get(name, 0.0) + event.get("dur_us", 0.0)
        return out

    before = totals(a_events)
    after = totals(b_events)
    drifts = []
    for name in sorted(set(before) & set(after)):
        if before[name] <= 0:
            continue
        ratio = after[name] / before[name]
        if ratio > threshold or ratio < 1.0 / threshold:
            drifts.append({
                "metric": f"span.{name}.total_us",
                "baseline": before[name],
                "current": after[name],
                "ratio": ratio,
            })
    return drifts


# CLI. -----------------------------------------------------------------------


def analyze(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs analyze",
        description="summarize observability artifacts; diff and gate "
                    "BENCH history",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="artifacts: flight dumps, repair profiles, regression "
             "reports, chaos artifacts, BENCH_*.json, *.jsonl traces",
    )
    parser.add_argument(
        "--against", metavar="DIR", default=None,
        help="baseline directory for BENCH_*.json diffs (same basename)",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.5,
        help="drift ratio that fails the gate (default 1.5)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 on any drift past --threshold",
    )
    parser.add_argument(
        "--diff", nargs=2, metavar=("A", "B"), default=None,
        help="diff two JSONL traces (per-phase span totals)",
    )
    parser.add_argument(
        "--json", metavar="PATH", dest="json_out", default=None,
        help="write the machine-readable analysis record",
    )
    args = parser.parse_args(argv)
    if not args.paths and args.diff is None:
        parser.print_usage()
        return 2

    if args.threshold <= 1.0:
        print(f"--threshold must exceed 1.0, got {args.threshold}")
        return 2

    record: dict[str, Any] = {"documents": [], "drifts": [], "alerts": 0}
    exit_code = 0

    for path in args.paths:
        try:
            kind, doc = load_document(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable ({exc})")
            exit_code = 2
            continue
        print(f"== {path} [{kind}]")
        entry: dict[str, Any] = {"path": path, "kind": kind}
        if kind == "flight_dump":
            print(summarize_flight_dump(doc))
        elif kind == "repair_profile":
            print(summarize_profile(doc))
        elif kind == "regression_report":
            alerts = doc.get("alerts", [])
            record["alerts"] += len(alerts)
            print(summarize_regression(doc))
        elif kind == "chaos":
            print(summarize_chaos(doc))
            record["alerts"] += len(doc.get("divergences", []))
        elif kind == "trace_jsonl":
            print(summarize_trace(doc))
        elif kind == "chrome_trace":
            print(
                f"chrome trace: "
                f"{len(doc.get('traceEvents', []))} event(s)"
            )
        elif kind == "bench":
            name = doc.get("benchmark", "?")
            print(f"bench record: {name}")
            if args.against is not None:
                base_path = os.path.join(
                    args.against, os.path.basename(path)
                )
                if not os.path.exists(base_path):
                    print(f"  (no baseline {base_path}; skipped)")
                else:
                    with open(base_path, "r", encoding="utf-8") as fh:
                        baseline = json.load(fh)
                    drifts = diff_bench(doc, baseline, args.threshold)
                    entry["drifts"] = drifts
                    record["drifts"].extend(drifts)
                    if drifts:
                        for drift in drifts:
                            print(
                                f"  DRIFT {drift['metric']}: "
                                f"{drift['baseline']:.6g} -> "
                                f"{drift['current']:.6g} "
                                f"({drift['ratio']:.2f}x, "
                                f"{drift['direction']})"
                            )
                    else:
                        print(
                            f"  no drift vs {base_path} past "
                            f"{args.threshold}x"
                        )
        else:
            print("  (unrecognized document; nothing to summarize)")
        record["documents"].append(entry)

    if args.diff is not None:
        try:
            _, a_events = load_document(args.diff[0])
            _, b_events = load_document(args.diff[1])
        except (OSError, ValueError) as exc:
            print(f"--diff: unreadable input ({exc})")
            return 2
        drifts = diff_traces(a_events, b_events, args.threshold)
        record["drifts"].extend(drifts)
        print(f"== diff {args.diff[0]} vs {args.diff[1]}")
        if drifts:
            for drift in drifts:
                print(
                    f"  DRIFT {drift['metric']}: "
                    f"{drift['baseline']:.6g} -> {drift['current']:.6g} "
                    f"({drift['ratio']:.2f}x)"
                )
        else:
            print(f"  no span drift past {args.threshold}x")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_out}")

    if args.gate and record["drifts"]:
        print(
            f"GATE FAILURE: {len(record['drifts'])} metric(s) drifted "
            f"past {args.threshold}x"
        )
        return 1
    return exit_code
