"""Structured tracing: the event model and the in-memory sinks.

The engine emits two kinds of events while it runs:

* **spans** — one per run phase (``barrier_drain``, ``dirty_mark``,
  ``exec``, ``propagate``, ``prune``, ``retry``, ``fallback``, ``audit``,
  ``verify``, ``degraded``), carrying a start timestamp and a duration;
* **instants** — point events for the interesting moments inside a phase:
  a node re-execution (``node_exec``), an optimistic reuse (``reuse``), a
  leaf-call execution (``leaf_exec``), a misprediction (``misprediction``),
  and a graceful-degradation episode (``degradation``).

Timestamps are ``time.perf_counter()`` seconds; sinks that serialize
(see :mod:`repro.obs.sinks`) rebase them against the first event so traces
start at zero.

The hot-path contract: the engine checks a single boolean before building
any event, so with the default :class:`NullSink` **no event object is ever
allocated** — ``events_emitted`` staying at zero is the test suite's proof.
Attaching any other sink flips the boolean and every event reaches the
sink's :meth:`TraceSink._record`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, NamedTuple, Optional

from ..core.stats import PHASES

#: Canonical span names: exactly the engine's run phases.
SPAN_NAMES: frozenset[str] = frozenset(PHASES)

#: Canonical instant names.  ``validate_chrome_trace(known_names=True)``
#: checks emitted events against these, so additions here are the single
#: point of schema evolution:
#:
#: * engine hot path — ``barrier_drain`` (drain counters), ``node_exec``,
#:   ``reuse``, ``leaf_exec``, ``misprediction``, ``degradation``;
#: * profiler (:mod:`repro.obs.profiler`) — ``profile_sample``, one per
#:   recorded run;
#: * flight recorder (:mod:`repro.obs.flight`) — ``flight_dump``, one per
#:   triggered artifact;
#: * regression detector (:mod:`repro.obs.regression`) —
#:   ``regression_alert``, one per breached baseline.
INSTANT_NAMES: frozenset[str] = frozenset(
    {
        "barrier_drain",
        "node_exec",
        "reuse",
        "leaf_exec",
        "misprediction",
        "degradation",
        "profile_sample",
        "flight_dump",
        "regression_alert",
    }
)


class TraceEvent(NamedTuple):
    """One trace record.  ``dur`` is ``None`` for instant events."""

    kind: str  # "span" | "instant"
    name: str
    ts: float  # perf_counter seconds
    dur: Optional[float]  # seconds; None for instants
    args: Optional[dict]


class TraceSink:
    """Base class for trace consumers.

    Subclasses implement :meth:`_record`; the public :meth:`span` /
    :meth:`instant` entry points count every event in ``events_emitted``
    so overhead tests can assert exactly how many events a workload
    produced (zero, for a disabled engine)."""

    def __init__(self) -> None:
        self.events_emitted = 0

    def span(
        self,
        name: str,
        ts: float,
        dur: float,
        args: Optional[dict] = None,
    ) -> None:
        """Record a completed phase: began at ``ts``, took ``dur``."""
        self.events_emitted += 1
        self._record(TraceEvent("span", name, ts, dur, args))

    def instant(
        self, name: str, ts: float, args: Optional[dict] = None
    ) -> None:
        """Record a point event."""
        self.events_emitted += 1
        self._record(TraceEvent("instant", name, ts, None, args))

    def _record(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release whatever the sink holds (default: nothing)."""


class NullSink(TraceSink):
    """The default sink: discards everything.

    The engine special-cases it — hot paths never even call into a
    ``NullSink`` (they check ``engine.tracing`` first), so attaching the
    default sink costs one boolean test per phase and nothing per node."""

    def _record(self, event: TraceEvent) -> None:  # pragma: no cover
        pass


class RingBufferSink(TraceSink):
    """Keep the most recent ``capacity`` events in memory.

    The flight-recorder sink: cheap enough to leave attached in a soak
    (bounded memory, no I/O), and the test suite's standard sink for
    asserting *what* the engine emitted."""

    def __init__(self, capacity: int = 4096):
        super().__init__()
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    def _record(self, event: TraceEvent) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self) -> list[TraceEvent]:
        """All retained events, oldest first."""
        return list(self._events)

    def spans(self, name: Optional[str] = None) -> list[TraceEvent]:
        """Retained span events, optionally filtered by phase name."""
        return [
            e
            for e in self._events
            if e.kind == "span" and (name is None or e.name == name)
        ]

    def instants(self, name: Optional[str] = None) -> list[TraceEvent]:
        """Retained instant events, optionally filtered by name."""
        return [
            e
            for e in self._events
            if e.kind == "instant" and (name is None or e.name == name)
        ]

    def clear(self) -> None:
        self._events.clear()


class TeeSink(TraceSink):
    """Fan every event out to several child sinks.

    The flight recorder uses this to splice its bounded ring into an
    engine without displacing whatever sink the user already attached:
    ``engine.trace_sink = TeeSink([user_sink, ring])``.  Children count
    their own ``events_emitted``; closing the tee closes every child."""

    def __init__(self, sinks: Iterable[TraceSink]):
        super().__init__()
        self.sinks: tuple[TraceSink, ...] = tuple(sinks)
        if not self.sinks:
            raise ValueError(
                "TeeSink needs at least one child sink (an empty tee "
                "would silently discard every event)"
            )
        for sink in self.sinks:
            if not isinstance(sink, TraceSink):
                raise TypeError(
                    f"TeeSink children must be TraceSinks, got "
                    f"{type(sink).__name__}"
                )

    def span(
        self,
        name: str,
        ts: float,
        dur: float,
        args: Optional[dict] = None,
    ) -> None:
        self.events_emitted += 1
        for sink in self.sinks:
            sink.span(name, ts, dur, args)

    def instant(
        self, name: str, ts: float, args: Optional[dict] = None
    ) -> None:
        self.events_emitted += 1
        for sink in self.sinks:
            sink.instant(name, ts, args)

    def _record(self, event: TraceEvent) -> None:  # pragma: no cover
        for sink in self.sinks:
            sink._record(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
