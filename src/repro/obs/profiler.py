"""Repair-cost attribution: which check, node class, and *mutation site*
is burning the repair budget?

DITTO's promise (paper §5) is that repair time tracks the size of the
change, not the structure.  When it doesn't, the aggregate phase timers
in :mod:`repro.core.stats` can say *that* repair is slow but not *why*.
This module answers why, three ways:

* **per registered check** — runs, incremental share, aborts, total and
  self repair time (:class:`CheckStat`);
* **per memo-graph node class** — every re-execution of a node is
  accounted to its check function, with self time (elapsed minus time
  spent in callees re-executed underneath it), so a hot helper shows up
  even when only entry-point timers exist (:class:`NodeClassStat`);
* **per mutation call-site** — the write barrier in
  :mod:`repro.core.tracked` offers every logged location to a probe when
  profiling is armed; the probe captures a cheap caller tag (function
  name, file, line) by walking past the barrier frames.  At the next
  run's barrier drain each pending location's tags are joined against
  the memo table's reverse map, so every induced re-execution is charged
  back to the source lines that caused it ("top mutation sites by
  induced re-execution", :class:`SiteStat`).

Overhead model
--------------

Arming is *sampled*: with ``sample_interval=k`` only every k-th engine
run is recorded, and — crucially — the barrier probe is installed only
for the epochs leading into a recorded run.  Between samples the
tracking state's ``log_append`` is restored to the raw bound
``WriteLog.append``, so an attached-but-idle profiler costs the barrier
path **nothing** (the overhead test proves ``mutations_captured == 0``
and that ``state.log_append`` is the raw append).  ``sample_interval=1``
is toggled-exact mode: every run recorded, every mutation tagged.

Exports: folded-stack text (``check;phase;node`` one line per frame,
weight in microseconds — pipe into any flamegraph renderer), speedscope
JSON (https://www.speedscope.app), and a memo-graph *heat* DOT layered
on the provenance renderer's escaping rules.

The profiler is deliberately single-threaded — attach one per engine
(the bench CLI and :class:`repro.serving.EnginePool` both run each
engine under a lock, and the serving determinism test drives
``pool.check`` sequentially).  When several engines share one tracking
state, pending site tags are attributed to the first engine that drains
the shared write log; per-tenant states (the serving layout) make the
attribution exact.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import DittoEngine
    from ..core.locations import Location
    from ..core.node import ComputationNode
    from ..core.tracked import TrackingState

from ..core import tracked as _tracked

#: Frames whose code lives in the barrier module are skipped when
#: resolving a mutation's caller tag (the probe fires from inside
#: ``TrackingState.log_append`` → ``TrackedObject.__setattr__`` → user
#: code; only the user frame is interesting).
_BARRIER_FILE = os.path.abspath(_tracked.__file__)

#: The library's own structure mutators (``OrderedIntList.insert``,
#: ``RedBlackTree.delete``, ...) are *implementations*, not call-sites:
#: the useful answer to "which mutation site makes my checks slow?" is
#: the application frame that invoked the mutator.  Frames under this
#: directory are skipped too — but kept as a fallback tag so a mutation
#: issued from inside the package (structure unit tests, internal
#: rebalancing helpers with no outside caller on the stack) still
#: attributes somewhere.  Pure path math: importing ``repro.structures``
#: here would drag the whole structure zoo in under ``repro.obs``.
_STRUCTURES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(_BARRIER_FILE)), "structures"
) + os.sep

#: Safety valve for engines that never drain (a probe armed against a
#: scratch-mode engine, or a state nobody runs): once this many distinct
#: locations are pending, new locations are counted in
#: ``pending_dropped`` instead of being retained.
_MAX_PENDING_LOCATIONS = 65536


class SiteStat:
    """Accumulated cost attributed to one mutation call-site tag."""

    __slots__ = ("site", "mutations", "nodes_dirtied", "induced_execs",
                 "induced_time")

    def __init__(self, site: str) -> None:
        self.site = site
        #: Logged mutations captured at this site (pre-dedup: every write
        #: that passed the barrier filters while the probe was armed).
        self.mutations = 0
        #: Memo-graph nodes dirtied by this site's mutations (a node
        #: dirtied by k sites counts once per site — co-induction).
        self.nodes_dirtied = 0
        #: Re-executions this site induced (directly-dirtied nodes plus
        #: the propagate/retry ancestors that inherited their taint).
        self.induced_execs = 0
        #: Self-time seconds of those re-executions, split evenly among
        #: the co-inducing sites of each node.
        self.induced_time = 0.0

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "mutations": self.mutations,
            "nodes_dirtied": self.nodes_dirtied,
            "induced_execs": self.induced_execs,
            "induced_time_s": self.induced_time,
        }


class CheckStat:
    """Accumulated cost of one registered check (engine entry point)."""

    __slots__ = ("check", "runs", "incremental_runs", "aborted_runs",
                 "execs", "failed_execs", "self_time", "total_time")

    def __init__(self, check: str) -> None:
        self.check = check
        self.runs = 0
        self.incremental_runs = 0
        self.aborted_runs = 0
        self.execs = 0
        #: Executions that raised (mispredictions, injected faults).
        self.failed_execs = 0
        self.self_time = 0.0
        #: Wall-clock of the recorded runs (``engine.last_duration``).
        self.total_time = 0.0

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "runs": self.runs,
            "incremental_runs": self.incremental_runs,
            "aborted_runs": self.aborted_runs,
            "execs": self.execs,
            "failed_execs": self.failed_execs,
            "self_time_s": self.self_time,
            "total_time_s": self.total_time,
        }


class NodeClassStat:
    """Accumulated cost of one memo-graph node class (check function)."""

    __slots__ = ("func", "execs", "self_time")

    def __init__(self, func: str) -> None:
        self.func = func
        self.execs = 0
        self.self_time = 0.0

    def to_dict(self) -> dict:
        return {
            "func": self.func,
            "execs": self.execs,
            "self_time_s": self.self_time,
        }


class RepairProfiler:
    """Sampled repair-cost attribution across one or more engines.

    Pass to ``DittoEngine(..., profiler=...)`` or call :meth:`attach`
    after construction; :meth:`detach` restores the raw barrier path.
    """

    def __init__(
        self,
        sample_interval: int = 1,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if sample_interval < 1:
            raise ValueError(
                f"sample_interval must be >= 1, got {sample_interval}"
            )
        self.sample_interval = sample_interval
        self._clock = clock

        # Attachment bookkeeping: states are refcounted because several
        # engines may share one TrackingState (shared-structure tests).
        self._engines: list["DittoEngine"] = []
        self._states: dict[int, list] = {}  # id -> [state, refcount]

        # Sampling epoch.  A run is recorded iff the epoch *entering* it
        # was armed; `_capture` is recomputed after every finished run.
        self.runs_seen = 0
        self.samples = 0
        self._capture = (1 % sample_interval == 0)

        # Barrier-probe accumulation (armed epochs only).  The probe is
        # bound once: ``self._probe`` evaluates to a *new* bound-method
        # object per access, which would defeat the ``is`` identity
        # checks used to arm/disarm tracking states.
        self._bound_probe = self._probe
        self.mutations_captured = 0
        self.pending_dropped = 0
        self._pending_sites: dict["Location", dict[str, int]] = {}
        self._tag_cache: dict[tuple, str] = {}

        # Per-run recording state.
        self._recording = False
        self._run_check = ""
        self._run_incremental = False
        self._run_attr: dict["ComputationNode", frozenset] = {}
        self._stack: list[list] = []  # [node, start, child_time]

        # Lifetime aggregates.
        self._sites: dict[str, SiteStat] = {}
        self._checks: dict[str, CheckStat] = {}
        self._node_classes: dict[str, NodeClassStat] = {}
        # (check, phase, func) -> [execs, self_time seconds]
        self._frames: dict[tuple[str, str, str], list] = {}
        # (caller func, callee func) -> re-execution call-edge count
        self._edges: dict[tuple[str, str], int] = {}

    # Attachment. -----------------------------------------------------------

    def attach(self, engine: "DittoEngine") -> "RepairProfiler":
        """Hook ``engine`` (and arm its tracking state's barrier probe
        for sampled epochs).  Idempotent per engine; an engine carries at
        most one profiler."""
        if engine.profiler is self:
            return self
        if engine.profiler is not None:
            raise ValueError(
                f"engine for check {engine.entry.name!r} already has a "
                f"profiler attached; detach it first"
            )
        engine.profiler = self
        self._engines.append(engine)
        state = engine.tracking
        entry = self._states.get(id(state))
        if entry is None:
            self._states[id(state)] = [state, 1]
            if self._capture:
                state.set_mutation_probe(self._bound_probe)
        else:
            entry[1] += 1
        return self

    def detach(self, engine: "DittoEngine") -> None:
        """Unhook ``engine``; the last detach from a tracking state
        restores its raw ``log_append``."""
        if engine.profiler is not self:
            return
        engine.profiler = None
        self._engines.remove(engine)
        entry = self._states.get(id(engine.tracking))
        if entry is not None:
            entry[1] -= 1
            if entry[1] <= 0:
                del self._states[id(engine.tracking)]
                if entry[0].mutation_probe is self._bound_probe:
                    entry[0].set_mutation_probe(None)

    def detach_all(self) -> None:
        for engine in list(self._engines):
            self.detach(engine)

    def _sync_probes(self) -> None:
        probe = self._bound_probe if self._capture else None
        for state, _refs in self._states.values():
            if state.mutation_probe is not probe:
                state.set_mutation_probe(probe)

    # Barrier probe (armed epochs only). ------------------------------------

    def _probe(self, location: "Location") -> None:
        self.mutations_captured += 1
        pending = self._pending_sites
        tags = pending.get(location)
        if tags is None:
            if len(pending) >= _MAX_PENDING_LOCATIONS:
                self.pending_dropped += 1
                return
            tags = {}
            pending[location] = tags
        tag = self._site_tag()
        tags[tag] = tags.get(tag, 0) + 1

    def _site_tag(self) -> str:
        # Frame 0 is this method, 1 the log_append closure; everything in
        # the barrier module above that (TrackedObject.__setattr__,
        # TrackedList.insert, _ditto_log_range, ...) is skipped so the
        # tag lands on the first *user* frame — the mutation call-site.
        frame = sys._getframe(2)
        while frame is not None and frame.f_code.co_filename == _BARRIER_FILE:
            frame = frame.f_back
        fallback = frame  # first frame past the barrier: the mutator itself
        while frame is not None and frame.f_code.co_filename.startswith(
            _STRUCTURES_DIR
        ):
            frame = frame.f_back
        if frame is None:
            frame = fallback
        if frame is None:  # pragma: no cover - C-level caller
            return "<unknown>"
        code = frame.f_code
        key = (code, frame.f_lineno)
        tag = self._tag_cache.get(key)
        if tag is None:
            tag = (
                f"{code.co_name} "
                f"({os.path.basename(code.co_filename)}:{frame.f_lineno})"
            )
            self._tag_cache[key] = tag
        return tag

    def _site(self, tag: str) -> SiteStat:
        stat = self._sites.get(tag)
        if stat is None:
            stat = SiteStat(tag)
            self._sites[tag] = stat
        return stat

    # Engine hooks (guarded by ``engine.profiler is not None``). -------------

    def begin_run(
        self,
        engine: "DittoEngine",
        pending: Iterable["Location"],
        dirty: set,
        incremental: bool,
    ) -> None:
        """Barrier drain finished: join the probe's pending site tags
        against the reverse map and open a recording window.  A fallback
        rebuild re-enters here mid-run; the second window simply finds
        its pending tags already consumed."""
        if not self._capture:
            return
        self._recording = True
        self._run_check = engine.entry.name
        self._run_incremental = incremental
        self._run_attr = {}
        table = engine.table
        pend = self._pending_sites
        attr = self._run_attr
        for location in pending:
            tags = pend.pop(location, None)
            if tags is None:
                continue
            readers = table.map_locations_to_nodes((location,))
            n_readers = len(readers)
            for tag, count in tags.items():
                stat = self._site(tag)
                stat.mutations += count
                stat.nodes_dirtied += n_readers
            if readers:
                tagset = frozenset(tags)
                for node in readers:
                    current = attr.get(node)
                    attr[node] = (
                        tagset if current is None else current | tagset
                    )

    def node_begin(self, node: "ComputationNode") -> None:
        if not self._recording:
            return
        self._stack.append([node, self._clock(), 0.0])

    def node_finish(
        self, node: "ComputationNode", ok: bool, phase: str
    ) -> None:
        if not self._recording:
            return
        stack = self._stack
        if not stack or stack[-1][0] is not node:  # pragma: no cover
            return  # recording toggled mid-exec; drop the orphan frame
        _, start, child_time = stack.pop()
        elapsed = self._clock() - start
        self_time = elapsed - child_time
        if self_time < 0.0:  # clock skew guard for injected clocks
            self_time = 0.0
        if stack:
            stack[-1][2] += elapsed
            parent_func = stack[-1][0].func.name
        else:
            parent_func = None

        func = node.func.name
        check = self._run_check
        frame = self._frames.get((check, phase, func))
        if frame is None:
            self._frames[(check, phase, func)] = [1, self_time]
        else:
            frame[0] += 1
            frame[1] += self_time
        if parent_func is not None:
            edge = (parent_func, func)
            self._edges[edge] = self._edges.get(edge, 0) + 1

        klass = self._node_classes.get(func)
        if klass is None:
            klass = NodeClassStat(func)
            self._node_classes[func] = klass
        klass.execs += 1
        klass.self_time += self_time

        cs = self._check(check)
        cs.execs += 1
        if not ok:
            cs.failed_execs += 1
        cs.self_time += self_time

        # Mutation-site attribution.  Directly-dirtied nodes carry the
        # tag sets joined at begin_run; propagate/retry ancestors inherit
        # the union of their callees' taints (the callees re-ran first —
        # that is what propagation *is*), recorded back so grand-ancestors
        # inherit transitively.
        attr = self._run_attr
        sites = attr.get(node)
        if sites is None and phase != "exec":
            inherited: frozenset = frozenset()
            for callee in node.calls:
                callee_sites = attr.get(callee)
                if callee_sites:
                    inherited = inherited | callee_sites
            if inherited:
                sites = inherited
                attr[node] = inherited
        if sites:
            share = self_time / len(sites)
            for tag in sites:
                stat = self._site(tag)
                stat.induced_execs += 1
                stat.induced_time += share

    def run_finished(self, engine: "DittoEngine", aborted: bool) -> None:
        """Close the recording window (if one opened) and advance the
        sampling epoch.  Runs that never reach the incremental path
        (scratch fallbacks, degraded-cooldown serves) still advance the
        epoch so the sampling cadence tracks *engine runs*, not repairs."""
        if self._recording:
            cs = self._check(self._run_check)
            cs.runs += 1
            if self._run_incremental:
                cs.incremental_runs += 1
            if aborted:
                cs.aborted_runs += 1
            cs.total_time += engine.last_duration
            self.samples += 1
            if engine.tracing:
                engine._sink.instant(
                    "profile_sample",
                    self._clock(),
                    {
                        "check": self._run_check,
                        "incremental": self._run_incremental,
                        "aborted": aborted,
                        "duration_s": engine.last_duration,
                        "sample": self.samples,
                    },
                )
            self._recording = False
            self._run_attr = {}
            self._stack.clear()
        self.runs_seen += 1
        self._capture = ((self.runs_seen + 1) % self.sample_interval == 0)
        self._sync_probes()

    def _check(self, name: str) -> CheckStat:
        stat = self._checks.get(name)
        if stat is None:
            stat = CheckStat(name)
            self._checks[name] = stat
        return stat

    # Reports. --------------------------------------------------------------

    def top_mutation_sites(self, n: int = 10) -> list[SiteStat]:
        """Mutation sites ranked by induced re-execution.  The key is
        pure counts (then the site string), so the ranking is
        deterministic under a fixed workload seed — timings only break
        ties never reached."""
        ranked = sorted(
            self._sites.values(),
            key=lambda s: (
                -s.induced_execs, -s.mutations, -s.nodes_dirtied, s.site
            ),
        )
        return ranked[:n]

    def check_stats(self) -> list[CheckStat]:
        return sorted(self._checks.values(), key=lambda c: c.check)

    def node_class_stats(self) -> list[NodeClassStat]:
        return sorted(
            self._node_classes.values(),
            key=lambda k: (-k.self_time, k.func),
        )

    def folded(self) -> str:
        """Folded-stack flamegraph text: ``check;phase;node weight_us``.

        Weight is accumulated self-time in integer microseconds (the
        conventional folded unit); frames whose self time rounds to zero
        still emit weight 1 so a pure-counts workload stays visible."""
        lines = []
        for (check, phase, func), (execs, self_time) in sorted(
            self._frames.items()
        ):
            weight = int(self_time * 1e6)
            if weight <= 0 and execs > 0:
                weight = 1
            lines.append(f"{check};{phase};{func} {weight}")
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro repair profile") -> dict:
        """The profile as a speedscope ``sampled`` document (one sample
        per folded frame, weights in microseconds)."""
        frame_index: dict[str, int] = {}
        frames: list[dict] = []

        def fid(label: str) -> int:
            idx = frame_index.get(label)
            if idx is None:
                idx = len(frames)
                frame_index[label] = idx
                frames.append({"name": label})
            return idx

        samples: list[list[int]] = []
        weights: list[int] = []
        for (check, phase, func), (execs, self_time) in sorted(
            self._frames.items()
        ):
            weight = int(self_time * 1e6)
            if weight <= 0 and execs > 0:
                weight = 1
            samples.append([fid(check), fid(phase), fid(func)])
            weights.append(weight)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "microseconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "exporter": "repro.obs.profiler",
            "name": name,
            "activeProfileIndex": 0,
        }

    def write_folded(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.folded())

    def write_speedscope(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.speedscope(), fh, indent=1, sort_keys=True)

    def heat_dot(self) -> str:
        """Memo-graph heat view: one box per node class, fill intensity
        proportional to its share of total self time, re-execution call
        edges labelled with their counts.  Same escaping rules as the
        provenance DOT renderer."""
        from .provenance import _dot_escape

        total = sum(k.self_time for k in self._node_classes.values())
        lines = [
            "digraph repair_heat {",
            "  rankdir=LR;",
            '  node [shape=box, style=filled, fontsize=10];',
        ]
        ids: dict[str, str] = {}
        for klass in self.node_class_stats():
            name = f"n{len(ids)}"
            ids[klass.func] = name
            share = (klass.self_time / total) if total > 0 else 0.0
            # White (cold) to saturated red (hot) via an HSV ramp.
            label = _dot_escape(
                f"{klass.func}\nexecs={klass.execs} "
                f"self={klass.self_time * 1000:.3f}ms ({share:.0%})"
            )
            lines.append(
                f'  {name} [label="{label}", '
                f'fillcolor="0.0 {share:.3f} 1.0"];'
            )
        for (caller, callee), count in sorted(self._edges.items()):
            src = ids.get(caller)
            dst = ids.get(callee)
            if src is not None and dst is not None:
                lines.append(f'  {src} -> {dst} [label="{count}"];')
        lines.append("}")
        return "\n".join(lines)

    def report(self, top: int = 10) -> str:
        """Human-readable summary of all three attribution axes."""
        lines = [
            f"repair profile: {self.samples} sampled run(s) of "
            f"{self.runs_seen} seen (interval {self.sample_interval}), "
            f"{self.mutations_captured} mutation(s) captured"
        ]
        checks = self.check_stats()
        if checks:
            lines.append("per check:")
            for cs in checks:
                lines.append(
                    f"  {cs.check}: {cs.runs} run(s) "
                    f"({cs.incremental_runs} incremental, "
                    f"{cs.aborted_runs} aborted), {cs.execs} exec(s), "
                    f"self {cs.self_time * 1000:.3f}ms / "
                    f"total {cs.total_time * 1000:.3f}ms"
                )
        klasses = self.node_class_stats()
        if klasses:
            lines.append("per node class (by self time):")
            for klass in klasses[:top]:
                lines.append(
                    f"  {klass.func}: {klass.execs} exec(s), "
                    f"self {klass.self_time * 1000:.3f}ms"
                )
        sites = self.top_mutation_sites(top)
        if sites:
            lines.append("top mutation sites by induced re-execution:")
            for stat in sites:
                lines.append(
                    f"  {stat.site}: {stat.induced_execs} induced "
                    f"exec(s) from {stat.mutations} mutation(s) "
                    f"(dirtied {stat.nodes_dirtied} node(s), "
                    f"{stat.induced_time * 1000:.3f}ms)"
                )
        if self.pending_dropped:
            lines.append(
                f"warning: {self.pending_dropped} mutation(s) dropped "
                f"past the {_MAX_PENDING_LOCATIONS}-location pending cap"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Self-contained JSON document (read back by
        ``python -m repro.obs analyze``)."""
        return {
            "kind": "repair_profile",
            "sample_interval": self.sample_interval,
            "runs_seen": self.runs_seen,
            "samples": self.samples,
            "mutations_captured": self.mutations_captured,
            "pending_dropped": self.pending_dropped,
            "checks": [c.to_dict() for c in self.check_stats()],
            "node_classes": [k.to_dict() for k in self.node_class_stats()],
            "sites": [s.to_dict() for s in self.top_mutation_sites(10**9)],
            "frames": [
                {
                    "check": check,
                    "phase": phase,
                    "func": func,
                    "execs": execs,
                    "self_time_s": self_time,
                }
                for (check, phase, func), (execs, self_time) in sorted(
                    self._frames.items()
                )
            ],
            "edges": [
                {"caller": caller, "callee": callee, "count": count}
                for (caller, callee), count in sorted(self._edges.items())
            ],
        }

    def reset(self) -> None:
        """Drop all accumulated attribution (epoch position included);
        attachments stay."""
        self.runs_seen = 0
        self.samples = 0
        self.mutations_captured = 0
        self.pending_dropped = 0
        self._pending_sites.clear()
        self._recording = False
        self._run_attr = {}
        self._stack.clear()
        self._sites.clear()
        self._checks.clear()
        self._node_classes.clear()
        self._frames.clear()
        self._edges.clear()
        self._capture = (1 % self.sample_interval == 0)
        self._sync_probes()


def enable_profiling(
    engine: "DittoEngine", sample_interval: int = 1
) -> RepairProfiler:
    """Attach (or return the existing) profiler on ``engine``."""
    if engine.profiler is not None:
        return engine.profiler
    return RepairProfiler(sample_interval=sample_interval).attach(engine)


def disable_profiling(engine: "DittoEngine") -> None:
    """Detach ``engine``'s profiler (restoring the raw barrier path)."""
    profiler = engine.profiler
    if profiler is not None:
        profiler.detach(engine)
