"""Invariant guards: the paper's method-entry/exit checking pattern.

Figure 1 calls ``invariants()`` at the entry and exit of every mutating
method: "The former ensures that the invariant is maintained by
modifications performed from outside the class … The latter ensures that
the list operation itself maintains the invariant."  This module packages
that pattern around a :class:`~repro.core.engine.DittoEngine`:

* :class:`InvariantGuard` — owns an engine for one check entry point;
  ``check(*args)`` runs it and raises :class:`InvariantViolation` on
  failure; ``guarding(*args)`` is a with-block that checks on entry *and*
  exit.
* :func:`guarded` — a method decorator for data-structure classes::

      class OrderedIntList(TrackedObject):
          @guarded(is_ordered, args=lambda self: (self.head,))
          def insert(self, value):
              ...

  Every call to ``insert`` now checks ``is_ordered`` incrementally before
  and after the body, at DITTO cost instead of full-traversal cost.

Guards are resilience-aware: pass ``paranoia=`` and/or ``degradation=``
(see :mod:`repro.resilience`) and the underlying engine self-audits and
degrades to scratch mode instead of trusting a corrupted graph.  When a
``guarding`` body raises, the guard logs the engine's pending write log
(the mutations that would have driven the skipped exit check) through the
``repro.guard`` logger, so a violation introduced just before the crash is
not silently lost.
"""

from __future__ import annotations

import functools
import logging
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from .core.engine import DittoEngine
from .core.errors import DittoError
from .instrument.registry import CheckFunction, check as as_check

logger = logging.getLogger("repro.guard")


class InvariantViolation(DittoError):
    """An invariant check returned a failing result."""

    def __init__(self, check_name: str, args: tuple, result: Any,
                 moment: str = "check"):
        self.check_name = check_name
        self.args = args
        self.result = result
        self.moment = moment
        super().__init__(
            f"invariant {check_name!r} violated at {moment} "
            f"(returned {result!r})"
        )


def _failed(result: Any) -> bool:
    """A check fails on False, and on the error value used by
    checkBlackDepth-style integer checks (-1).

    The integer comparison is type-strict: ``-1.0``, ``Decimal(-1)`` and
    other numeric lookalikes are *not* failures, and neither is ``True``
    even though ``True == 1`` (bool is an int subclass, so an identity
    test on the type is required)."""
    return result is False or (type(result) is int and result == -1)


class InvariantGuard:
    """Runs one invariant check incrementally and escalates failures."""

    def __init__(
        self,
        entry: CheckFunction,
        mode: str = "ditto",
        on_violation: str = "raise",
        failed: Optional[Callable[[Any], bool]] = None,
        **engine_options: Any,
    ):
        if on_violation not in ("raise", "record"):
            raise ValueError("on_violation must be 'raise' or 'record'")
        self.entry = as_check(entry)
        self.engine = DittoEngine(self.entry, mode=mode, **engine_options)
        self.on_violation = on_violation
        self.violations: list[InvariantViolation] = []
        self._failed = failed if failed is not None else _failed
        self.checks_run = 0
        #: Pending-write dumps captured when a ``guarding`` body raised
        #: (newest last); see :func:`repro.debug.pending_writes_text`.
        self.diagnostics: list[str] = []

    def check(self, *args: Any, moment: str = "check") -> Any:
        """Run the check; raise or record on a failing result."""
        result = self.engine.run(*args)
        self.checks_run += 1
        if self._failed(result):
            violation = InvariantViolation(
                self.entry.name, args, result, moment
            )
            if self.on_violation == "raise":
                raise violation
            self.violations.append(violation)
        return result

    @contextmanager
    def guarding(self, *args: Any) -> Iterator["InvariantGuard"]:
        """Check the invariant at block entry and block exit (the paper's
        method-entry/exit discipline).

        The exit check runs only when the body did not itself raise, so
        the body's own exception is not masked — but the evidence is not
        lost either: on a body exception the guard captures the engine's
        pending write log (the mutations the skipped exit check would have
        examined) into :attr:`diagnostics` and logs it, then re-raises."""
        self.check(*args, moment="entry")
        try:
            yield self
        except BaseException:
            diagnostic = self._pending_writes_diagnostic()
            self.diagnostics.append(diagnostic)
            logger.warning(
                "guarded block for %r raised; exit check skipped.\n%s",
                self.entry.name,
                diagnostic,
            )
            raise
        self.check(*args, moment="exit")

    def _pending_writes_diagnostic(self) -> str:
        from .debug import pending_writes_text  # avoid an import cycle

        return pending_writes_text(self.engine)

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "InvariantGuard":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def guarded(
    entry: CheckFunction,
    args: Callable[[Any], tuple] = lambda self: (self,),
    mode: str = "ditto",
    **engine_options: Any,
) -> Callable:
    """Decorate a mutating method so the invariant is checked incrementally
    at its entry and exit.

    One shared :class:`InvariantGuard` (and hence one engine/graph) is
    created *per concrete class*, lazily on first call, and stored on the
    class as ``_ditto_guard_<check name>``.  The lookup deliberately uses
    ``vars(type(self))`` rather than attribute access: ``getattr`` walks
    the MRO, which would make a subclass silently reuse — and pollute —
    its base class's engine and computation graph.  Engine options
    (``paranoia=``, ``degradation=``, ``step_limit=``, ...) are forwarded
    to each per-class engine.
    """
    entry = as_check(entry)
    attr = f"_ditto_guard_{entry.name}"

    def decorate(method: Callable) -> Callable:
        @functools.wraps(method)
        def wrapper(self, *call_args: Any, **call_kwargs: Any) -> Any:
            cls = type(self)
            guard = vars(cls).get(attr)
            if guard is None:
                guard = InvariantGuard(entry, mode=mode, **engine_options)
                setattr(cls, attr, guard)
            guard.check(*args(self), moment=f"entry of {method.__name__}")
            result = method(self, *call_args, **call_kwargs)
            # Recompute the check arguments: the method may have replaced
            # the root (e.g. a new list head).
            guard.check(*args(self), moment=f"exit of {method.__name__}")
            return result

        return wrapper

    return decorate
