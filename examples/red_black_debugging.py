"""Debugging a red-black tree with incrementalized invariants.

The paper's motivating scenario: red-black trees have "nontrivial
behaviors for even simple operations … that are hard to get right", and
their invariants "are difficult to analyze statically but are relatively
easy to write as code".  Running the full three-invariant check (Figure 10)
after every operation is prohibitively slow during development; DITTO makes
it cheap enough to leave on.

This demo:
1. drives a correct tree through heavy churn with the incremental check on
   (and shows how little work each check does);
2. simulates a typical rebalancing bug — a recoloring step "forgotten"
   after an insert — and shows the check pinpointing the first operation
   that broke the tree.

Run:  python examples/red_black_debugging.py
"""

import random
import time

from repro import DittoEngine
from repro.structures import NIL, RED, RedBlackTree, rbt_invariant


def churn_with_checks():
    print("=== phase 1: correct tree under churn, incremental checks on ===")
    tree = RedBlackTree()
    engine = DittoEngine(rbt_invariant)
    rng = random.Random(2007)
    keys = set()

    engine.run(tree)
    execs_total = 0
    start = time.perf_counter()
    operations = 600
    for _ in range(operations):
        if rng.random() < 0.5 or not keys:
            k = rng.randrange(10_000)
            tree.insert(k)
            keys.add(k)
        else:
            k = rng.choice(sorted(keys))
            tree.delete(k)
            keys.discard(k)
        before = engine.stats.execs
        assert engine.run(tree) is True
        execs_total += engine.stats.execs - before
    elapsed = time.perf_counter() - start
    print(f"{operations} operations, each followed by a full-strength "
          f"red-black check")
    print(f"graph size: {engine.graph_size} invocations; "
          f"average re-executions per check: "
          f"{execs_total / operations:.1f}")
    print(f"total time including checks: {elapsed:.2f}s\n")
    engine.close()


def buggy_insert(tree, key):
    """An insert that 'forgets' the final fixup recoloring — the kind of
    rebalancing bug the invariant exists to catch."""
    tree.insert(key)
    node = tree._find(key)
    # Simulate the bug: the fixup "forgets" to recolor, leaving a red-red
    # parent/child pair behind.
    if node.parent is not NIL and node.parent.parent is not NIL:
        node.color = RED
        node.parent.color = RED


def hunt_the_bug():
    print("=== phase 2: data-structure bug hunt ===")
    tree = RedBlackTree()
    engine = DittoEngine(rbt_invariant)
    rng = random.Random(42)
    engine.run(tree)

    for step in range(1, 10_000):
        key = rng.randrange(10_000)
        if step % 97 == 0:  # the buggy path triggers occasionally
            buggy_insert(tree, key)
        else:
            tree.insert(key)
        if engine.run(tree) is False:
            print(f"invariant violated immediately after operation "
                  f"#{step} (insert {key})")
            print("the violation is local: the red-red pair is at the "
                  "freshly inserted node")
            node = tree._find(key)
            print(f"  node {node.key} color="
                  f"{'RED' if node.color == RED else 'BLACK'}, parent "
                  f"{node.parent.key} color="
                  f"{'RED' if node.parent.color == RED else 'BLACK'}")
            break
    else:
        raise AssertionError("bug never triggered?")
    engine.close()


if __name__ == "__main__":
    churn_with_checks()
    hunt_the_bug()
