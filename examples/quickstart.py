"""Quickstart: incrementalize your own invariant check in ~30 lines.

Steps:
1. Derive your data structure's node classes from TrackedObject (this is
   DITTO's write-barrier hook, like the paper's IncObject header).
2. Write the invariant as a recursive, side-effect-free @check function.
3. Build a DittoEngine for the entry point and call engine.run() wherever
   you would have called the check.

Run:  python examples/quickstart.py
"""

from repro import DittoEngine, TrackedObject, check


class Elem(TrackedObject):
    """A singly-linked list cell."""

    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def is_ordered(e):
    """The paper's Figure 1 invariant: elements are in sorted order."""
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return is_ordered(e.next)


def main():
    # Build the list 0, 2, 4, ..., 198.
    head = None
    for v in range(198, -1, -2):
        head = Elem(v, head)

    engine = DittoEngine(is_ordered)

    report = engine.run_with_report(head)
    print(f"first check:   {report.result}  "
          f"(built a graph of {report.graph_size} memoized invocations)")

    # Mutate: splice 101 into the middle.  The write barrier on `next`
    # logs exactly one changed location.
    e = head
    while e.value != 100:
        e = e.next
    e.next = Elem(101, e.next)

    report = engine.run_with_report(head)
    print(f"after insert:  {report.result}  "
          f"(re-executed {report.delta['execs']} of "
          f"{report.graph_size} invocations, "
          f"reused {report.delta['reuses']})")

    # Corrupt the order; the incremental check still catches it.
    e.next.value = -1
    report = engine.run_with_report(head)
    print(f"after corrupt: {report.result}  "
          f"(re-executed {report.delta['execs']}, "
          f"propagated through {report.delta['propagation_execs']} callers)")

    # What did the instrumentation do?  Peek at the rewritten source.
    print("\ninstrumented check (paper Figure 3):")
    print(engine.instrumented_source())
    engine.close()


if __name__ == "__main__":
    main()
