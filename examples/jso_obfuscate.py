"""JSO: obfuscate JavaScript with the renaming-map invariant running
(paper §5.2, Figures 13 & 14).

Feeds a synthetic JavaScript program through the obfuscator one function
declaration at a time — the paper's event-loop pattern — checking after
every event that no protected name (reserved word, uppercase- or
digit-initial) has slipped into the renaming map.  Also demonstrates the
invariant catching a deliberately-introduced exclusion-rule bug.

Run:  python examples/jso_obfuscate.py [functions]
"""

import sys
import time

from repro import DittoEngine
from repro.apps import JsObfuscator, generate_program, jso_invariant


def obfuscate(functions, mode):
    jso = JsObfuscator()
    engine = None
    if mode == "ditto":
        engine = DittoEngine(jso_invariant)
        engine.run(jso)
    output = []
    start = time.perf_counter()
    for chunk in generate_program(functions, seed=0x0BF):
        output.append(jso.feed(chunk))
        if mode == "full":
            assert jso_invariant(jso) is True
        elif engine is not None:
            assert engine.run(jso) is True
    elapsed = time.perf_counter() - start
    if engine is not None:
        engine.close()
    return jso, "".join(output), elapsed


def main():
    functions = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    print(f"obfuscating a synthetic program of {functions} functions\n")
    for mode in ("none", "full", "ditto"):
        jso, output, elapsed = obfuscate(functions, mode)
        print(f"{mode:>6}: {elapsed:6.3f}s total, "
              f"{1000.0 * elapsed / functions:6.3f} ms/event "
              f"({len(jso.mapping)} names renamed)")

    print("\nsample of the obfuscated output:")
    print("\n".join(output.splitlines()[:6]))

    print("\nnow simulating an exclusion-rule bug "
          "(a reserved word enters the map)...")
    jso = JsObfuscator()
    engine = DittoEngine(jso_invariant)
    for chunk in generate_program(20, seed=7):
        jso.feed(chunk)
        assert engine.run(jso) is True
    jso.corrupt_add("instanceof")  # the bug
    result = engine.run(jso)
    print(f"invariant after the bug: {result}  "
          f"(the map now contains a protected name)")
    engine.close()


if __name__ == "__main__":
    main()
