"""Inspecting DITTO's computation graph (repro.debug).

When designing a new invariant it helps to *see* what the engine memoized:
how many invocations, how they share subcomputations, and what one mutation
dirties.  This demo builds a small red-black tree, prints the text
rendering of the graph, shows what an insert does to it, and emits a
Graphviz file you can render with ``dot -Tpng``.

Run:  python examples/graph_inspection.py
"""

from repro import DittoEngine
from repro.debug import graph_dot, graph_stats, graph_text
from repro.structures import RedBlackTree, rbt_invariant


def main():
    tree = RedBlackTree()
    for key in (50, 30, 70, 20, 40):
        tree.insert(key)

    engine = DittoEngine(rbt_invariant)
    assert engine.run(tree) is True

    print("computation graph after the first check "
          "(three invariants over five nodes):\n")
    print(graph_text(engine, max_nodes=60))

    stats = graph_stats(engine)
    print(f"\nstats: {int(stats['nodes'])} nodes, "
          f"{int(stats['edges'])} call edges, "
          f"{int(stats['implicits'])} implicit arguments, "
          f"max depth {int(stats['max_depth'])}, "
          f"{100 * stats['sharing']:.0f}% of nodes shared by >1 caller")

    report_before = engine.stats.snapshot()
    tree.insert(60)
    engine.run(tree)
    delta = engine.stats.delta(report_before)
    print(f"\ninsert(60): {delta['dirty_marked']} invocations dirtied, "
          f"{delta['execs']} re-executed, {delta['reuses']} reused, "
          f"{delta['nodes_pruned']} pruned")

    path = "/tmp/ditto_graph.dot"
    with open(path, "w") as handle:
        handle.write(graph_dot(engine))
    print(f"\nGraphviz rendering written to {path} "
          f"(render with: dot -Tpng {path} -o graph.png)")
    engine.close()


if __name__ == "__main__":
    main()
