"""Netcols with per-frame invariant checking (paper §5.2).

A bot plays the falling-jewels game for a few hundred frames while the
Figure 12 "no floating jewels" invariant runs after every frame, three
ways: not at all, as the full recursive check, and incrementalized by
DITTO.  The paper reports the event loop going from 80ms (full check) to
15ms (DITTO); this demo prints the analogous per-frame times for this
machine and board, plus the final board.

Run:  python examples/netcols_game.py [frames]
"""

import sys
import time

from repro import DittoEngine
from repro.apps import NetcolsBot, NetcolsGame, netcols_invariant

WIDTH, HEIGHT = 32, 20


def play(frames, mode):
    game = NetcolsGame(WIDTH, HEIGHT)
    bot = NetcolsBot(game, seed=0xBEEF)
    engine = None
    if mode == "ditto":
        engine = DittoEngine(netcols_invariant)
        engine.run(game)
    start = time.perf_counter()
    for _ in range(frames):
        bot.step()
        if mode == "full":
            assert netcols_invariant(game) is True
        elif engine is not None:
            assert engine.run(game) is True
    elapsed = time.perf_counter() - start
    if engine is not None:
        engine.close()
    return game, 1000.0 * elapsed / frames


def main():
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    print(f"playing {frames} frames on a {WIDTH}x{HEIGHT} board\n")
    results = {}
    for mode in ("none", "full", "ditto"):
        game, per_frame = play(frames, mode)
        results[mode] = per_frame
        print(f"{mode:>6}: {per_frame:7.3f} ms/frame   "
              f"(score {game.score}, {game.pieces_dropped} pieces)")
    print(f"\ncheck overhead: full adds "
          f"{results['full'] - results['none']:.3f} ms/frame, "
          f"DITTO adds {results['ditto'] - results['none']:.3f} ms/frame")
    print(f"paper's analogous numbers: 80 ms -> 15 ms per event-loop "
          f"iteration\n")
    print("final board (DITTO run):")
    print(game.render())


if __name__ == "__main__":
    main()
