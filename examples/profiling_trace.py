"""Profiling a check with repro.obs: where does repair time go?

One ordered list, one engine, three observability layers at once:

* a :class:`ChromeTraceSink` records every run phase as a span — load the
  written file in Perfetto (https://ui.perfetto.dev) to see the repairs
  as a flame of ``barrier_drain``/``dirty_mark``/``exec``/... blocks;
* :class:`EngineMetrics` feeds a Prometheus-exportable registry with the
  repair-latency and dirtied-nodes histograms;
* the provenance recorder answers "why did the last run re-execute those
  nodes?" via :func:`explain_last_run`.

Run:  python examples/profiling_trace.py [ops]
"""

import random
import sys

from repro import (
    ChromeTraceSink,
    DittoEngine,
    EngineMetrics,
    enable_provenance,
    explain_last_run,
)
from repro.bench import format_phase_breakdown
from repro.obs import validate_chrome_trace
from repro.structures import OrderedIntList, is_ordered

TRACE_PATH = "/tmp/ditto_profile_trace.json"
DOT_PATH = "/tmp/ditto_provenance.dot"


def main(ops: int) -> None:
    lst = OrderedIntList()
    for v in range(0, 600, 2):
        lst.insert(v)

    sink = ChromeTraceSink(TRACE_PATH)
    engine = DittoEngine(is_ordered, trace_sink=sink)
    metrics = EngineMetrics(engine)
    enable_provenance(engine)

    report = engine.run_with_report(lst.head)  # initial graph build
    metrics.record_run(report)
    print(f"initial check over {len(lst)} elements: "
          f"{report.duration * 1000:.2f} ms, "
          f"graph of {report.graph_size} nodes")

    rng = random.Random(7)
    values = list(range(0, 600, 2))
    for _ in range(ops):
        if rng.random() < 0.6 or not values:
            v = rng.randrange(1200)
            lst.insert(v)
            values.append(v)
        else:
            lst.delete(values.pop(rng.randrange(len(values))))
        report = engine.run_with_report(lst.head)
        assert report.result is True
        metrics.record_run(report)

    print(f"\nwhere did repair time go over {ops} incremental checks?")
    print(format_phase_breakdown(
        {p: s for p, s in engine.stats.timers().items() if s > 0}
    ))

    print("\nwhy did the last run re-execute what it re-executed?")
    explanation = explain_last_run(engine)
    print(explanation.text())
    with open(DOT_PATH, "w") as handle:
        handle.write(explanation.dot())
    print(f"\nprovenance graph written to {DOT_PATH} "
          f"(render with: dot -Tpng {DOT_PATH} -o provenance.png)")

    text = metrics.to_prometheus_text()
    latency_lines = [
        line for line in text.splitlines()
        if line.startswith("ditto_run_duration_seconds")
    ]
    print(f"\nPrometheus scrape: {len(text.splitlines())} lines; "
          f"the repair-latency histogram:")
    for line in latency_lines:
        print(f"  {line}")

    engine.close()
    sink.close()
    problems = validate_chrome_trace(TRACE_PATH)
    print(f"\nChrome trace written to {TRACE_PATH} "
          f"({sink.events_emitted} events, "
          f"{'valid' if not problems else problems}) — "
          f"open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
