"""Porting an existing iterative check to DITTO with `recursify`.

The paper notes that DITTO "memoizes the computation at the level of
function invocations, so recursive checks are more efficient than iterative
ones.  Most iterative invariant checks can be rewritten without loss of
clarity into recursive checks."  `repro.recursify` mechanizes that
rewriting: feed it the loop you already have, get back a registered
recursive check, and incrementalize it as usual.

This demo also shows the `@guarded` decorator — the paper's method
entry/exit checking discipline — on a small inventory ledger.

Run:  python examples/iterative_to_recursive.py
"""

import time

from repro import (
    DittoEngine,
    InvariantViolation,
    TrackedArray,
    TrackedObject,
    guarded,
    recursify,
)


class Ledger(TrackedObject):
    """Fixed-capacity ledger of item counts; None marks unused slots."""

    def __init__(self, capacity=512):
        self.slots = TrackedArray(capacity)

    def stock(self, index, amount):
        current = self.slots[index]
        self.slots[index] = amount if current is None else current + amount

    def withdraw(self, index, amount):
        current = self.slots[index]
        if current is None:
            raise KeyError(index)
        self.slots[index] = current - amount  # may go negative: the bug!


# The check as anyone would first write it — a plain loop.
def no_negative_stock(ledger):
    for i in range(len(ledger.slots)):
        if ledger.slots[i] is not None and ledger.slots[i] < 0:
            return False
    return True


def main():
    print("=== recursify: from loop to incremental check ===")
    entry = recursify(no_negative_stock)
    print(f"generated entry point: {entry!r}")

    ledger = Ledger()
    for i in range(0, 512, 3):
        ledger.stock(i, 10)

    engine = DittoEngine(entry)
    report = engine.run_with_report(ledger)
    print(f"first run: {report.result}, "
          f"graph of {report.graph_size} invocations "
          f"(one per loop iteration)")

    ledger.withdraw(9, 4)
    report = engine.run_with_report(ledger)
    print(f"after a withdrawal: {report.result}, re-executed "
          f"{report.delta['execs']} invocations")

    ledger.withdraw(9, 100)  # drives slot 9 negative
    report = engine.run_with_report(ledger)
    print(f"after the bug: {report.result}, re-executed "
          f"{report.delta['execs']} invocations")
    ledger.stock(9, 100)
    engine.close()

    print("\n=== @guarded: entry/exit checks on every mutator ===")

    class GuardedLedger(Ledger):
        @guarded(entry, args=lambda self: (self,))
        def withdraw(self, index, amount):
            return super().withdraw(index, amount)

    guarded_ledger = GuardedLedger()
    guarded_ledger.stock(3, 5)
    guarded_ledger.withdraw(3, 2)
    print("legal withdrawal passed both entry and exit checks")
    try:
        guarded_ledger.withdraw(3, 50)
    except InvariantViolation as violation:
        print(f"caught at the faulty method's boundary: {violation}")
        guarded_ledger.stock(3, 50)  # repair before continuing

    print("\n=== the checks stay cheap: 2,000 guarded operations ===")
    start = time.perf_counter()
    for i in range(2000):
        guarded_ledger.stock(i % 512, 2)
        try:
            guarded_ledger.withdraw(i % 512, 1)
        except InvariantViolation:
            raise AssertionError("unexpected violation")
    elapsed = time.perf_counter() - start
    print(f"{2000 * 2} operations with entry+exit invariant checks: "
          f"{elapsed:.2f}s total "
          f"({1e6 * elapsed / 4000:.0f} µs per checked operation)")


if __name__ == "__main__":
    main()
