"""Data breakpoints via cheap invariant checks.

The paper's motivation list includes wanting "to obtain an efficient check
rapidly, for example, when writing data-breakpoint checks for explaining
the symptoms of a particular bug."  This demo shows that pattern: you
observe a symptom (a priority queue occasionally returns the wrong
minimum), write a throwaway invariant describing the healthy state, and
let DITTO run it after *every* operation at incremental cost to find the
exact operation that corrupts the structure.

Run:  python examples/data_breakpoints.py
"""

import random

from repro import DittoEngine, check
from repro.structures import BinaryHeap, heap_invariant


def sloppy_decrease_key(heap, index, new_value):
    """The buggy operation under suspicion: it lowers a value in place but
    'forgets' to sift it up, silently breaking the heap order."""
    heap.items[index] = new_value  # missing: heap._sift_up(index)


def main():
    rng = random.Random(1234)
    heap = BinaryHeap(capacity=1024)
    for _ in range(200):
        heap.push(rng.randrange(10_000))

    # The throwaway data breakpoint: the ordinary heap invariant, made
    # cheap enough by DITTO to run after every single operation.
    engine = DittoEngine(heap_invariant)
    assert engine.run(heap) is True
    print(f"breakpoint armed; heap of {len(heap)} elements, "
          f"graph of {engine.graph_size} invocations")

    operations = []
    for step in range(1, 5000):
        roll = rng.random()
        if roll < 0.55:
            value = rng.randrange(10_000)
            heap.push(value)
            operations.append(f"push({value})")
        elif roll < 0.9 or len(heap) == 0:
            if len(heap):
                operations.append(f"pop() -> {heap.pop()}")
            else:
                continue
        else:
            index = rng.randrange(len(heap))
            value = max(0, heap.items[index] - rng.randrange(5000))
            sloppy_decrease_key(heap, index, value)
            operations.append(
                f"sloppy_decrease_key(index={index}, value={value})"
            )
        report = engine.run_with_report(heap)
        if report.result is False:
            print(f"\ndata breakpoint hit after operation #{step}:")
            print(f"  {operations[-1]}")
            print(f"  (the check re-executed only "
                  f"{report.delta['execs']} invocations to notice)")
            print("\nlast five operations leading up to the corruption:")
            for op in operations[-5:]:
                print(f"  {op}")
            break
    else:
        raise AssertionError("the buggy operation never fired?")
    engine.close()


if __name__ == "__main__":
    main()
