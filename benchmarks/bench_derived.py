"""Steady-state repair: synthesized derived maintenance vs the memo
graph, on the three DIT201-admissible invariants.

The memo engine repairs a point mutation by re-executing every memo node
whose value changed — for a linear fold that is the whole suffix chain
below the mutation site, O(site) work.  The derived strategy applies the
synthesized per-mutator delta rule instead: O(1) per mutation regardless
of structure size.  This bench measures exactly that asymptotic claim in
the steady state (after the one-time bind fold), per repaired check:

* ``vector_sum``   — point writes rotating over a large ``IntVector``,
* ``heap_min``     — ever-decreasing corruptions (each lowers the global
  minimum, so every suffix min changes and memo must re-fold the chain
  while the min monoid absorbs the new champion in O(1)),
* ``table_occupancy`` — toggling a singleton bucket (put/remove of a key
  that lands in an otherwise-empty bucket, so occupancy really changes).

Run as a script to emit/gate the ``BENCH_derived.json`` perf-trajectory
record:

    python benchmarks/bench_derived.py --emit BENCH_derived.json \
        --check benchmarks/BENCH_derived.json

The gate is intentionally blunt: at the top size (10k elements) the
derived strategy must beat memo steady-state repair by at least 10x on
every workload, and the measured speedup must keep at least half of the
committed baseline's (speedups here are 2-4 orders of magnitude, so 50%
retention is far outside timing jitter while still catching a broken
delta rule, which collapses the speedup to ~1x).  Absolute per-repair
seconds are recorded for trajectory plots inside the ``sizes`` list,
which the ``repro.obs analyze`` drift net deliberately does not recurse
into (machine-dependent); the gated scalar is ``top.steady_speedup``,
registered higher-is-better with the analyzer.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import DittoEngine, reset_tracking
from repro.bench.runner import run_with_big_stack
from repro.structures import (
    BinaryHeap,
    HashTable,
    IntVector,
    heap_min,
    table_occupancy,
    vector_sum,
)
from repro.structures.hash_table import stable_hash

#: Geometric size ladder; the top rung is the gated N>=10k regime.
SIZES = (1000, 3000, 10000)
TOP_SIZE = SIZES[-1]
#: Timed mutation+run cycles per measurement (after warmup).  Memo
#: repair is O(N) per cycle, so this bounds the bench's wall clock.
MUTATIONS = 10
WARMUP = 3
REPEATS = 3
SEED = 0xD17D


class _VectorSumWorkload:
    """Point writes rotating over the vector; every write changes the
    sum, so memo re-folds the suffix chain below the site."""

    name = "vector_sum"
    entry = vector_sum

    def build(self, size):
        self.vec = IntVector(range(size))
        self.size = size
        self.step = 0
        return (self.vec,)

    def mutate(self):
        self.vec[(self.step * 7919) % self.size] = self.step
        self.step += 1


class _HeapMinWorkload:
    """Ever-decreasing corruptions: each installs a new global minimum,
    which a min monoid absorbs in O(1) while every suffix min changes."""

    name = "heap_min"
    entry = heap_min

    def build(self, size):
        self.heap = BinaryHeap(capacity=4)
        for value in range(size):
            self.heap.push(value)
        self.size = size
        self.step = 0
        self.value = -1
        return (self.heap,)

    def mutate(self):
        self.heap.corrupt((self.step * 7919) % self.size, self.value)
        self.step += 1
        self.value -= 1


class _TableOccupancyWorkload:
    """Toggle one singleton bucket: the put/remove pair flips that
    bucket's head between None and a chain of one, so the occupancy
    count genuinely changes on every cycle (a same-value overwrite would
    let memo's cutoff win for free)."""

    name = "table_occupancy"
    entry = table_occupancy

    def build(self, size):
        self.table = HashTable(capacity=4)
        for key in range(size):
            self.table.put(key, key)
        capacity = len(self.table.buckets)
        self.key = next(
            k for k in range(size, size + capacity)
            if self.table.buckets[stable_hash(k) % capacity] is None
        )
        self.step = 0
        return (self.table,)

    def mutate(self):
        if self.step % 2 == 0:
            self.table.put(self.key, self.key)
        else:
            self.table.remove(self.key)
        self.step += 1


WORKLOADS = (_VectorSumWorkload, _HeapMinWorkload, _TableOccupancyWorkload)
#: Engine strategies compared at every size.
STRATEGIES = ("memo", "derived")


def _measure_once(workload_cls, size, strategy):
    """Seconds per steady-state mutation+repair cycle, one build."""
    reset_tracking()
    workload = workload_cls()
    args = workload.build(size)
    engine = DittoEngine(
        workload.entry, strategy=strategy, recursion_limit=8 * size + 10_000
    )
    try:
        engine.run(*args)
        for _ in range(WARMUP):
            workload.mutate()
            engine.run(*args)
        started = time.perf_counter()
        for _ in range(MUTATIONS):
            workload.mutate()
            engine.run(*args)
        return (time.perf_counter() - started) / MUTATIONS
    finally:
        engine.close()
        reset_tracking()


def _best_seconds(workload_cls, size, strategy, repeats):
    return min(
        run_with_big_stack(lambda: _measure_once(workload_cls, size, strategy))
        for _ in range(repeats)
    )


def run_derived_benchmark(sizes=SIZES, repeats=REPEATS):
    result = {
        "benchmark": "derived-maintenance",
        "generated_by": "benchmarks/bench_derived.py",
        "params": {
            "sizes": list(sizes),
            "mutations": MUTATIONS,
            "warmup": WARMUP,
            "repeats": repeats,
            "seed": SEED,
        },
        "workloads": {},
    }
    for workload_cls in WORKLOADS:
        rows = []
        for size in sizes:
            row = {"size": size}
            for strategy in STRATEGIES:
                row[f"{strategy}_repair_s"] = _best_seconds(
                    workload_cls, size, strategy, repeats
                )
            row["speedup"] = row["memo_repair_s"] / row["derived_repair_s"]
            rows.append(row)
        top = rows[-1]
        result["workloads"][workload_cls.name] = {
            "sizes": rows,
            "top": {
                "size": top["size"],
                "steady_speedup": top["speedup"],
            },
        }
    return result


#: Gate thresholds (see the module docstring).
MIN_STEADY_SPEEDUP = 10.0
GATED_WORKLOADS = ("vector_sum", "heap_min", "table_occupancy")
#: Fraction of the committed baseline speedup that must be retained.  A
#: broken delta rule collapses the speedup to ~1x — orders of magnitude
#: below any plausible timing wobble around a healthy 100x+.
SPEEDUP_RETENTION = 0.5


def check_against_baseline(result, baseline):
    """Return a list of failure messages (empty when the gate passes)."""
    failures = []
    for name in GATED_WORKLOADS:
        wl = (result.get("workloads") or {}).get(name)
        if wl is None:
            failures.append(f"{name}: missing from the bench result")
            continue
        speedup = wl["top"]["steady_speedup"]
        if speedup < MIN_STEADY_SPEEDUP:
            failures.append(
                f"{name}: steady-state speedup {speedup:.1f}x at size "
                f"{wl['top']['size']} < hard floor {MIN_STEADY_SPEEDUP}x"
            )
        if baseline is None:
            continue
        base_wl = (baseline.get("workloads") or {}).get(name)
        if base_wl is None:
            continue
        floor = base_wl["top"]["steady_speedup"] * SPEEDUP_RETENTION
        if speedup < floor:
            failures.append(
                f"{name}: steady-state speedup {speedup:.1f}x lost more "
                f"than half of baseline "
                f"{base_wl['top']['steady_speedup']:.1f}x"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--emit", metavar="PATH", help="write BENCH_derived.json here"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="gate against a committed BENCH_derived.json",
    )
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument(
        "--sizes", metavar="N,N,...",
        help="override the size ladder (comma-separated)",
    )
    args = parser.parse_args(argv)

    sizes = SIZES
    if args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))

    result = run_derived_benchmark(sizes, repeats=args.repeats)
    for name, wl in sorted(result["workloads"].items()):
        top = wl["top"]
        print(
            f"{name}: memo {wl['sizes'][-1]['memo_repair_s'] * 1e6:.0f}us "
            f"vs derived {wl['sizes'][-1]['derived_repair_s'] * 1e6:.0f}us "
            f"per repair at size {top['size']} "
            f"-> {top['steady_speedup']:.1f}x"
        )
    if args.emit:
        with open(args.emit, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.emit}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_against_baseline(result, baseline)
        if failures:
            for failure in failures:
                print(f"GATE FAILURE: {failure}", file=sys.stderr)
            return 1
        print(f"gate passed vs {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
