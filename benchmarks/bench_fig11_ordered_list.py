"""Figure 11 (left): ordered-list performance at several sizes under
(i) no invariant checks, (ii) the full recursive check after every
modification, (iii) the DITTO-incrementalized check.

Paper shape to reproduce: the full-check curve grows superlinearly with
size (O(size) check x modifications) while the DITTO curve stays close to
the no-check curve; DITTO wins from a few hundred elements up.
Regenerate the full table with ``python -m repro.bench fig11``.
"""

from __future__ import annotations

import pytest

SIZES = (50, 200, 800)
MODS_PER_ROUND = 30


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["none", "full", "ditto"])
def test_fig11_ordered_list(benchmark, cycle_factory, size, mode):
    benchmark.group = f"fig11-ordered_list-{size}"
    benchmark.extra_info["workload"] = "ordered_list"
    benchmark.extra_info["size"] = size
    benchmark.extra_info["mode"] = mode
    cycle = cycle_factory("ordered_list", size, mode, MODS_PER_ROUND)
    benchmark.pedantic(cycle, rounds=3, iterations=1, warmup_rounds=1)
