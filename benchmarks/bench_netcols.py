"""§5.2 Netcols: per-frame event-loop time with the Figure 12 no-floating-
jewels invariant checked every frame.

Paper claim: "The main event loop averaged 80ms end-to-end time with the
invariant check running, noticeably sluggish.  With DITTO, the event loop
averaged 15ms."  On our grid/machine the absolute numbers differ, but the
ordering (full >> ditto ~ none) and the several-fold gap reproduce:
compare the rows inside the ``netcols-frames`` group.
"""

from __future__ import annotations

import pytest

GRID_WIDTH = 48  # scales the invariant's work like the paper's board
FRAMES_PER_ROUND = 30


@pytest.mark.parametrize("mode", ["none", "full", "ditto"])
def test_netcols_event_loop(benchmark, cycle_factory, mode):
    benchmark.group = "netcols-frames"
    benchmark.extra_info["grid_width"] = GRID_WIDTH
    benchmark.extra_info["mode"] = mode
    cycle = cycle_factory("netcols", GRID_WIDTH, mode, FRAMES_PER_ROUND)
    benchmark.pedantic(cycle, rounds=3, iterations=1, warmup_rounds=1)
