"""Figure 14: JSO end-to-end obfuscation time versus input size, with the
Figure 13 renaming-map invariant checked after every event (one function
declaration processed per event).

Paper shape: the full check makes the tool's event loop sluggish and the
gap widens with input size; "DITTO's incrementalized version of the check
is able to mitigate much of the overhead."
"""

from __future__ import annotations

import pytest

from repro import DittoEngine
from repro.apps.jso import JsObfuscator, generate_program, jso_invariant

SIZES = (50, 150, 300)


def _run_obfuscation(size: int, mode: str) -> None:
    jso = JsObfuscator()
    engine = None
    if mode == "ditto":
        engine = DittoEngine(jso_invariant)
        engine.run(jso)
    try:
        for chunk in generate_program(size, seed=0xF16):
            jso.feed(chunk)
            if mode == "full":
                assert jso_invariant(jso) is True
            elif engine is not None:
                assert engine.run(jso) is True
    finally:
        if engine is not None:
            engine.close()


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["none", "full", "ditto"])
def test_fig14_jso(benchmark, size, mode):
    benchmark.group = f"fig14-jso-{size}"
    benchmark.extra_info["functions"] = size
    benchmark.extra_info["mode"] = mode
    benchmark.pedantic(
        _run_obfuscation, args=(size, mode), rounds=2, iterations=1,
        warmup_rounds=0,
    )
