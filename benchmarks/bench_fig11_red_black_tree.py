"""Figure 11 (right): red-black-tree performance — the paper's "acid
test", three invariants (Figure 10) over 50/50 insert/delete churn with
rotations and recoloring.

Paper shape: DITTO still tracks the no-check curve; crossover ~200.
"""

from __future__ import annotations

import pytest

SIZES = (50, 200, 800)
MODS_PER_ROUND = 20


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["none", "full", "ditto"])
def test_fig11_red_black_tree(benchmark, cycle_factory, size, mode):
    benchmark.group = f"fig11-red_black_tree-{size}"
    benchmark.extra_info["workload"] = "red_black_tree"
    benchmark.extra_info["size"] = size
    benchmark.extra_info["mode"] = mode
    cycle = cycle_factory("red_black_tree", size, mode, MODS_PER_ROUND)
    benchmark.pedantic(cycle, rounds=3, iterations=1, warmup_rounds=1)
