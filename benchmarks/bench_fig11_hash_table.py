"""Figure 11 (middle): hash-table performance — the two-function bucket
invariant (Figure 9) under 50/50 insert/delete churn.

Paper shape: same as the ordered list; the paper reports the lowest
crossover (100 elements) for this structure.
"""

from __future__ import annotations

import pytest

SIZES = (50, 200, 800)
MODS_PER_ROUND = 30


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["none", "full", "ditto"])
def test_fig11_hash_table(benchmark, cycle_factory, size, mode):
    benchmark.group = f"fig11-hash_table-{size}"
    benchmark.extra_info["workload"] = "hash_table"
    benchmark.extra_info["size"] = size
    benchmark.extra_info["mode"] = mode
    cycle = cycle_factory("hash_table", size, mode, MODS_PER_ROUND)
    benchmark.pedantic(cycle, rounds=3, iterations=1, warmup_rounds=1)
