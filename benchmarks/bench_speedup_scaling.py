"""Speedup-scaling claims: "roughly 5-fold at 5,000 elements, and growing
linearly with data structure size" (abstract); "The average speedup at
3200 elements is 7.5x" (§5.1.1).

Within each ``speedup-<workload>-<size>`` group, the ratio of the ``full``
row's time to the ``ditto`` row's time is the speedup; it should grow
roughly linearly across the size axis.  ``python -m repro.bench speedup``
prints the ratios directly.
"""

from __future__ import annotations

import pytest

SIZES = (400, 1600, 3200)
MODS_PER_ROUND = 15


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["full", "ditto"])
def test_speedup_scaling_ordered_list(benchmark, cycle_factory, size, mode):
    benchmark.group = f"speedup-ordered_list-{size}"
    benchmark.extra_info["size"] = size
    benchmark.extra_info["mode"] = mode
    cycle = cycle_factory("ordered_list", size, mode, MODS_PER_ROUND)
    benchmark.pedantic(cycle, rounds=2, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("size", (400, 1600))
@pytest.mark.parametrize("mode", ["full", "ditto"])
def test_speedup_scaling_red_black_tree(benchmark, cycle_factory, size,
                                        mode):
    benchmark.group = f"speedup-red_black_tree-{size}"
    benchmark.extra_info["size"] = size
    benchmark.extra_info["mode"] = mode
    cycle = cycle_factory("red_black_tree", size, mode, MODS_PER_ROUND)
    benchmark.pedantic(cycle, rounds=2, iterations=1, warmup_rounds=1)
