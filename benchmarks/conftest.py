"""Shared benchmark fixtures.

Each benchmark measures one *mutate + invariant check* event cycle under a
given mode, using the paper's workloads (§5.1/§5.2 operation mixes).  The
workload and engine are built in setup (untimed); the engine persists
across rounds, so incremental numbers are steady-state — the same protocol
as the paper's 10,000-modification runs.

Sizes here are trimmed so the whole suite finishes in minutes; the CLI
(``python -m repro.bench``) runs the full Figure 11 size axis.
"""

from __future__ import annotations

import sys

import pytest

from repro import DittoEngine, reset_tracking
from repro.bench.workloads import get_workload

sys.setrecursionlimit(200_000)


@pytest.fixture(autouse=True)
def _clean_tracking():
    reset_tracking()
    yield
    reset_tracking()


@pytest.fixture
def cycle_factory():
    """Build a (callable, teardown) pair running mutate+check cycles."""
    engines: list[DittoEngine] = []

    def make(workload_name: str, size: int, mode: str, mods_per_round: int,
             seed: int = 0xD1770, **engine_options):
        workload = get_workload(workload_name, size, seed=seed)
        engine = None
        if mode in ("ditto", "naive"):
            engine = DittoEngine(workload.entry, mode=mode,
                                 **engine_options)
            engines.append(engine)
            engine.run(*workload.check_args())  # build graph (untimed)

        def cycle():
            for _ in range(mods_per_round):
                workload.mutate()
                if mode == "full":
                    workload.run_full_check()
                elif engine is not None:
                    engine.run(*workload.check_args())

        return cycle

    yield make
    for engine in engines:
        engine.close()
