"""Ablation of §4 implementation choices on the DITTO engine:

* ``leaf-on`` / ``leaf-off`` — the leaf-call optimization ("if all the
  non-primitive arguments to a function call are null, DITTO does not
  perform any cache lookups");
* ``step-limit`` — the §3.5 timeout alternative armed with a generous
  budget (its bookkeeping cost, without triggering fallbacks);
* ``lenient`` — runtime purity policing disabled (strict=False), isolating
  the cost of the helper/method checks.

All variants compute identical results; compare times within each group.
"""

from __future__ import annotations

import pytest

SIZE = 400
MODS_PER_ROUND = 25

VARIANTS = {
    "leaf-on": {},
    "leaf-off": {"leaf_optimization": False},
    "step-limit": {"step_limit": 10_000_000},
    "lenient": {"strict": False},
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_engine_variants_ordered_list(benchmark, cycle_factory, variant):
    benchmark.group = "abl-impl-ordered_list"
    benchmark.extra_info["variant"] = variant
    cycle = cycle_factory(
        "ordered_list", SIZE, "ditto", MODS_PER_ROUND,
        **VARIANTS[variant],
    )
    benchmark.pedantic(cycle, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("variant", ["leaf-on", "leaf-off"])
def test_engine_variants_avl(benchmark, cycle_factory, variant):
    """AVL checks recurse into None children constantly — the structure
    where leaf-call inlining matters most."""
    benchmark.group = "abl-impl-avl_tree"
    benchmark.extra_info["variant"] = variant
    cycle = cycle_factory(
        "avl_tree", SIZE, "ditto", MODS_PER_ROUND, **VARIANTS[variant]
    )
    benchmark.pedantic(cycle, rounds=3, iterations=1, warmup_rounds=1)
