"""Recursified iterative checks (paper §2: iterative checks are rewritten
into recursive ones to memoize at function-invocation granularity).

Groups compare, on a 2,000-slot tracked ledger mutated one slot per event:

* ``iterative-full`` — the original loop check, re-run after every event;
* ``recursified-full`` — the machine-generated recursive check, also run
  from scratch (shows the rewrite itself costs little);
* ``recursified-ditto`` — the generated check incrementalized by DITTO,
  where each event re-executes O(1) invocations.
"""

from __future__ import annotations

import pytest

from repro import DittoEngine, TrackedArray, TrackedObject, reset_tracking
from repro.instrument.recursify import recursify

SLOTS = 2000
EVENTS_PER_ROUND = 25


class Ledger(TrackedObject):
    def __init__(self, slots):
        self.slots = TrackedArray(slots, fill=0)


def _iterative(ledger):
    for i in range(len(ledger.slots)):
        if ledger.slots[i] is not None and ledger.slots[i] < 0:
            return False
    return True


@pytest.mark.parametrize(
    "variant", ["iterative-full", "recursified-full", "recursified-ditto"]
)
def test_recursified_ledger(benchmark, variant):
    benchmark.group = "recursify-ledger"
    benchmark.extra_info["variant"] = variant
    reset_tracking()
    ledger = Ledger(SLOTS)
    engine = None
    entry = None
    if variant != "iterative-full":
        def no_negatives(ledger):
            for i in range(len(ledger.slots)):
                if ledger.slots[i] is not None and ledger.slots[i] < 0:
                    return False
            return True

        entry = recursify(no_negatives)
        if variant == "recursified-ditto":
            engine = DittoEngine(entry)
            engine.run(ledger)
    state = {"cursor": 0}

    def cycle():
        for _ in range(EVENTS_PER_ROUND):
            index = state["cursor"] % SLOTS
            state["cursor"] += 1
            ledger.slots[index] = ledger.slots[index] + 1
            if variant == "iterative-full":
                assert _iterative(ledger) is True
            elif engine is None:
                assert entry(ledger) is True
            else:
                assert engine.run(ledger) is True

    try:
        benchmark.pedantic(cycle, rounds=3, iterations=1, warmup_rounds=1)
    finally:
        if engine is not None:
            engine.close()
        reset_tracking()
