"""Ablation (§3.2 vs §3.3): the naive incrementalizer of Figure 6 against
DITTO's optimistic incrementalizer of Figure 7.

The naive version "requires a memoization table lookup for every function
invocation in the computation, even those that are unaffected by any input
modifications"; the optimistic one touches only changed nodes.  Expect
``ditto`` to beat ``naive`` within each group, with the gap growing with
structure size, and both to beat ``full``.
"""

from __future__ import annotations

import pytest

SIZES = (200, 800)
MODS_PER_ROUND = 25


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["full", "naive", "ditto"])
def test_naive_vs_optimistic_ordered_list(benchmark, cycle_factory, size,
                                          mode):
    benchmark.group = f"abl-optimistic-ordered_list-{size}"
    benchmark.extra_info["size"] = size
    benchmark.extra_info["mode"] = mode
    cycle = cycle_factory("ordered_list", size, mode, MODS_PER_ROUND)
    benchmark.pedantic(cycle, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("mode", ["full", "naive", "ditto"])
def test_naive_vs_optimistic_red_black_tree(benchmark, cycle_factory, mode):
    benchmark.group = "abl-optimistic-red_black_tree-400"
    benchmark.extra_info["size"] = 400
    benchmark.extra_info["mode"] = mode
    cycle = cycle_factory("red_black_tree", 400, mode, 15)
    benchmark.pedantic(cycle, rounds=2, iterations=1, warmup_rounds=1)
