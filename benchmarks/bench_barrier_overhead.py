"""§4 write-barrier cost: what tracked mutations cost the main program.

The paper's two barrier optimizations exist because "each memory address
caught by the barriers incurs a hash table lookup … even if the object at
that address is unrelated to any invariant checks".  Groups:

* ``plain-object``       — baseline: ordinary Python attribute stores;
* ``tracked-unmonitored``— TrackedObject stores on a field no check reads
  (filtered by the monitored-field set);
* ``tracked-no-deps``    — stores on a monitored field of an object with a
  zero reference count (filtered by the §4 refcount);
* ``tracked-logging``    — stores that pass both filters and reach the log
  (the worst case; the log deduplicates unread duplicates).

The ``barrier-shift-heavy`` group measures the range-coalescing overhaul:
head inserts/pops on a referenced TrackedList under the coalesced barrier
(one ``RangeLocation`` per op) versus the pre-overhaul per-slot protocol
(one ``IndexLocation`` per shifted slot), including the engine drain and
repair each cycle.  Run this module as a script to emit/gate the
``BENCH_barrier.json`` perf-trajectory record:

    python benchmarks/bench_barrier_overhead.py --emit BENCH_barrier.json \
        --check benchmarks/BENCH_barrier.json

The gate fails when the coalescing win erodes: the append ratio must stay
at least 3x, at least 80% of the committed baseline's ratio, and the
coalesced barrier must not be slower than the per-slot one.  Wall-clock
seconds are recorded for trajectory plots but not gated against the
committed file (they are machine-dependent); the within-run speedup is.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import pytest

from repro import (
    DittoEngine,
    TrackedList,
    TrackedObject,
    check,
    reset_tracking,
    tracking_state,
)
from repro.core.tracked import set_location_filter

STORES = 20_000


class Plain:
    def __init__(self):
        self.value = 0
        self.other = 0


class Cell(TrackedObject):
    def __init__(self):
        self.value = 0
        self.other = 0


@check
def barrier_watch(c):
    if c is None:
        return True
    return c.value >= 0


def _store_loop(obj, field):
    def run():
        for i in range(STORES):
            setattr(obj, field, i)
    return run


@pytest.mark.parametrize(
    "variant",
    ["plain-object", "tracked-unmonitored", "tracked-no-deps",
     "tracked-logging"],
)
def test_barrier_overhead(benchmark, variant):
    benchmark.group = "barrier-overhead"
    benchmark.extra_info["variant"] = variant
    engine = None
    if variant == "plain-object":
        run = _store_loop(Plain(), "value")
    elif variant == "tracked-unmonitored":
        engine = DittoEngine(barrier_watch)
        run = _store_loop(Cell(), "other")  # 'other' is never read
    elif variant == "tracked-no-deps":
        engine = DittoEngine(barrier_watch)
        run = _store_loop(Cell(), "value")  # monitored, but refcount == 0
    else:  # tracked-logging
        engine = DittoEngine(barrier_watch)
        cell = Cell()
        engine.run(cell)  # the graph now depends on cell.value
        run = _store_loop(cell, "value")
    try:
        benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    finally:
        if engine is not None:
            engine.close()
        tracking_state().write_log  # keep symmetry; log cleans on consume


# Shift-heavy workload: the coalescing overhaul's target. ---------------------

#: Steady-state list size; every slot is read by the checksum check, so
#: the whole list is referenced and every shift passes the §4 filters.
SHIFT_LIST_SIZE = 512
#: Head inserts (then head pops) per measured cycle.
SHIFT_OPS = 256
SHIFT_ROUNDS = 5


@check
def shift_checksum(v, i):
    """Position-weighted sum of slots ``i..`` — reads every slot and the
    length, so shifts dirty the whole suffix chain."""
    if i >= len(v):
        return 0
    x = v[i]
    rest = shift_checksum(v, i + 1)
    return (i + 1) * x + rest


@check
def shift_watch(v):
    return shift_checksum(v, 0)


class _PerSlotList(TrackedList):
    """The pre-overhaul barrier protocol: one ``IndexLocation`` append per
    shifted slot (clamping/validation match the fixed semantics, so the
    two variants compute identical states — only the logging differs).
    Kept as the in-run A/B baseline the regression gate measures against."""

    __slots__ = ()

    def insert(self, index, value):
        items = self._items
        n = len(items)
        if index < 0:
            index += n
            if index < 0:
                index = 0
        elif index > n:
            index = n
        if self._ditto_refcount > 0:
            log = tracking_state().write_log
            log.append(self._ditto_location("<len>"))
            for i in range(index, n + 1):
                log.append(self._ditto_location(i))
        items.insert(index, value)

    def pop(self, index=-1):
        items = self._items
        n = len(items)
        if not n:
            raise IndexError("pop from empty list")
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("pop index out of range")
        if self._ditto_refcount > 0:
            log = tracking_state().write_log
            log.append(self._ditto_location("<len>"))
            for i in range(index, n):
                log.append(self._ditto_location(i))
        return items.pop(index)


def _shift_cycle(lst, engine, ops=SHIFT_OPS):
    """One mutate+repair event cycle: ``ops`` head inserts, ``ops`` head
    pops (back to the steady-state contents), then the incremental run
    that drains the log and repairs the graph."""

    def cycle():
        for i in range(ops):
            lst.insert(0, i)
        for _ in range(ops):
            lst.pop(0)
        engine.run(lst)

    return cycle


_SHIFT_IMPLS = {"coalesced": TrackedList, "per-slot": _PerSlotList}


@pytest.mark.parametrize("impl", sorted(_SHIFT_IMPLS))
def test_shift_heavy_barrier(benchmark, impl):
    benchmark.group = "barrier-shift-heavy"
    benchmark.extra_info["variant"] = impl
    lst = _SHIFT_IMPLS[impl](range(SHIFT_LIST_SIZE))
    engine = DittoEngine(shift_watch)
    engine.run(lst)  # build the graph (untimed)
    try:
        benchmark.pedantic(
            _shift_cycle(lst, engine),
            rounds=SHIFT_ROUNDS,
            iterations=1,
            warmup_rounds=1,
        )
    finally:
        engine.close()


# Multi-check workload: the per-location refcount filter's target. ------------

#: Chain length; the flag of the *head* is the only flag any check reads.
MULTI_CHAIN = 256
#: Flag stores per measured cycle, rotated over every node.
MULTI_STORES = 2_000
MULTI_ROUNDS = 5


class Flagged(TrackedObject):
    def __init__(self, value, flag, next=None):
        self.value = value
        self.flag = flag
        self.next = next


@check
def chain_values_ok(p):
    if p is None:
        return True
    if p.value < 0:
        return False
    return chain_values_ok(p.next)


@check
def multi_watch(p):
    """Reads ``flag`` of the head only, then every ``value``/``next`` via
    the callee — so ``flag`` joins the monitored-field set even though
    all but one ``flag`` *location* has no dependent node."""
    if p is None:
        return True
    if not p.flag:
        return False
    return chain_values_ok(p)


def _build_chain(n=MULTI_CHAIN):
    head = None
    for i in range(n, 0, -1):
        head = Flagged(i, True, head)
    nodes = []
    node = head
    while node is not None:
        nodes.append(node)
        node = node.next
    return head, nodes


def _multi_cycle(nodes, engine, head, stores=MULTI_STORES):
    """``stores`` flag stores rotated over the chain, then the repair run.
    Only the head's flag location has a dependent node: the per-location
    filter drops the other ~``(n-1)/n`` of the stores before the log."""

    def cycle():
        n = len(nodes)
        for i in range(stores):
            nodes[i % n].flag = i + 1  # truthy: the invariant stays True
        engine.run(head)

    return cycle


def _measure_multi(location_filter, chain, stores, rounds):
    reset_tracking()
    set_location_filter(location_filter)
    try:
        head, nodes = _build_chain(chain)
        engine = DittoEngine(multi_watch)
        try:
            engine.run(head)  # build the graph (untimed)
            cycle = _multi_cycle(nodes, engine, head, stores)
            state = tracking_state()
            before = dict(state.barrier_counters())
            cycle()  # warmup; also the counted cycle
            after = state.barrier_counters()
            best = float("inf")
            for _ in range(rounds):
                started = time.perf_counter()
                cycle()
                best = min(best, time.perf_counter() - started)
            return {
                "seconds": best,
                "logged": after["barrier_logged"] - before["barrier_logged"],
                "location_filtered": (
                    after["barrier_location_filtered"]
                    - before["barrier_location_filtered"]
                ),
            }
        finally:
            engine.close()
    finally:
        set_location_filter(True)
        reset_tracking()


@pytest.mark.parametrize("variant", ["location-filter-on", "location-filter-off"])
def test_multi_check_barrier(benchmark, variant):
    benchmark.group = "barrier-multi-check"
    benchmark.extra_info["variant"] = variant
    set_location_filter(variant == "location-filter-on")
    head, nodes = _build_chain()
    engine = DittoEngine(multi_watch)
    engine.run(head)
    try:
        benchmark.pedantic(
            _multi_cycle(nodes, engine, head),
            rounds=MULTI_ROUNDS,
            iterations=1,
            warmup_rounds=1,
        )
    finally:
        engine.close()
        set_location_filter(True)


def run_multi_check_benchmark(
    chain=MULTI_CHAIN, stores=MULTI_STORES, rounds=MULTI_ROUNDS
):
    sys.setrecursionlimit(200_000)
    filtered = _measure_multi(True, chain, stores, rounds)
    unfiltered = _measure_multi(False, chain, stores, rounds)
    return {
        "params": {"chain": chain, "stores": stores, "rounds": rounds},
        "filter_on": filtered,
        "filter_off": unfiltered,
        # Deterministic counter ratio: how many log appends the
        # per-location filter removes from the same store sequence.
        "logged_ratio": unfiltered["logged"] / max(filtered["logged"], 1),
    }


# Standalone emit/gate entry point (CI's BENCH_barrier.json). -----------------


def _measure_impl(impl_cls, list_size, ops, rounds):
    """Best-of-``rounds`` cycle seconds plus the deterministic per-cycle
    barrier append count (``WriteLog.logged``, i.e. pre-deduplication)."""
    reset_tracking()
    lst = impl_cls(range(list_size))
    engine = DittoEngine(shift_watch)
    try:
        engine.run(lst)
        cycle = _shift_cycle(lst, engine, ops)
        log = tracking_state().write_log
        logged_before = log.logged
        cycle()  # warmup; also the counted cycle
        appends = log.logged - logged_before
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            cycle()
            best = min(best, time.perf_counter() - started)
        return {"seconds": best, "appends": appends}
    finally:
        engine.close()
        reset_tracking()


def run_shift_benchmark(
    list_size=SHIFT_LIST_SIZE, ops=SHIFT_OPS, rounds=SHIFT_ROUNDS
):
    sys.setrecursionlimit(200_000)
    coalesced = _measure_impl(TrackedList, list_size, ops, rounds)
    legacy = _measure_impl(_PerSlotList, list_size, ops, rounds)
    return {
        "benchmark": "barrier-shift-heavy",
        "generated_by": "benchmarks/bench_barrier_overhead.py",
        "params": {
            "list_size": list_size,
            "shift_ops": ops,
            "rounds": rounds,
        },
        "coalesced": coalesced,
        "legacy_per_slot": legacy,
        "append_ratio": legacy["appends"] / coalesced["appends"],
        "speedup": legacy["seconds"] / coalesced["seconds"],
    }


#: Gate thresholds (see the module docstring).
MIN_APPEND_RATIO = 3.0
MIN_SPEEDUP = 1.0
BASELINE_RATIO_FRACTION = 0.8
#: Floor on the multi-check logged ratio: the per-location filter must
#: remove at least 4 of every 5 log appends from the rotated-flag-store
#: workload (the analytic value is ~MULTI_CHAIN, i.e. two orders higher).
MIN_MULTI_LOGGED_RATIO = 5.0


def check_against_baseline(result, baseline):
    """Return a list of failure messages (empty when the gate passes)."""
    failures = []
    if result["append_ratio"] < MIN_APPEND_RATIO:
        failures.append(
            f"append_ratio {result['append_ratio']:.2f} < hard floor "
            f"{MIN_APPEND_RATIO}"
        )
    if result["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"coalesced barrier is slower than per-slot "
            f"(speedup {result['speedup']:.2f} < {MIN_SPEEDUP})"
        )
    multi = result.get("multi_check")
    if multi is not None and multi["logged_ratio"] < MIN_MULTI_LOGGED_RATIO:
        failures.append(
            f"multi-check logged_ratio {multi['logged_ratio']:.2f} < hard "
            f"floor {MIN_MULTI_LOGGED_RATIO} (per-location filter eroded)"
        )
    if baseline is not None:
        floor = baseline["append_ratio"] * BASELINE_RATIO_FRACTION
        if result["append_ratio"] < floor:
            failures.append(
                f"append_ratio {result['append_ratio']:.2f} regressed >20% "
                f"vs baseline {baseline['append_ratio']:.2f}"
            )
        base_multi = baseline.get("multi_check")
        if multi is not None and base_multi is not None:
            floor = base_multi["logged_ratio"] * BASELINE_RATIO_FRACTION
            if multi["logged_ratio"] < floor:
                failures.append(
                    f"multi-check logged_ratio {multi['logged_ratio']:.2f} "
                    f"regressed >20% vs baseline "
                    f"{base_multi['logged_ratio']:.2f}"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--emit", metavar="PATH", help="write BENCH_barrier.json here"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="gate against a committed BENCH_barrier.json",
    )
    parser.add_argument("--list-size", type=int, default=SHIFT_LIST_SIZE)
    parser.add_argument("--ops", type=int, default=SHIFT_OPS)
    parser.add_argument("--rounds", type=int, default=SHIFT_ROUNDS)
    args = parser.parse_args(argv)

    result = run_shift_benchmark(args.list_size, args.ops, args.rounds)
    result["multi_check"] = run_multi_check_benchmark()
    print(
        f"barrier-shift-heavy: coalesced {result['coalesced']['appends']} "
        f"appends / {result['coalesced']['seconds'] * 1000:.1f}ms per cycle,"
        f" per-slot {result['legacy_per_slot']['appends']} appends / "
        f"{result['legacy_per_slot']['seconds'] * 1000:.1f}ms "
        f"(append_ratio {result['append_ratio']:.1f}x, "
        f"speedup {result['speedup']:.2f}x)"
    )
    multi = result["multi_check"]
    print(
        f"barrier-multi-check: filter on {multi['filter_on']['logged']} "
        f"logged / {multi['filter_on']['location_filtered']} filtered per "
        f"cycle, filter off {multi['filter_off']['logged']} logged "
        f"(logged_ratio {multi['logged_ratio']:.1f}x)"
    )
    if args.emit:
        with open(args.emit, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.emit}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_against_baseline(result, baseline)
        if failures:
            for failure in failures:
                print(f"GATE FAILURE: {failure}", file=sys.stderr)
            return 1
        print(f"gate passed vs {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
