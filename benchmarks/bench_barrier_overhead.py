"""§4 write-barrier cost: what tracked mutations cost the main program.

The paper's two barrier optimizations exist because "each memory address
caught by the barriers incurs a hash table lookup … even if the object at
that address is unrelated to any invariant checks".  Groups:

* ``plain-object``       — baseline: ordinary Python attribute stores;
* ``tracked-unmonitored``— TrackedObject stores on a field no check reads
  (filtered by the monitored-field set);
* ``tracked-no-deps``    — stores on a monitored field of an object with a
  zero reference count (filtered by the §4 refcount);
* ``tracked-logging``    — stores that pass both filters and reach the log
  (the worst case; the log deduplicates unread duplicates).
"""

from __future__ import annotations

import pytest

from repro import DittoEngine, TrackedObject, check, tracking_state

STORES = 20_000


class Plain:
    def __init__(self):
        self.value = 0
        self.other = 0


class Cell(TrackedObject):
    def __init__(self):
        self.value = 0
        self.other = 0


@check
def barrier_watch(c):
    if c is None:
        return True
    return c.value >= 0


def _store_loop(obj, field):
    def run():
        for i in range(STORES):
            setattr(obj, field, i)
    return run


@pytest.mark.parametrize(
    "variant",
    ["plain-object", "tracked-unmonitored", "tracked-no-deps",
     "tracked-logging"],
)
def test_barrier_overhead(benchmark, variant):
    benchmark.group = "barrier-overhead"
    benchmark.extra_info["variant"] = variant
    engine = None
    if variant == "plain-object":
        run = _store_loop(Plain(), "value")
    elif variant == "tracked-unmonitored":
        engine = DittoEngine(barrier_watch)
        run = _store_loop(Cell(), "other")  # 'other' is never read
    elif variant == "tracked-no-deps":
        engine = DittoEngine(barrier_watch)
        run = _store_loop(Cell(), "value")  # monitored, but refcount == 0
    else:  # tracked-logging
        engine = DittoEngine(barrier_watch)
        cell = Cell()
        engine.run(cell)  # the graph now depends on cell.value
        run = _store_loop(cell, "value")
    try:
        benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    finally:
        if engine is not None:
            engine.close()
        tracking_state().write_log  # keep symmetry; log cleans on consume
