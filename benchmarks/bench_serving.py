"""Serving-layer benchmark: 1000-tenant open-loop mixed load.

Drives :func:`repro.serving.traffic.run_traffic` — an open-loop
mutate/check stream over >=1000 isolated tenant engines, with a seeded
sprinkle of pathological tenants (poisoned checks, crawling checks) so
shedding, breakers, and deadlines all engage — and emits/gates the
``BENCH_serving.json`` perf-trajectory record:

    python benchmarks/bench_serving.py --emit BENCH_serving.json \
        --check benchmarks/BENCH_serving.json

Gate shape mirrors ``bench_barrier_overhead.py``: hard floors first
(>=1000 tenants, every submission answered, breakers tripped, deadlines
enforced, load shed — the robustness envelope must demonstrably engage),
then a >20% p99-latency regression check against the committed baseline.
The p99 here is dominated by queueing behind deliberately-slow tenants
(sleep-bound, so comparatively machine-stable), not by raw CPU speed.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serving import TrafficConfig, run_traffic

#: Acceptance floor: the bench must exercise a real multi-tenant load.
MIN_TENANTS = 1000
#: p99 may regress at most this factor vs the committed baseline.
MAX_P99_REGRESSION = 1.2


def check_against_baseline(result, baseline):
    """Return a list of failure messages (empty when the gate passes)."""
    failures = []
    if result["tenants"] < MIN_TENANTS:
        failures.append(
            f"tenants {result['tenants']} < hard floor {MIN_TENANTS}"
        )
    if result["checks_completed"] != result["checks_submitted"]:
        failures.append(
            f"silent drop: {result['checks_submitted']} submitted but "
            f"{result['checks_completed']} completed"
        )
    if result["breaker_trips"] < 1:
        failures.append("breaker_trips == 0 (breakers never engaged)")
    if result["deadline_hits"] < 1:
        failures.append("deadline_hits == 0 (deadlines never engaged)")
    if result["shed_rate"] <= 0:
        failures.append("shed_rate == 0 (bounded admission never engaged)")
    if baseline is not None:
        ceiling = baseline["p99_ms"] * MAX_P99_REGRESSION
        if result["p99_ms"] > ceiling:
            failures.append(
                f"p99 {result['p99_ms']:.2f}ms regressed >20% vs baseline "
                f"{baseline['p99_ms']:.2f}ms"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--emit", metavar="PATH", help="write BENCH_serving.json here"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="gate against a committed BENCH_serving.json",
    )
    parser.add_argument("--tenants", type=int, default=None)
    parser.add_argument("--checks", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    overrides = {"seed": args.seed}
    if args.tenants is not None:
        overrides["tenants"] = args.tenants
    if args.checks is not None:
        overrides["checks"] = args.checks
    result = run_traffic(TrafficConfig(**overrides))
    print(
        f"serving: {result['tenants']} tenants, "
        f"{result['checks_completed']} checks in "
        f"{result['serve_seconds']:.2f}s — p50 {result['p50_ms']:.2f}ms, "
        f"p99 {result['p99_ms']:.2f}ms, shed {result['shed_rate']:.1%}, "
        f"{result['breaker_trips']} breaker trip(s), "
        f"{result['deadline_hits']} deadline hit(s)"
    )
    if args.emit:
        with open(args.emit, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.emit}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_against_baseline(result, baseline)
        if failures:
            for failure in failures:
                print(f"GATE FAILURE: {failure}", file=sys.stderr)
            return 1
        print(f"gate passed vs {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
