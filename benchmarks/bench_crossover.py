"""§5.1.1 crossover table: at the paper's reported crossover sizes
(ordered list 250, hash table 100, red-black tree 200) and above, the
incrementalized check should beat the full check within each group.

Compare the ``full`` and ``ditto`` rows inside each
``crossover-<workload>-<size>`` group of the benchmark output; regenerate
the search-based table with ``python -m repro.bench crossover``.
"""

from __future__ import annotations

import pytest

#: (workload, paper crossover size)
PAPER_CROSSOVERS = (
    ("ordered_list", 250),
    ("hash_table", 100),
    ("red_black_tree", 200),
)
MODS_PER_ROUND = 40


@pytest.mark.parametrize("workload,size", PAPER_CROSSOVERS)
@pytest.mark.parametrize("mode", ["full", "ditto"])
def test_crossover_at_paper_size(benchmark, cycle_factory, workload, size,
                                 mode):
    benchmark.group = f"crossover-{workload}-{size}"
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["paper_crossover"] = size
    benchmark.extra_info["mode"] = mode
    cycle = cycle_factory(workload, size, mode, MODS_PER_ROUND)
    benchmark.pedantic(cycle, rounds=3, iterations=1, warmup_rounds=1)
