"""§5.1.1 crossover table: at the paper's reported crossover sizes
(ordered list 250, hash table 100, red-black tree 200) and above, the
incrementalized check should beat the full check within each group.

Compare the ``full`` and ``ditto`` rows inside each
``crossover-<workload>-<size>`` group of the benchmark output; regenerate
the search-based table with ``python -m repro.bench crossover``.

Run this module as a script to emit/gate the ``BENCH_crossover.json``
perf-trajectory record for the specialization tier:

    python benchmarks/bench_crossover.py --emit BENCH_crossover.json \
        --check benchmarks/BENCH_crossover.json

The standalone bench walks a fixed geometric size ladder per workload and
times, at every rung, the full recursive check plus the DITTO check under
both tiers (``specialize="on"`` and ``specialize="off"``), best of
``--repeats``.  The *full* timings are measured once per rung and shared
by both tiers, so tier-vs-tier comparisons never see two different noise
draws of the same baseline.  A tier's crossover is suffix-win: the
smallest rung from which the tier beats the full check at that rung *and
every larger one* (a single noisy mid-ladder win cannot fake a
crossover), log-log interpolated between the last losing and first
winning rung so the estimate moves continuously instead of in 1.5x rung
jumps.  A tier that never wins is *censored*: its crossover clamps to
the ladder maximum and carries ``censored: true`` — a lower bound, which
makes the gate's ratio floor conservative.

The gate fails when the specialization win erodes: on each gated
workload the specialized tier's crossover must be finite (not censored),
the interpreted/specialized crossover ratio must stay at least 3x, the
ratio must keep at least 80% of the committed baseline's (the barrier
gate's >20%-regression rule; only compared when neither run's
interpreted side is censored — a clamped ratio is a bound, not a
measurement), and the specialized crossover must stay within 2x of the
baseline's (a rung-aware backstop: estimates jitter by one 1.33–1.5x
ladder rung, so 2x is a sustained regression).  Wall-clock rung timings
are recorded for trajectory plots but not gated (machine-dependent);
they live in a list, which the ``repro.obs analyze`` drift net
deliberately does not recurse into.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

import pytest

from repro.bench.runner import measure_modes

#: (workload, paper crossover size)
PAPER_CROSSOVERS = (
    ("ordered_list", 250),
    ("hash_table", 100),
    ("red_black_tree", 200),
)
MODS_PER_ROUND = 40


@pytest.mark.parametrize("workload,size", PAPER_CROSSOVERS)
@pytest.mark.parametrize("mode", ["full", "ditto"])
def test_crossover_at_paper_size(benchmark, cycle_factory, workload, size,
                                 mode):
    benchmark.group = f"crossover-{workload}-{size}"
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["paper_crossover"] = size
    benchmark.extra_info["mode"] = mode
    cycle = cycle_factory(workload, size, mode, MODS_PER_ROUND)
    benchmark.pedantic(cycle, rounds=3, iterations=1, warmup_rounds=1)


# Standalone emit/gate entry point (CI's BENCH_crossover.json). ---------------

#: Geometric size ladder (~1.33–1.5x rungs).  The top rung doubles as the
#: censoring clamp for tiers that never cross.
LADDER = (8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768,
          1024, 1536, 2048, 3072)
#: Mutations per measurement, per workload — tuned so the crossover sits
#: in the regime the paper measures (§5.1): enough repairs that the
#: incremental check can win, few enough that the graph build (where the
#: tiers differ most) still matters.
CROSSOVER_WORKLOADS = {
    "ordered_list": 44,
    "hash_table": 32,
    "red_black_tree": 64,
}
REPEATS = 5
SEED = 0xD1770
#: Engine tier settings compared at every rung.
TIERS = {"specialized": "on", "interpreted": "off"}


def _best_seconds(workload, size, mods, mode, repeats, engine_options=None):
    return min(
        measure_modes(
            workload, size, mods, (mode,), SEED,
            engine_options=engine_options,
        )[mode].seconds
        for _ in range(repeats)
    )


def measure_ladder(workload, mods, ladder=LADDER, repeats=REPEATS):
    """One row per rung: shared full-check seconds plus both tiers."""
    rows = []
    for size in ladder:
        row = {
            "size": size,
            "full_s": _best_seconds(workload, size, mods, "full", repeats),
        }
        for tier, setting in TIERS.items():
            row[f"{tier}_s"] = _best_seconds(
                workload, size, mods, "ditto", repeats,
                engine_options={"specialize": setting},
            )
        rows.append(row)
    return rows


def _interpolate(s_lose, d_lose, s_win, d_win):
    """Log-log interpolation of the deficit curve d(s) = tier/full to the
    d == 1 crossing between the last losing and first winning rung."""
    num = math.log(d_lose)
    den = math.log(d_lose) - math.log(d_win)
    frac = num / den if den > 0 else 1.0
    return math.exp(
        math.log(s_lose) + frac * (math.log(s_win) - math.log(s_lose))
    )


def tier_crossover(rows, tier):
    """Suffix-win crossover of one tier over a measured ladder."""
    key = f"{tier}_s"
    win_idx = None
    for i in range(len(rows) - 1, -1, -1):
        if rows[i][key] < rows[i]["full_s"]:
            win_idx = i
        else:
            break
    if win_idx is None:
        return {"crossover": rows[-1]["size"], "censored": True}
    win = rows[win_idx]
    if win_idx == 0:
        return {"crossover": win["size"], "censored": False,
                "win_rung": win["size"]}
    lose = rows[win_idx - 1]
    estimate = _interpolate(
        lose["size"], lose[key] / lose["full_s"],
        win["size"], win[key] / win["full_s"],
    )
    return {"crossover": int(round(estimate)), "censored": False,
            "win_rung": win["size"]}


def run_crossover_benchmark(workloads=None, ladder=LADDER, repeats=REPEATS):
    workloads = dict(workloads or CROSSOVER_WORKLOADS)
    result = {
        "benchmark": "specialization-crossover",
        "generated_by": "benchmarks/bench_crossover.py",
        "params": {
            "ladder": list(ladder),
            "repeats": repeats,
            "seed": SEED,
        },
        "workloads": {},
    }
    for name in sorted(workloads):
        mods = workloads[name]
        rows = measure_ladder(name, mods, ladder, repeats)
        spec = tier_crossover(rows, "specialized")
        interp = tier_crossover(rows, "interpreted")
        result["workloads"][name] = {
            "mods": mods,
            "ladder": rows,
            "specialized": spec,
            "interpreted": interp,
            "crossover_ratio": interp["crossover"] / spec["crossover"],
        }
    return result


#: Gate thresholds (see the module docstring).
MIN_CROSSOVER_RATIO = 3.0
GATED_WORKLOADS = ("ordered_list", "hash_table", "red_black_tree")
#: Backstop on the specialized crossover vs the committed baseline.  A
#: crossover estimate jitters by up to one ladder rung (1.33–1.5x) run to
#: run even with best-of-5 timings; 2x means a sustained multi-rung
#: regression, not noise.
MAX_SPEC_GROWTH = 2.0
#: Baselines smaller than this are floored before the 2x comparison: at
#: the bottom of the ladder one rung of jitter exceeds any multiplicative
#: tolerance (a crossover of 41 vs 99 is two rungs, not a 2.4x slowdown).
MIN_SPEC_FLOOR = 64
#: Same >20%-regression fraction as the barrier gate's append_ratio
#: check, applied to the headline interpreted/specialized crossover
#: ratio (skipped when either run's interpreted side is censored: a
#: clamped ratio is a lower bound, not a comparable measurement).
BASELINE_RATIO_FRACTION = 0.8


def check_against_baseline(result, baseline):
    """Return a list of failure messages (empty when the gate passes)."""
    failures = []
    for name in GATED_WORKLOADS:
        wl = result["workloads"].get(name)
        if wl is None:
            failures.append(f"{name}: missing from the bench result")
            continue
        spec, interp = wl["specialized"], wl["interpreted"]
        if spec["censored"]:
            failures.append(
                f"{name}: specialized tier never crossed below "
                f"size {spec['crossover']}"
            )
        ratio = wl["crossover_ratio"]
        if ratio < MIN_CROSSOVER_RATIO:
            failures.append(
                f"{name}: crossover ratio {ratio:.2f} < hard floor "
                f"{MIN_CROSSOVER_RATIO}"
            )
        if baseline is None:
            continue
        base_wl = (baseline.get("workloads") or {}).get(name)
        if base_wl is None:
            continue
        base_spec = base_wl["specialized"]
        if not spec["censored"] and not base_spec["censored"]:
            limit = (
                max(base_spec["crossover"], MIN_SPEC_FLOOR)
                * MAX_SPEC_GROWTH
            )
            if spec["crossover"] > limit:
                failures.append(
                    f"{name}: specialized crossover {spec['crossover']} "
                    f"regressed >20% vs baseline {base_spec['crossover']}"
                )
        if not interp["censored"] and not base_wl["interpreted"]["censored"]:
            floor = base_wl["crossover_ratio"] * BASELINE_RATIO_FRACTION
            if ratio < floor:
                failures.append(
                    f"{name}: crossover ratio {ratio:.2f} regressed >20% "
                    f"vs baseline {base_wl['crossover_ratio']:.2f}"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--emit", metavar="PATH", help="write BENCH_crossover.json here"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="gate against a committed BENCH_crossover.json",
    )
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument(
        "--workload", action="append", metavar="NAME=MODS", default=None,
        help="override the measured workloads (repeatable)",
    )
    args = parser.parse_args(argv)

    workloads = None
    if args.workload:
        workloads = {}
        for spec in args.workload:
            name, _, mods = spec.partition("=")
            workloads[name] = int(mods) if mods else CROSSOVER_WORKLOADS[name]

    result = run_crossover_benchmark(workloads, repeats=args.repeats)
    for name, wl in sorted(result["workloads"].items()):
        spec, interp = wl["specialized"], wl["interpreted"]
        print(
            f"{name}: specialized crossover {spec['crossover']}"
            f"{' (censored)' if spec['censored'] else ''}, interpreted "
            f"{interp['crossover']}"
            f"{' (censored)' if interp['censored'] else ''} "
            f"-> ratio {wl['crossover_ratio']:.2f}x (mods={wl['mods']})"
        )
    if args.emit:
        with open(args.emit, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.emit}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_against_baseline(result, baseline)
        if failures:
            for failure in failures:
                print(f"GATE FAILURE: {failure}", file=sys.stderr)
            return 1
        print(f"gate passed vs {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
