"""Extension benchmarks: the non-paper structures (AVL tree, binary heap,
skip list, doubly-linked list) under the same full-vs-DITTO protocol,
checking that the paper's result generalizes beyond its three benchmarks.
"""

from __future__ import annotations

import pytest

WORKLOADS = (
    "avl_tree", "binary_heap", "btree", "rope", "skip_list",
    "doubly_linked_list",
)
SIZE = 400
MODS_PER_ROUND = 20


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("mode", ["full", "ditto"])
def test_extension_structures(benchmark, cycle_factory, workload, mode):
    benchmark.group = f"ext-{workload}-{SIZE}"
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["mode"] = mode
    cycle = cycle_factory(workload, SIZE, mode, MODS_PER_ROUND)
    benchmark.pedantic(cycle, rounds=2, iterations=1, warmup_rounds=1)
