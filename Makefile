PYTHON ?= python

.PHONY: install test bench reproduce quick-reproduce examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

## Regenerate every table and figure from the paper (see EXPERIMENTS.md).
reproduce:
	$(PYTHON) -m repro.bench all --json bench_results.json

quick-reproduce:
	$(PYTHON) -m repro.bench all --quick --json bench_results.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/red_black_debugging.py
	$(PYTHON) examples/netcols_game.py 100
	$(PYTHON) examples/jso_obfuscate.py 60
	$(PYTHON) examples/data_breakpoints.py
	$(PYTHON) examples/iterative_to_recursive.py
	$(PYTHON) examples/graph_inspection.py

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
