"""Memo-key semantics (paper §4 "Hashing of objects"): semantic equality
for primitives, pointer identity for heap objects."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import ArgsKey, TrackedObject
from repro.core.argkeys import is_primitive


class Box(TrackedObject):
    def __init__(self, value):
        self.value = value


class TestIsPrimitive:
    @pytest.mark.parametrize(
        "value",
        [0, 1, -5, 3.25, True, False, None, "abc", b"xy", 1 + 2j,
         frozenset({1}), (), (1, "a", None), ((1, 2), (3,))],
    )
    def test_primitives(self, value):
        assert is_primitive(value)

    @pytest.mark.parametrize(
        "value", [[], {}, set(), object(), Box(1), ([1],), (1, [2])]
    )
    def test_non_primitives(self, value):
        assert not is_primitive(value)


class TestArgsKeyEquality:
    def test_equal_primitive_tuples(self):
        assert ArgsKey((1, "a")) == ArgsKey((1, "a"))
        assert hash(ArgsKey((1, "a"))) == hash(ArgsKey((1, "a")))

    def test_semantically_equal_objects_differ(self):
        a, b = Box(1), Box(1)
        assert ArgsKey((a,)) != ArgsKey((b,))

    def test_same_object_identity(self):
        a = Box(1)
        assert ArgsKey((a,)) == ArgsKey((a,))
        assert hash(ArgsKey((a,))) == hash(ArgsKey((a,)))

    def test_type_distinctions(self):
        # 1, 1.0 and True are == in Python but must not share a node.
        assert ArgsKey((1,)) != ArgsKey((1.0,))
        assert ArgsKey((1,)) != ArgsKey((True,))
        assert ArgsKey((0,)) != ArgsKey((False,))

    def test_arity_distinguishes(self):
        assert ArgsKey((1,)) != ArgsKey((1, 1))

    def test_mixed_object_and_primitive(self):
        a = Box(1)
        assert ArgsKey((a, 3)) == ArgsKey((a, 3))
        assert ArgsKey((a, 3)) != ArgsKey((a, 4))

    def test_none_is_semantic(self):
        assert ArgsKey((None,)) == ArgsKey((None,))

    def test_not_equal_to_other_types(self):
        assert ArgsKey((1,)) != (1,)
        assert (ArgsKey((1,)) == (1,)) is False

    def test_repr(self):
        assert "ArgsKey" in repr(ArgsKey((1,)))


class TestArgsKeyHypothesis:
    @given(st.tuples(st.integers(), st.text(), st.booleans()))
    def test_reflexive(self, args):
        assert ArgsKey(args) == ArgsKey(args)
        assert hash(ArgsKey(args)) == hash(ArgsKey(args))

    @given(
        st.lists(st.one_of(st.integers(), st.text(), st.none()), max_size=4),
        st.lists(st.one_of(st.integers(), st.text(), st.none()), max_size=4),
    )
    def test_eq_implies_hash_eq(self, a, b):
        ka, kb = ArgsKey(tuple(a)), ArgsKey(tuple(b))
        if ka == kb:
            assert hash(ka) == hash(kb)
            assert tuple(a) == tuple(b)

    @given(st.integers())
    def test_usable_as_dict_key(self, n):
        table = {ArgsKey((n,)): "x"}
        assert table[ArgsKey((n,))] == "x"
