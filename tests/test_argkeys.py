"""Memo-key semantics (paper §4 "Hashing of objects"): semantic equality
for primitives, pointer identity for heap objects."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro import ArgsKey, TrackedObject, check
from repro.core.argkeys import is_primitive


class Box(TrackedObject):
    def __init__(self, value):
        self.value = value


class TestIsPrimitive:
    @pytest.mark.parametrize(
        "value",
        [0, 1, -5, 3.25, True, False, None, "abc", b"xy", 1 + 2j,
         frozenset({1}), (), (1, "a", None), ((1, 2), (3,))],
    )
    def test_primitives(self, value):
        assert is_primitive(value)

    @pytest.mark.parametrize(
        "value", [[], {}, set(), object(), Box(1), ([1],), (1, [2])]
    )
    def test_non_primitives(self, value):
        assert not is_primitive(value)


class TestArgsKeyEquality:
    def test_equal_primitive_tuples(self):
        assert ArgsKey((1, "a")) == ArgsKey((1, "a"))
        assert hash(ArgsKey((1, "a"))) == hash(ArgsKey((1, "a")))

    def test_semantically_equal_objects_differ(self):
        a, b = Box(1), Box(1)
        assert ArgsKey((a,)) != ArgsKey((b,))

    def test_same_object_identity(self):
        a = Box(1)
        assert ArgsKey((a,)) == ArgsKey((a,))
        assert hash(ArgsKey((a,))) == hash(ArgsKey((a,)))

    def test_type_distinctions(self):
        # 1, 1.0 and True are == in Python but must not share a node.
        assert ArgsKey((1,)) != ArgsKey((1.0,))
        assert ArgsKey((1,)) != ArgsKey((True,))
        assert ArgsKey((0,)) != ArgsKey((False,))

    def test_arity_distinguishes(self):
        assert ArgsKey((1,)) != ArgsKey((1, 1))

    def test_mixed_object_and_primitive(self):
        a = Box(1)
        assert ArgsKey((a, 3)) == ArgsKey((a, 3))
        assert ArgsKey((a, 3)) != ArgsKey((a, 4))

    def test_none_is_semantic(self):
        assert ArgsKey((None,)) == ArgsKey((None,))

    def test_not_equal_to_other_types(self):
        assert ArgsKey((1,)) != (1,)
        assert (ArgsKey((1,)) == (1,)) is False

    def test_repr(self):
        assert "ArgsKey" in repr(ArgsKey((1,)))


class TestArgsKeyHypothesis:
    @given(st.tuples(st.integers(), st.text(), st.booleans()))
    def test_reflexive(self, args):
        assert ArgsKey(args) == ArgsKey(args)
        assert hash(ArgsKey(args)) == hash(ArgsKey(args))

    @given(
        st.lists(st.one_of(st.integers(), st.text(), st.none()), max_size=4),
        st.lists(st.one_of(st.integers(), st.text(), st.none()), max_size=4),
    )
    def test_eq_implies_hash_eq(self, a, b):
        ka, kb = ArgsKey(tuple(a)), ArgsKey(tuple(b))
        if ka == kb:
            assert hash(ka) == hash(kb)
            assert tuple(a) == tuple(b)

    @given(st.integers())
    def test_usable_as_dict_key(self, n):
        table = {ArgsKey((n,)): "x"}
        assert table[ArgsKey((n,))] == "x"


class TestHashCollisions:
    """Keys whose *hashes* collide must still compare unequal — the memo
    table then probes past the collision instead of aliasing two
    invocations onto one node."""

    def test_minus_one_minus_two(self):
        # CPython quirk: hash(-1) == hash(-2) == -2.
        ka, kb = ArgsKey((-1,)), ArgsKey((-2,))
        assert hash(-1) == hash(-2)  # the premise of the test
        assert ka != kb
        table = {ka: "a", kb: "b"}
        assert table[ArgsKey((-1,))] == "a"
        assert table[ArgsKey((-2,))] == "b"

    def test_numeric_tower_collides_but_never_aliases(self):
        # hash(True) == hash(1) == hash(1.0), yet each type gets its own
        # invocation (the engine's type-strict semantic equality).
        keys = [ArgsKey((True,)), ArgsKey((1,)), ArgsKey((1.0,))]
        assert hash(True) == hash(1) == hash(1.0)
        table = {k: i for i, k in enumerate(keys)}
        assert len(table) == 3
        assert table[ArgsKey((True,))] == 0
        assert table[ArgsKey((1,))] == 1
        assert table[ArgsKey((1.0,))] == 2

    def test_zero_tower(self):
        table = {ArgsKey((0,)): "int", ArgsKey((False,)): "bool",
                 ArgsKey((0.0,)): "float"}
        assert len(table) == 3
        assert table[ArgsKey((False,))] == "bool"

    def test_nested_tuple_collision(self):
        # Same-hash, different-type leaves inside primitive tuples.
        ka, kb = ArgsKey(((1, -1),)), ArgsKey(((1.0, -2),))
        assert ka != kb
        assert {ka: 1, kb: 2}[ArgsKey(((1, -1),))] == 1


class TestMutableArguments:
    """Heap objects key by identity: equal contents never alias, and
    mutation never migrates an invocation to a different node."""

    def test_equal_content_lists_do_not_alias(self):
        a, b = [1, 2, 3], [1, 2, 3]
        ka, kb = ArgsKey((a,)), ArgsKey((b,))
        assert a == b and ka != kb
        table = {ka: "a", kb: "b"}
        assert table[ArgsKey((a,))] == "a"
        assert table[ArgsKey((b,))] == "b"

    def test_mutation_does_not_change_key(self):
        # The classic mutable-default-argument trap: the same list object
        # reused across calls is the *same* invocation even after it has
        # been mutated in place (id-based hashing is mutation-stable).
        shared = []
        key_before = ArgsKey((shared,))
        table = {key_before: "node"}
        shared.append(42)
        assert ArgsKey((shared,)) == key_before
        assert hash(ArgsKey((shared,))) == hash(key_before)
        assert table[ArgsKey((shared,))] == "node"

    def test_equal_content_dicts_and_boxes(self):
        d1, d2 = {"k": 1}, {"k": 1}
        assert ArgsKey((d1,)) != ArgsKey((d2,))
        b1, b2 = Box(7), Box(7)
        table = {ArgsKey((b1,)): 1, ArgsKey((b2,)): 2}
        assert len(table) == 2

    def test_key_keeps_argument_alive(self):
        # Strong reference: the id() in the key can never be recycled by
        # a newly allocated object while the memo entry lives.
        key = ArgsKey(([1, 2],))
        assert key.args[0] == [1, 2]
        churn = [[i] for i in range(1000)]  # allocation pressure
        del churn
        assert ArgsKey((key.args[0],)) == key

    def test_mixed_identity_and_collision(self):
        box = Box(0)
        ka, kb = ArgsKey((box, -1)), ArgsKey((box, -2))
        assert ka != kb
        assert {ka: "a", kb: "b"}[ArgsKey((box, -2))] == "b"


class TestFloatEdges:
    """The IEEE-754 edge cases of float-keyed invocations.

    ``0.0 == -0.0`` yet ``1/0.0 != 1/-0.0``: sharing a memo node between
    the two zeros serves one sign's result for the other.  ``nan != nan``
    (even to itself) means value-equality keys can never memo-hit a NaN
    invocation, leaking one fresh node per run.  Keys therefore encode the
    sign bit of zeros and fall back to identity for NaN."""

    def test_signed_zeros_do_not_alias(self):
        ka, kb = ArgsKey((0.0,)), ArgsKey((-0.0,))
        assert 0.0 == -0.0  # the premise: Python equality conflates them
        assert ka != kb
        table = {ka: "pos", kb: "neg"}
        assert len(table) == 2
        assert table[ArgsKey((0.0,))] == "pos"
        assert table[ArgsKey((-0.0,))] == "neg"

    def test_signed_zeros_nested_in_tuples(self):
        assert ArgsKey(((0.0, 1),)) != ArgsKey(((-0.0, 1),))
        assert ArgsKey((complex(0.0, 0.0),)) == ArgsKey((complex(0.0, 0.0),))

    def test_nonzero_floats_stay_semantic(self):
        assert ArgsKey((1.5,)) == ArgsKey((1.5,))
        assert hash(ArgsKey((1.5,))) == hash(ArgsKey((1.5,)))
        assert ArgsKey((0.0,)) == ArgsKey((0.0,))
        assert ArgsKey((-0.0,)) == ArgsKey((-0.0,))

    def test_same_nan_object_memo_hits(self):
        nan = float("nan")
        ka, kb = ArgsKey((nan,)), ArgsKey((nan,))
        assert nan != nan  # the premise: value equality can never hit
        assert ka == kb
        assert hash(ka) == hash(kb)
        assert {ka: "node"}[kb] == "node"

    def test_distinct_nan_objects_do_not_alias(self):
        # Different NaN payload/object: identity semantics, like heap args.
        a, b = float("nan"), float("nan")
        assert a is not b
        assert ArgsKey((a,)) != ArgsKey((b,))

    def test_float_subclass_zero_keeps_type_tag(self):
        class MyFloat(float):
            pass

        assert ArgsKey((MyFloat(0.0),)) != ArgsKey((0.0,))
        assert ArgsKey((MyFloat(0.0),)) == ArgsKey((MyFloat(0.0),))


class TestFloatEdgesEngine:
    """End-to-end regressions: the unsound aliasing observable through a
    real engine (stale result for the other zero; NaN node leak)."""

    def test_negative_zero_not_served_stale_result(self, engine_factory):
        @check
        def renders_negative(x):
            return str(x) == "-0.0"

        engine = engine_factory(renders_negative)
        # Pinned differential corpus entry: scratch execution of the
        # uninstrumented check is ground truth at every step.
        assert engine.run(0.0) is renders_negative.original(0.0) is False
        # Before the sign-bit fix this reused the 0.0 node: False.
        assert engine.run(-0.0) is renders_negative.original(-0.0) is True

    def test_nan_reruns_do_not_leak_nodes(self, engine_factory):
        @check
        def self_equal(x):
            return x == x

        nan = float("nan")
        engine = engine_factory(self_equal)
        assert engine.run(nan) is False
        size = engine.graph_size
        created = engine.stats.nodes_created
        for _ in range(5):
            assert engine.run(nan) is False
        # Before the identity fix every rerun missed the memo probe and
        # minted a fresh root node.
        assert engine.graph_size == size
        assert engine.stats.nodes_created == created
