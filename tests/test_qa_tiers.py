"""Cross-tier differential corpus: the specialization tier must be
bit-identical to the interpreter tier.

The oracle replays fixed-seed traces with both tiers of the optimistic
engine side by side (``ditto-specialized`` vs ``ditto-interpreted``),
plus scratch ground truth.  Beyond agreeing with scratch, the two tiers
must agree with *each other* in every integer engine counter — same
steps, same implicit reads, same nodes created, same reuses — because the
specialized closures claim to inline, not alter, the interpreter tier's
semantics.  Any counter drift is a tier bug even when the return values
happen to match.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.qa.generator import TraceGenerator
from repro.qa.models import MODELS
from repro.qa.oracle import Oracle

TIER_MODES = ("scratch", "ditto-specialized", "ditto-interpreted")

#: Counters that must never drift between tiers.  (Timing fields are
#: wall-clock and excluded by the oracle snapshot already; this pins the
#: exact comparison surface so a future counter with legitimate tier
#: variance can be carved out explicitly.)
COMPARED = None  # None = every int counter the snapshot captured


def _tier_stats(report):
    spec = report.engine_stats["ditto-specialized"]
    interp = report.engine_stats["ditto-interpreted"]
    keys = COMPARED or sorted(set(spec) | set(interp))
    return {k: spec.get(k) for k in keys}, {k: interp.get(k) for k in keys}


@pytest.mark.parametrize("structure", sorted(MODELS))
def test_tiers_agree_on_fixed_seed_corpus(structure):
    trace = TraceGenerator(structure, seed=421, op_count=120).generate()
    report = Oracle(structure, modes=TIER_MODES).run(trace)
    assert report.ok, [str(d) for d in report.divergences]
    assert report.checks_run > 0
    spec, interp = _tier_stats(report)
    assert spec == interp


@pytest.mark.parametrize("structure", ["ordered_list", "red_black_tree",
                                       "hash_table"])
def test_tiers_agree_with_naive_present(structure):
    # A four-way replay (both ditto tiers + naive) over a second seed:
    # the naive engine exercises the replay path of memoized calls.
    modes = TIER_MODES + ("naive",)
    trace = TraceGenerator(structure, seed=77, op_count=90).generate()
    report = Oracle(structure, modes=modes).run(trace)
    assert report.ok, [str(d) for d in report.divergences]
    spec, interp = _tier_stats(report)
    assert spec == interp


def test_invalid_tier_mode_rejected():
    with pytest.raises(ValueError):
        Oracle("ordered_list", modes=("scratch", "ditto-jitted"))
    with pytest.raises(ValueError):
        Oracle("ordered_list", modes=("scratch-specialized", "ditto"))


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    structure=st.sampled_from(["ordered_list", "binary_heap", "skip_list"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_any_trace_identical_across_tiers(structure, seed):
    """Property: whatever trace the generator produces, both tiers return
    identical results, raise identical exceptions, and do identical
    counted work."""
    trace = TraceGenerator(structure, seed=seed, op_count=40).generate()
    report = Oracle(structure, modes=TIER_MODES).run(trace)
    assert report.ok, [str(d) for d in report.divergences]
    spec, interp = _tier_stats(report)
    assert spec == interp
