"""MemoTable: entry lookup, reverse map, refcounts, edges, pruning."""

from __future__ import annotations

from repro import ArgsKey, TrackedObject, check
from repro.core import MemoTable
from repro.core.locations import FieldLocation


class Node(TrackedObject):
    def __init__(self, value=0):
        self.value = value


@check
def some_check(n):
    return True


@check
def other_check(n):
    return True


def _node(table, func, *args):
    node, _ = table.get_or_create(func, ArgsKey(args))
    return node


class TestLookup:
    def test_get_or_create_roundtrip(self):
        table = MemoTable()
        n = Node()
        node, created = table.get_or_create(some_check, ArgsKey((n,)))
        assert created
        again, created2 = table.get_or_create(some_check, ArgsKey((n,)))
        assert again is node and not created2
        assert table.lookup(some_check, ArgsKey((n,))) is node
        assert len(table) == 1

    def test_functions_disambiguate(self):
        table = MemoTable()
        n = Node()
        a = _node(table, some_check, n)
        b = _node(table, other_check, n)
        assert a is not b
        assert len(table) == 2

    def test_lookup_missing(self):
        table = MemoTable()
        assert table.lookup(some_check, ArgsKey((1,))) is None


class TestImplicits:
    def test_record_updates_reverse_map_and_refcount(self):
        table = MemoTable()
        heap = Node()
        node = _node(table, some_check, 1)
        loc = FieldLocation(heap, "value")
        table.record_implicit(node, loc)
        assert heap._ditto_refcount == 1
        assert table.nodes_reading(loc) == {node}
        # Recording the same location twice is idempotent.
        table.record_implicit(node, loc)
        assert heap._ditto_refcount == 1

    def test_clear_implicits_releases(self):
        table = MemoTable()
        heap = Node()
        node = _node(table, some_check, 1)
        loc = FieldLocation(heap, "value")
        table.record_implicit(node, loc)
        table.clear_implicits(node)
        assert heap._ditto_refcount == 0
        assert table.nodes_reading(loc) == set()
        assert table.reverse_map_size() == 0

    def test_two_nodes_one_location(self):
        table = MemoTable()
        heap = Node()
        a = _node(table, some_check, 1)
        b = _node(table, some_check, 2)
        loc = FieldLocation(heap, "value")
        table.record_implicit(a, loc)
        table.record_implicit(b, loc)
        assert heap._ditto_refcount == 2
        assert table.nodes_reading(loc) == {a, b}
        table.clear_implicits(a)
        assert table.nodes_reading(loc) == {b}
        assert heap._ditto_refcount == 1

    def test_map_locations_to_nodes(self):
        table = MemoTable()
        h1, h2 = Node(), Node()
        a = _node(table, some_check, 1)
        b = _node(table, some_check, 2)
        l1 = FieldLocation(h1, "value")
        l2 = FieldLocation(h2, "value")
        table.record_implicit(a, l1)
        table.record_implicit(b, l2)
        assert table.map_locations_to_nodes([l1]) == {a}
        assert table.map_locations_to_nodes([l1, l2]) == {a, b}
        assert table.map_locations_to_nodes([FieldLocation(h1, "other")]) == set()


class TestEdges:
    def test_add_remove_edge_counts(self):
        table = MemoTable()
        parent = _node(table, some_check, 1)
        child = _node(table, some_check, 2)
        table.add_edge(parent, child)
        table.add_edge(parent, child)
        assert child.caller_count() == 2
        assert parent.calls == [child, child]
        table.remove_edge(parent, child)
        assert child.caller_count() == 1
        table.remove_edge(parent, child)
        assert child.caller_count() == 0
        assert parent not in child.callers

    def test_depth_propagates_min(self):
        table = MemoTable()
        a = _node(table, some_check, 1)
        b = _node(table, some_check, 2)
        c = _node(table, some_check, 3)
        a.depth = 1
        table.add_edge(a, b)
        assert b.depth == 2
        b.depth = 5
        table.add_edge(a, c)
        table.add_edge(c, b)  # c at depth 2, so b min-updates to 3
        assert b.depth == 3


class TestPrune:
    def _chain(self, table, length):
        nodes = [_node(table, some_check, i) for i in range(length)]
        for parent, child in zip(nodes, nodes[1:]):
            table.add_edge(parent, child)
        return nodes

    def test_prune_chain(self):
        table = MemoTable()
        heap = Node()
        nodes = self._chain(table, 4)
        table.record_implicit(nodes[-1], FieldLocation(heap, "value"))
        removed = table.prune(nodes[0])
        assert set(removed) == set(nodes)
        assert len(table) == 0
        assert heap._ditto_refcount == 0
        assert table.reverse_map_size() == 0

    def test_prune_stops_at_shared_child(self):
        table = MemoTable()
        nodes = self._chain(table, 3)
        keeper = _node(table, other_check, 0)
        table.add_edge(keeper, nodes[2])
        removed = table.prune(nodes[0])
        assert nodes[2] not in removed
        assert table.contains(nodes[2])
        assert len(table) == 2  # keeper + shared child

    def test_prune_idempotent(self):
        table = MemoTable()
        node = _node(table, some_check, 1)
        table.prune(node)
        assert table.prune(node) == []

    def test_clear_releases_everything(self):
        table = MemoTable()
        heap = Node()
        nodes = self._chain(table, 3)
        table.record_implicit(nodes[1], FieldLocation(heap, "value"))
        removed = table.clear()
        assert set(removed) == set(nodes)
        assert heap._ditto_refcount == 0
        assert len(table) == 0


class TestSnapshot:
    def test_snapshot_maps_names_to_values(self):
        table = MemoTable()
        node = _node(table, some_check, 7)
        node.return_val = True
        snap = table.snapshot()
        assert snap == {("some_check", (7,)): True}
