"""MemoTable: entry lookup, reverse map, refcounts, edges, pruning."""

from __future__ import annotations

from repro import ArgsKey, TrackedArray, TrackedObject, check
from repro.core import MemoTable
from repro.core.locations import FieldLocation, RangeLocation
from repro.core.memo_table import _merge_intervals


class Node(TrackedObject):
    def __init__(self, value=0):
        self.value = value


@check
def some_check(n):
    return True


@check
def other_check(n):
    return True


def _node(table, func, *args):
    node, _ = table.get_or_create(func, ArgsKey(args))
    return node


class TestLookup:
    def test_get_or_create_roundtrip(self):
        table = MemoTable()
        n = Node()
        node, created = table.get_or_create(some_check, ArgsKey((n,)))
        assert created
        again, created2 = table.get_or_create(some_check, ArgsKey((n,)))
        assert again is node and not created2
        assert table.lookup(some_check, ArgsKey((n,))) is node
        assert len(table) == 1

    def test_functions_disambiguate(self):
        table = MemoTable()
        n = Node()
        a = _node(table, some_check, n)
        b = _node(table, other_check, n)
        assert a is not b
        assert len(table) == 2

    def test_lookup_missing(self):
        table = MemoTable()
        assert table.lookup(some_check, ArgsKey((1,))) is None


class TestImplicits:
    def test_record_updates_reverse_map_and_refcount(self):
        table = MemoTable()
        heap = Node()
        node = _node(table, some_check, 1)
        loc = FieldLocation(heap, "value")
        table.record_implicit(node, loc)
        assert heap._ditto_refcount == 1
        assert table.nodes_reading(loc) == {node}
        # Recording the same location twice is idempotent.
        table.record_implicit(node, loc)
        assert heap._ditto_refcount == 1

    def test_clear_implicits_releases(self):
        table = MemoTable()
        heap = Node()
        node = _node(table, some_check, 1)
        loc = FieldLocation(heap, "value")
        table.record_implicit(node, loc)
        table.clear_implicits(node)
        assert heap._ditto_refcount == 0
        assert table.nodes_reading(loc) == set()
        assert table.reverse_map_size() == 0

    def test_two_nodes_one_location(self):
        table = MemoTable()
        heap = Node()
        a = _node(table, some_check, 1)
        b = _node(table, some_check, 2)
        loc = FieldLocation(heap, "value")
        table.record_implicit(a, loc)
        table.record_implicit(b, loc)
        assert heap._ditto_refcount == 2
        assert table.nodes_reading(loc) == {a, b}
        table.clear_implicits(a)
        assert table.nodes_reading(loc) == {b}
        assert heap._ditto_refcount == 1

    def test_map_locations_to_nodes(self):
        table = MemoTable()
        h1, h2 = Node(), Node()
        a = _node(table, some_check, 1)
        b = _node(table, some_check, 2)
        l1 = FieldLocation(h1, "value")
        l2 = FieldLocation(h2, "value")
        table.record_implicit(a, l1)
        table.record_implicit(b, l2)
        assert table.map_locations_to_nodes([l1]) == {a}
        assert table.map_locations_to_nodes([l1, l2]) == {a, b}
        assert table.map_locations_to_nodes([FieldLocation(h1, "other")]) == set()


class TestRangeExpansion:
    def _slot_readers(self, table, arr, slots):
        nodes = {}
        for slot in slots:
            node = _node(table, some_check, slot)
            table.record_implicit(node, arr._ditto_location(slot))
            nodes[slot] = node
        return nodes

    def test_range_dirties_covered_slot_readers_only(self):
        table = MemoTable()
        arr = TrackedArray(10)
        readers = self._slot_readers(table, arr, [0, 3, 5, 9])
        dirty = table.map_locations_to_nodes([RangeLocation(arr, 2, 6)])
        assert dirty == {readers[3], readers[5]}

    def test_range_is_container_scoped(self):
        table = MemoTable()
        a, b = TrackedArray(5), TrackedArray(5)
        readers = self._slot_readers(table, a, [1])
        self._slot_readers(table, b, [1])
        dirty = table.map_locations_to_nodes([RangeLocation(a, 0, 5)])
        assert dirty == {readers[1]}

    def test_wide_range_scans_reverse_map(self):
        """A span larger than the reverse map takes the scan path and
        finds the same dependents."""
        table = MemoTable()
        arr = TrackedArray(4)
        readers = self._slot_readers(table, arr, [2])
        dirty = table.map_locations_to_nodes([RangeLocation(arr, 0, 1000)])
        assert dirty == {readers[2]}

    def test_overlapping_ranges_merge_before_expansion(self):
        table = MemoTable()
        arr = TrackedArray(20)
        readers = self._slot_readers(table, arr, [0, 7, 12])
        pending = [
            RangeLocation(arr, 0, 5),
            RangeLocation(arr, 3, 8),
            RangeLocation(arr, 11, 13),
        ]
        dirty = table.map_locations_to_nodes(pending)
        assert dirty == {readers[0], readers[7], readers[12]}

    def test_mixed_points_and_ranges(self):
        table = MemoTable()
        arr = TrackedArray(10)
        h = Node()
        readers = self._slot_readers(table, arr, [1, 8])
        field_reader = _node(table, other_check, 99)
        loc = FieldLocation(h, "value")
        table.record_implicit(field_reader, loc)
        dirty = table.map_locations_to_nodes(
            [loc, RangeLocation(arr, 0, 2)]
        )
        assert dirty == {readers[1], field_reader}

    def test_empty_range_dirties_nothing(self):
        table = MemoTable()
        arr = TrackedArray(5)
        self._slot_readers(table, arr, [0])
        assert table.map_locations_to_nodes([RangeLocation(arr, 3, 3)]) == set()


class TestMergeIntervals:
    def test_merges_overlaps_and_adjacency(self):
        assert _merge_intervals([(5, 8), (0, 3), (2, 4), (8, 9)]) == [
            (0, 4),
            (5, 9),
        ]

    def test_disjoint_kept_sorted(self):
        assert _merge_intervals([(4, 6), (0, 2)]) == [(0, 2), (4, 6)]

    def test_containment(self):
        assert _merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]

    def test_empty(self):
        assert _merge_intervals([]) == []


class TestEdges:
    def test_add_remove_edge_counts(self):
        table = MemoTable()
        parent = _node(table, some_check, 1)
        child = _node(table, some_check, 2)
        table.add_edge(parent, child)
        table.add_edge(parent, child)
        assert child.caller_count() == 2
        assert parent.calls == [child, child]
        table.remove_edge(parent, child)
        assert child.caller_count() == 1
        table.remove_edge(parent, child)
        assert child.caller_count() == 0
        assert parent not in child.callers

    def test_depth_propagates_min(self):
        table = MemoTable()
        a = _node(table, some_check, 1)
        b = _node(table, some_check, 2)
        c = _node(table, some_check, 3)
        a.depth = 1
        table.add_edge(a, b)
        assert b.depth == 2
        b.depth = 5
        table.add_edge(a, c)
        table.add_edge(c, b)  # c at depth 2, so b min-updates to 3
        assert b.depth == 3


class TestPrune:
    def _chain(self, table, length):
        nodes = [_node(table, some_check, i) for i in range(length)]
        for parent, child in zip(nodes, nodes[1:]):
            table.add_edge(parent, child)
        return nodes

    def test_prune_chain(self):
        table = MemoTable()
        heap = Node()
        nodes = self._chain(table, 4)
        table.record_implicit(nodes[-1], FieldLocation(heap, "value"))
        removed = table.prune(nodes[0])
        assert set(removed) == set(nodes)
        assert len(table) == 0
        assert heap._ditto_refcount == 0
        assert table.reverse_map_size() == 0

    def test_prune_stops_at_shared_child(self):
        table = MemoTable()
        nodes = self._chain(table, 3)
        keeper = _node(table, other_check, 0)
        table.add_edge(keeper, nodes[2])
        removed = table.prune(nodes[0])
        assert nodes[2] not in removed
        assert table.contains(nodes[2])
        assert len(table) == 2  # keeper + shared child

    def test_prune_idempotent(self):
        table = MemoTable()
        node = _node(table, some_check, 1)
        table.prune(node)
        assert table.prune(node) == []

    def test_clear_releases_everything(self):
        table = MemoTable()
        heap = Node()
        nodes = self._chain(table, 3)
        table.record_implicit(nodes[1], FieldLocation(heap, "value"))
        removed = table.clear()
        assert set(removed) == set(nodes)
        assert heap._ditto_refcount == 0
        assert len(table) == 0


class TestSnapshot:
    def test_snapshot_maps_names_to_values(self):
        table = MemoTable()
        node = _node(table, some_check, 7)
        node.return_val = True
        snap = table.snapshot()
        assert snap == {("some_check", (7,)): True}
