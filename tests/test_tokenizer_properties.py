"""Property tests for the JSO JavaScript tokenizer."""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.apps.jso import (
    JsObfuscator,
    RESERVED_WORDS,
    Token,
    TokenKind,
    TokenizeError,
    generate_program,
    tokenize,
)

_ident_start = st.sampled_from(string.ascii_letters + "_$")
_ident_rest = st.text(
    alphabet=string.ascii_letters + string.digits + "_$", max_size=8
)
identifiers = st.builds(lambda a, b: a + b, _ident_start, _ident_rest)

js_snippets = st.lists(
    st.one_of(
        identifiers,
        st.sampled_from(RESERVED_WORDS),
        st.integers(0, 10_000).map(str),
        st.sampled_from(["+", "-", "*", "/", "==", "===", "&&", "(", ")",
                         "{", "}", ";", ",", "=>", "?."]),
        st.text(alphabet=string.ascii_letters + " ", max_size=10).map(
            lambda s: '"' + s + '"'
        ),
    ),
    max_size=30,
).map(" ".join)


class TestTokenizerProperties:
    @given(js_snippets)
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_with_trivia(self, source):
        tokens = tokenize(source, keep_trivia=True)
        assert "".join(t.text for t in tokens) == source

    @given(js_snippets)
    @settings(max_examples=120, deadline=None)
    def test_no_empty_tokens(self, source):
        for token in tokenize(source, keep_trivia=True):
            assert token.text != ""

    @given(js_snippets)
    @settings(max_examples=80, deadline=None)
    def test_trivia_filtering_is_a_subsequence(self, source):
        full = tokenize(source, keep_trivia=True)
        lean = tokenize(source)
        trivia = (TokenKind.WHITESPACE, TokenKind.COMMENT, TokenKind.NEWLINE)
        assert lean == [t for t in full if t.kind not in trivia]

    @given(identifiers)
    @settings(max_examples=80, deadline=None)
    def test_identifier_classification(self, name):
        token = tokenize(name)[0]
        expected = (
            TokenKind.KEYWORD if name in RESERVED_WORDS else TokenKind.IDENT
        )
        assert token.kind is expected
        assert token.text == name

    @given(st.text(max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_total_on_arbitrary_text(self, source):
        """Tokenization either succeeds or raises TokenizeError — never any
        other exception, never an infinite loop."""
        try:
            tokens = tokenize(source, keep_trivia=True)
        except TokenizeError:
            return
        assert "".join(t.text for t in tokens) == source

    @given(st.integers(1, 40), st.integers(0, 2**30))
    @settings(max_examples=25, deadline=None)
    def test_generated_programs_always_tokenize(self, n, seed):
        program = "".join(generate_program(n, seed=seed))
        tokens = tokenize(program)
        assert tokens  # non-empty
        assert sum(1 for t in tokens if t.text == "function") == n

    @given(st.integers(1, 25), st.integers(0, 2**30))
    @settings(max_examples=25, deadline=None)
    def test_obfuscated_output_tokenizes_and_hides_names(self, n, seed):
        jso = JsObfuscator()
        out = "".join(jso.feed(c) for c in generate_program(n, seed=seed))
        tokens = tokenize(out)
        renamed = set(jso.mapping)
        for token in tokens:
            if token.kind is TokenKind.IDENT:
                assert token.text not in renamed
