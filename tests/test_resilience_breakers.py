"""Circuit breakers: trip, back off, probe, recover — under threads.

Unit suite for the keyed breaker machinery the serving layer gates
admission with.  The clock is injected everywhere, so every recovery
window is driven deterministically — no sleeps."""

from __future__ import annotations

import threading

import pytest

from repro.resilience.degradation import (
    BreakerOpenError,
    BreakerPolicy,
    CircuitBreaker,
    KeyedBreakers,
)

pytestmark = pytest.mark.serving


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(threshold=3, recovery=10.0, **kw):
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerPolicy(
            failure_threshold=threshold, recovery_time=recovery, **kw
        ),
        clock,
    )
    return breaker, clock


def test_policy_validation():
    with pytest.raises(ValueError):
        BreakerPolicy(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerPolicy(recovery_time=0)
    with pytest.raises(ValueError):
        BreakerPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        BreakerPolicy(recovery_time=10, max_recovery_time=5)
    with pytest.raises(ValueError):
        BreakerPolicy(half_open_probes=0)


def test_trips_after_consecutive_failures_and_counts_rejections():
    breaker, _clock = make(threshold=3)
    for _ in range(2):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state == "closed"
    assert breaker.allow()
    breaker.record_failure()  # third consecutive: trip
    assert breaker.state == "open"
    assert breaker.trips == 1
    assert not breaker.allow()
    assert breaker.rejections == 1
    assert breaker.retry_after() == pytest.approx(10.0)


def test_success_resets_the_failure_streak():
    breaker, _clock = make(threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == "closed", "streak must reset on success"


def test_half_open_probe_success_closes():
    breaker, clock = make(threshold=1, recovery=10.0)
    breaker.record_failure()
    assert breaker.state == "open"
    clock.advance(10.0)
    assert breaker.allow()  # the half-open probe
    assert breaker.state == "half_open"
    assert not breaker.allow(), "only one probe at a time by default"
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_half_open_probe_failure_reopens_with_backoff():
    breaker, clock = make(threshold=1, recovery=10.0, backoff_factor=2.0,
                          max_recovery_time=300.0)
    breaker.record_failure()
    clock.advance(10.0)
    assert breaker.allow()
    breaker.record_failure()  # probe fails: re-open, window doubles
    assert breaker.state == "open"
    assert breaker.trips == 2
    clock.advance(10.0)
    assert not breaker.allow(), "second window is 20s, not 10s"
    clock.advance(10.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed"
    # A clean close resets the trip streak: next trip waits 10s again.
    breaker.record_failure()
    assert breaker.retry_after() == pytest.approx(10.0)


def test_release_restores_the_probe_slot_without_counting():
    breaker, clock = make(threshold=1, recovery=10.0)
    breaker.record_failure()
    clock.advance(10.0)
    assert breaker.allow()
    breaker.release()  # probe withdrawn (e.g. KeyboardInterrupt teardown)
    assert breaker.state == "half_open"
    assert breaker.allow(), "released slot must be admissible again"
    breaker.record_success()
    assert breaker.state == "closed"


def test_call_wrapper_is_exception_safe():
    breaker, clock = make(threshold=1, recovery=10.0)

    with pytest.raises(RuntimeError):
        breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    assert breaker.state == "open", "exception counts as failure"
    with pytest.raises(BreakerOpenError) as excinfo:
        breaker.call(lambda: 1)
    assert excinfo.value.retry_after == pytest.approx(10.0)
    clock.advance(10.0)
    # A KeyboardInterrupt mid-probe releases the slot uncounted.
    def interrupted():
        raise KeyboardInterrupt
    with pytest.raises(KeyboardInterrupt):
        breaker.call(interrupted)
    assert breaker.state == "half_open"
    assert breaker.call(lambda: 42) == 42
    assert breaker.state == "closed"


def test_keyed_breakers_are_independent_per_key():
    clock = FakeClock()
    keyed = KeyedBreakers(BreakerPolicy(failure_threshold=1), clock)
    keyed.get("a").record_failure()
    assert keyed.get("a").state == "open"
    assert keyed.get("b").state == "closed"
    stats = keyed.stats()
    assert stats["breakers"] == 2
    assert stats["breaker_trips"] == 1
    assert stats["breakers_open"] == 1
    keyed.remove("a")
    assert keyed.get("a").state == "closed", "removed key starts fresh"


def test_breaker_state_is_consistent_under_threads():
    """Satellite check: breaker counters survive concurrent hammering
    without losing updates or wedging (the pre-fix DegradationPolicy-style
    unsynchronized mutation would drop counts)."""
    breaker, _clock = make(threshold=1, recovery=1e9, max_recovery_time=1e9)
    outcomes = []

    def worker():
        for _ in range(200):
            if breaker.allow():
                breaker.record_failure()
            else:
                outcomes.append("rejected")

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Exactly one trip (first failure), everything after is rejected.
    assert breaker.trips == 1
    assert breaker.state == "open"
    assert breaker.rejections == len(outcomes)
    assert breaker.rejections > 0
