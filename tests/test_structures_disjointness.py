"""Cross-structure disjointness invariant (the paper's intro example:
"no elements in this priority queue can be in that priority queue")."""

from __future__ import annotations

import random

from repro.structures import (
    DisjointHeapPair,
    check_disjoint_from,
    heaps_disjoint,
    value_in_heap,
)


class TestValueInHeap:
    def test_present_and_absent(self):
        pair = DisjointHeapPair()
        pair.submit(5)
        pair.submit(9)
        assert value_in_heap(pair.waiting, 5, 0) is True
        assert value_in_heap(pair.waiting, 9, 0) is True
        assert value_in_heap(pair.waiting, 7, 0) is False

    def test_empty_heap(self):
        pair = DisjointHeapPair()
        assert value_in_heap(pair.ready, 1, 0) is False

    def test_offset_scan(self):
        pair = DisjointHeapPair()
        pair.submit(1)
        pair.submit(2)
        # Slot 0 holds the minimum (1); scanning from slot 1 misses it.
        assert value_in_heap(pair.waiting, 1, 1) is False


class TestPairOperations:
    def test_scheduler_flow(self):
        pair = DisjointHeapPair()
        for v in [3, 1, 2]:
            pair.submit(v)
        assert pair.activate() == 1
        assert pair.activate() == 2
        assert pair.complete() == 1
        assert pair.suspend() == 2
        assert heaps_disjoint(pair) is True

    def test_empty_operations(self):
        pair = DisjointHeapPair()
        assert pair.activate() is None
        assert pair.complete() is None
        assert pair.suspend() is None

    def test_corrupt_duplicate(self):
        pair = DisjointHeapPair()
        pair.submit(7)
        assert pair.corrupt_duplicate() == 7
        assert heaps_disjoint(pair) is False

    def test_corrupt_on_empty(self):
        assert DisjointHeapPair().corrupt_duplicate() is None


class TestIncrementalDisjointness:
    def test_agrees_under_scheduler_churn(self, engine_factory):
        engine = engine_factory(heaps_disjoint)
        pair = DisjointHeapPair(capacity=128)
        rng = random.Random(59)
        next_task = 0
        assert engine.run(pair) is True
        for _ in range(150):
            roll = rng.random()
            if roll < 0.4:
                pair.submit(next_task)
                next_task += 1
            elif roll < 0.7:
                pair.activate()
            elif roll < 0.9:
                pair.complete()
            else:
                pair.suspend()
            assert engine.run(pair) == heaps_disjoint(pair) is True

    def test_detects_double_queuing(self, engine_factory):
        engine = engine_factory(heaps_disjoint)
        pair = DisjointHeapPair()
        for v in range(10):
            pair.submit(v)
        for _ in range(5):
            pair.activate()
        assert engine.run(pair) is True
        duplicate = pair.corrupt_duplicate()
        assert engine.run(pair) == heaps_disjoint(pair) is False
        # Repair: complete the move by removing the duplicate (it is the
        # waiting queue's minimum, so one pop retires it).
        assert pair.waiting.pop() == duplicate
        assert engine.run(pair) == heaps_disjoint(pair) is True

    def test_move_is_subquadratic(self, engine_factory):
        engine = engine_factory(heaps_disjoint)
        pair = DisjointHeapPair(capacity=256)
        for v in range(60):
            pair.submit(v)
        for _ in range(30):
            pair.activate()
        engine.run(pair)
        graph = engine.graph_size  # O(n*m) invocations
        assert graph > 500
        pair.activate()  # move one element
        report = engine.run_with_report(pair)
        assert report.result is True
        # One move re-executes O(n + m) invocations, far below the O(n*m)
        # full check.
        assert report.delta["execs"] < graph * 0.4
