"""HashTable semantics + the two-function bucket invariant (Figure 9)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures import HashTable, hash_table_invariant
from repro.structures.hash_table import stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(123) == 123

    def test_non_negative(self):
        assert stable_hash(-7) >= 0
        assert stable_hash("") == 0

    def test_bool_separate(self):
        assert stable_hash(True) == 1

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            stable_hash(3.5)


class TestHashTable:
    def test_put_get(self):
        t = HashTable()
        t.put("a", 1)
        t.put("b", 2)
        assert t.get("a") == 1
        assert t.get("b") == 2
        assert t.get("missing") is None
        assert t.get("missing", -1) == -1
        assert len(t) == 2

    def test_update_existing(self):
        t = HashTable()
        t.put("a", 1)
        t.put("a", 9)
        assert t.get("a") == 9
        assert len(t) == 1

    def test_contains(self):
        t = HashTable()
        t.put(5, None)
        assert 5 in t
        assert 6 not in t

    def test_remove(self):
        t = HashTable()
        t.put("a", 1)
        assert t.remove("a") is True
        assert t.remove("a") is False
        assert "a" not in t
        assert len(t) == 0

    def test_collision_chaining(self):
        t = HashTable(capacity=1)  # everything collides
        for i in range(5):
            t.put(i, i * 10)
        for i in range(5):
            assert t.get(i) == i * 10
        # Capacity 1 with 5 items has rehashed by load factor.
        assert len(t.buckets) > 1

    def test_rehash_preserves_entries(self):
        t = HashTable(capacity=4)
        for i in range(50):
            t.put(i, -i)
        assert len(t) == 50
        assert sorted(t.keys()) == list(range(50))
        assert hash_table_invariant(t) is True

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HashTable(capacity=0)

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 40)),
                    max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model(self, ops):
        t = HashTable(capacity=2)
        model: dict[int, int] = {}
        for is_put, key in ops:
            if is_put:
                t.put(key, key + 1)
                model[key] = key + 1
            else:
                assert t.remove(key) == (key in model)
                model.pop(key, None)
        assert dict(t.items()) == model
        assert hash_table_invariant(t) is True


class TestBucketInvariant:
    def test_corruption_detected(self):
        t = HashTable()
        for i in range(10):
            t.put(i, i)
        assert hash_table_invariant(t) is True
        assert t.corrupt(3) is True
        assert hash_table_invariant(t) is False

    def test_incremental_agrees_under_churn(self, engine_factory):
        engine = engine_factory(hash_table_invariant)
        t = HashTable()
        rng = random.Random(3)
        keys = []
        engine.run(t)
        for _ in range(150):
            if rng.random() < 0.5 or not keys:
                k = rng.randrange(10_000)
                t.put(k, k)
                if k not in keys:
                    keys.append(k)
            else:
                t.remove(keys.pop(rng.randrange(len(keys))))
            assert engine.run(t) == hash_table_invariant(t) is True

    def test_incremental_detects_and_localizes_corruption(
        self, engine_factory
    ):
        engine = engine_factory(hash_table_invariant)
        t = HashTable(capacity=64)
        for i in range(40):
            t.put(i, i)
        assert engine.run(t) is True
        t.corrupt(7)
        assert engine.run(t) is False
        # Repair: purge the displaced element and re-insert correctly.
        assert t.purge(7) is True
        t.put(7, 7)
        assert engine.run(t) == hash_table_invariant(t) is True

    def test_rehash_rebuilds_graph(self, engine_factory):
        engine = engine_factory(hash_table_invariant)
        t = HashTable(capacity=4)
        t.put(1, 1)
        assert engine.run(t) is True
        for i in range(2, 30):  # trips several rehashes
            t.put(i, i)
            assert engine.run(t) is True
        assert engine.run(t) == hash_table_invariant(t) is True

    def test_insert_into_bucket_is_local_work(self, engine_factory):
        engine = engine_factory(hash_table_invariant)
        t = HashTable(capacity=256)
        for i in range(100):
            t.put(i, i)
        engine.run(t)
        t.put(1000, 1)  # no rehash at this load factor
        report = engine.run_with_report(t)
        assert report.result is True
        # Work is one bucket chain + the touched spine node, not O(table).
        assert report.delta["execs"] <= 4
