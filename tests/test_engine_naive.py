"""The naive incrementalizer (paper Figure 6) and its ablation contrast
with the optimistic one (§3.3): both compute identical results, but the
naive version performs a memo lookup (replay) for every invocation on the
path of the computation, while the optimistic one touches only changed
nodes."""

from __future__ import annotations

import random

from repro import TrackedObject, check


class Elem(TrackedObject):
    def __init__(self, value, next=None):
        self.value = value
        self.next = next


@check
def naive_ordered(e):
    if e is None or e.next is None:
        return True
    if e.value > e.next.value:
        return False
    return naive_ordered(e.next)


def build_list(values):
    head = None
    for v in reversed(values):
        head = Elem(v, head)
    return head


class TestNaiveCorrectness:
    def test_first_run(self, engine_factory):
        engine = engine_factory(naive_ordered, mode="naive")
        assert engine.run(build_list([1, 2, 3])) is True
        assert engine.run(build_list([3, 2])) is False

    def test_incremental_agrees_with_scratch(self, engine_factory):
        engine = engine_factory(naive_ordered, mode="naive")
        rng = random.Random(5)
        values = sorted(rng.sample(range(1000), 40))
        head = build_list(values)
        engine.run(head)
        elems = []
        e = head
        while e is not None:
            elems.append(e)
            e = e.next
        for step in range(30):
            victim = rng.choice(elems)
            victim.value = rng.randrange(1000)
            assert engine.run(head) == naive_ordered(head)
            # Restore order so later steps usually succeed.
            if engine.run(head) is False:
                previous = 0
                for elem in elems:
                    elem.value = previous = previous + rng.randrange(1, 5)
                assert engine.run(head) is True

    def test_reuse_when_descendant_value_unchanged(self, engine_factory):
        engine = engine_factory(naive_ordered, mode="naive")
        head = build_list([1, 3, 5, 7, 9])
        engine.run(head)
        # Change 5 -> 6: still ordered, every replayed value matches.
        head.next.next.value = 6
        report = engine.run_with_report(head)
        assert report.result is True
        assert report.delta["replays"] >= 2  # validated the spine
        assert report.delta["reuses"] >= 1

    def test_changed_value_reexecutes_parent(self, engine_factory):
        engine = engine_factory(naive_ordered, mode="naive")
        head = build_list([1, 3, 5, 7])
        engine.run(head)
        head.next.next.value = 2  # 3 > 2 breaks at position 2
        report = engine.run_with_report(head)
        assert report.result is False


class TestNaiveVsOptimisticWork:
    def test_naive_replays_spine_optimistic_does_not(self, engine_factory):
        """The key §3.3 contrast: for a deep local change, the naive
        incrementalizer performs memo work proportional to the path from
        the root, while the optimistic one re-executes O(1) nodes and
        looks at nothing else."""
        values = list(range(0, 400, 2))
        head_naive = build_list(values)
        head_ditto = build_list(values)
        naive = engine_factory(naive_ordered, mode="naive")
        ditto = engine_factory(naive_ordered, mode="ditto")
        naive.run(head_naive)
        ditto.run(head_ditto)

        def insert_deep(head):
            e = head
            while e.value != 300:
                e = e.next
            e.next = Elem(301, e.next)

        insert_deep(head_naive)
        insert_deep(head_ditto)
        naive_report = naive.run_with_report(head_naive)
        ditto_report = ditto.run_with_report(head_ditto)
        assert naive_report.result is ditto_report.result is True
        # Same number of re-executions...
        assert naive_report.delta["execs"] == ditto_report.delta["execs"] == 2
        # ...but the naive version replayed the 150-node spine above the
        # change, while the optimistic version replayed nothing.
        assert naive_report.delta["replays"] >= 150
        assert ditto_report.delta["replays"] == 0

    def test_graphs_agree_after_run(self, engine_factory):
        values = [5, 10, 15, 20]
        head = build_list(values)
        naive = engine_factory(naive_ordered, mode="naive")
        ditto = engine_factory(naive_ordered, mode="ditto")
        naive.run(head)
        ditto.run(head)
        head.next.value = 12
        naive.run(head)
        ditto.run(head)
        assert naive.graph_snapshot() == ditto.graph_snapshot()
