"""The master correctness property, checked with hypothesis stateful
machines: after ANY mutation sequence, an incremental run returns exactly
what a from-scratch run returns ("The incrementally updated graph is
equivalent to re-running the invariant check from scratch on the current
program state", §3.1) — and the resulting computation graph is isomorphic
to the graph a fresh engine builds.

Three machines cover the paper's three §5.1 structures; each drives the
optimistic engine, the naive engine, and the original check in lock-step,
including fault-injection steps so False results and repair transitions are
exercised, not just the happy path.
"""

from __future__ import annotations

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import DittoEngine, reset_tracking
from repro.structures import (
    HashTable,
    OrderedIntList,
    RedBlackTree,
    hash_table_invariant,
    is_ordered,
    rbt_invariant,
)

_MACHINE_SETTINGS = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


class _BaseMachine(RuleBasedStateMachine):
    """Common scaffolding: engines in both modes + scratch comparison."""

    entry = None  # set by subclasses

    def _setup_engines(self):
        reset_tracking()
        self.ditto = DittoEngine(self.entry, mode="ditto", recursion_limit=None)
        self.naive = DittoEngine(self.entry, mode="naive", recursion_limit=None)

    def teardown(self):
        self.ditto.close()
        self.naive.close()
        reset_tracking()

    def check_args(self):
        raise NotImplementedError

    @invariant()
    def incremental_equals_scratch(self):
        args = self.check_args()
        expected = self.entry(*args)
        got_ditto = self.ditto.run(*args)
        got_naive = self.naive.run(*args)
        assert got_ditto == expected, (got_ditto, expected)
        assert got_naive == expected, (got_naive, expected)
        # The engines' internal bookkeeping is consistent after every run.
        self.ditto.validate()
        self.naive.validate()
        # Graph isomorphism: a fresh engine run from scratch on the current
        # state produces the same (function, args) -> value mapping.
        with DittoEngine(self.entry, recursion_limit=None) as fresh:
            fresh.run(*args)
            assert self.ditto.graph_snapshot() == fresh.graph_snapshot()


class OrderedListMachine(_BaseMachine):
    entry = is_ordered

    @initialize()
    def setup(self):
        self._setup_engines()
        self.lst = OrderedIntList()
        self.mirror: list[int] = []

    def check_args(self):
        return (self.lst.head,)

    @rule(value=st.integers(0, 50))
    def insert(self, value):
        self.lst.insert(value)
        self.mirror.append(value)

    @precondition(lambda self: self.mirror)
    @rule(data=st.data())
    def delete_random(self, data):
        value = data.draw(st.sampled_from(self.mirror))
        self.lst.delete(value)
        self.mirror.remove(value)

    @precondition(lambda self: self.mirror)
    @rule()
    def delete_first(self):
        self.lst.delete_first()
        self.mirror.remove(min(self.mirror))

    @precondition(lambda self: len(self.mirror) >= 2)
    @rule(index=st.integers(0, 100), value=st.integers(-10, 60))
    def corrupt(self, index, value):
        self.lst.corrupt(index % len(self.mirror), value)
        # The mirror is now out of sync with sortedness on purpose; record
        # the actual contents so later deletes stay meaningful.
        self.mirror = self.lst.to_list()


class HashTableMachine(_BaseMachine):
    entry = hash_table_invariant

    @initialize()
    def setup(self):
        self._setup_engines()
        self.table = HashTable(capacity=4)
        self.keys: set[int] = set()

    def check_args(self):
        return (self.table,)

    @rule(key=st.integers(0, 40))
    def put(self, key):
        self.table.put(key, key)
        self.keys.add(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data())
    def remove(self, data):
        key = data.draw(st.sampled_from(sorted(self.keys)))
        self.table.remove(key)
        self.keys.discard(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data())
    def corrupt_then_repair(self, data):
        key = data.draw(st.sampled_from(sorted(self.keys)))
        if self.table.corrupt(key):
            # Invariant must read False in every mode...
            args = self.check_args()
            expected = self.entry(*args)
            assert expected is False
            assert self.ditto.run(*args) is False
            assert self.naive.run(*args) is False
            # ...and repair must restore True (checked by the class-level
            # invariant right after this rule).
            self.table.purge(key)
            self.keys.discard(key)


class RedBlackTreeMachine(_BaseMachine):
    entry = rbt_invariant

    @initialize()
    def setup(self):
        self._setup_engines()
        self.tree = RedBlackTree()
        self.keys: set[int] = set()

    def check_args(self):
        return (self.tree,)

    @rule(key=st.integers(0, 80))
    def insert(self, key):
        self.tree.insert(key)
        self.keys.add(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data())
    def delete(self, data):
        key = data.draw(st.sampled_from(sorted(self.keys)))
        self.tree.delete(key)
        self.keys.discard(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data())
    def corrupt_color_and_back(self, data):
        key = data.draw(st.sampled_from(sorted(self.keys)))
        self.tree.corrupt_color(key)
        args = self.check_args()
        expected = self.entry(*args)
        assert self.ditto.run(*args) == expected
        assert self.naive.run(*args) == expected
        self.tree.corrupt_color(key)  # flip back


TestOrderedListMachine = OrderedListMachine.TestCase
TestOrderedListMachine.settings = _MACHINE_SETTINGS
TestHashTableMachine = HashTableMachine.TestCase
TestHashTableMachine.settings = _MACHINE_SETTINGS
TestRedBlackTreeMachine = RedBlackTreeMachine.TestCase
TestRedBlackTreeMachine.settings = _MACHINE_SETTINGS
